"""repro.obs.collect: traceparent codec, buffers, stitching, federation."""

import pytest

from repro import obs
from repro.obs.collect import (
    SpanBuffer, TraceStore, align_spans, clock_offset,
    federate_metrics, format_traceparent, parse_traceparent,
)
from repro.obs.span import Span, new_trace_id


_IDS = iter(range(1, 1 << 30))


def finished_span(name="work", trace_id=None, parent_id=None, t0=10.0,
                  dur=0.5, **attrs):
    span = Span(name=name, trace_id=trace_id or new_trace_id(),
                span_id=f"fa.{next(_IDS):x}", parent_id=parent_id,
                t0=t0, attrs=attrs)
    span.end = t0 + dur
    return span


# ----------------------------------------------------------------------
# traceparent codec
# ----------------------------------------------------------------------

def test_traceparent_round_trips_a_real_span_context(collector):
    with obs.span("job") as root:
        pass
    ctx = {"trace_id": root.trace_id, "span_id": root.span_id}
    header = format_traceparent(ctx)
    assert header == f"00-{root.trace_id}-{root.span_id}-01"
    assert parse_traceparent(header) == ctx


def test_traceparent_span_ids_keep_their_pid_dot():
    # span ids are "<pid hex>.<counter hex>" -- the dot must survive
    header = format_traceparent({"trace_id": "ab" * 8,
                                 "span_id": "1f4.2a"})
    parsed = parse_traceparent(header)
    assert parsed["span_id"] == "1f4.2a"


def test_format_traceparent_requires_both_ids():
    assert format_traceparent(None) is None
    assert format_traceparent({}) is None
    assert format_traceparent({"trace_id": "ab" * 8}) is None
    assert format_traceparent({"span_id": "1.2"}) is None


@pytest.mark.parametrize("value", [
    None, "", "garbage", "00-xyz-1.2-01", "01-" + "ab" * 8 + "-1f-01",
    "00-" + "ab" * 8 + "-1f", "00--1f-01", "00-" + "ab" * 20 + "-1f-01",
    "00-" + "ab" * 8 + "-1f-zz", 42,
])
def test_parse_traceparent_rejects_malformed_values(value):
    assert parse_traceparent(value) is None


def test_parse_traceparent_tolerates_whitespace():
    assert parse_traceparent(f"  00-{'cd' * 8}-3.4-01 ") == \
        {"trace_id": "cd" * 8, "span_id": "3.4"}


# ----------------------------------------------------------------------
# clock alignment
# ----------------------------------------------------------------------

def test_clock_offset_is_the_round_trip_midpoint_delta():
    # local sends at t=100, hears back at t=100.2; the remote said its
    # clock read 40.0 -- so remote + 60.1 lands on the local clock
    assert clock_offset(100.0, 100.2, 40.0) == pytest.approx(60.1)
    # clocks already aligned, instant round trip: no correction
    assert clock_offset(50.0, 50.0, 50.0) == 0.0


def test_align_spans_shifts_timestamps_and_stamps_the_runner():
    span = finished_span(t0=5.0, dur=1.0)
    span.events.append(obs.SpanEvent(name="tick", t=5.5))
    [aligned] = align_spans([span.to_dict()], offset_s=2.0,
                            runner="http://n1:8000")
    assert aligned["t0"] == pytest.approx(7.0)
    assert aligned["end"] == pytest.approx(8.0)
    assert aligned["events"][0]["t"] == pytest.approx(7.5)
    assert aligned["attrs"]["runner"] == "http://n1:8000"


def test_align_spans_leaves_the_input_dicts_alone():
    original = finished_span(t0=1.0).to_dict()
    align_spans([original], offset_s=100.0, runner="x")
    assert original["t0"] == 1.0
    assert "runner" not in original["attrs"]


# ----------------------------------------------------------------------
# SpanBuffer
# ----------------------------------------------------------------------

def test_span_buffer_drains_incrementally():
    buffer = SpanBuffer(cap=16)
    buffer.emit(finished_span("a"))
    buffer.emit(finished_span("b"))
    spans, cursor = buffer.since(0)
    assert [s["name"] for s in spans] == ["a", "b"]
    assert len(buffer) == 2
    again, cursor2 = buffer.since(cursor)
    assert again == [] and cursor2 == cursor
    buffer.emit(finished_span("c"))
    fresh, _ = buffer.since(cursor)
    assert [s["name"] for s in fresh] == ["c"]


def test_span_buffer_overflow_drops_oldest_and_counts():
    buffer = SpanBuffer(cap=2)
    for name in ("a", "b", "c", "d"):
        buffer.emit(finished_span(name))
    spans, _ = buffer.since(0)
    assert [s["name"] for s in spans] == ["c", "d"]
    assert buffer.dropped == 2


def test_span_buffer_works_as_an_obs_sink():
    buffer = SpanBuffer()
    obs.add_sink(buffer)
    try:
        with obs.span("visible"):
            pass
    finally:
        obs.remove_sink(buffer)
    spans, _ = buffer.since(0)
    assert [s["name"] for s in spans] == ["visible"]


def test_span_buffer_rejects_zero_cap():
    with pytest.raises(ValueError):
        SpanBuffer(cap=0)


# ----------------------------------------------------------------------
# TraceStore
# ----------------------------------------------------------------------

def test_trace_store_groups_by_trace_and_dedups_span_ids():
    store = TraceStore()
    trace = new_trace_id()
    span = finished_span("root", trace_id=trace)
    child = finished_span("child", trace_id=trace,
                          parent_id=span.span_id)
    assert store.ingest([span.to_dict(), child.to_dict()]) == 2
    # the on-demand pull re-reads what the loop already collected
    assert store.ingest([child.to_dict()], runner="http://n1") == 0
    assert len(store.spans(trace)) == 2
    assert store.trace_ids() == [trace]


def test_trace_store_applies_clock_offset_and_runner():
    store = TraceStore()
    span = finished_span("remote", t0=100.0)
    store.ingest([span.to_dict()], offset_s=-40.0, runner="http://n2")
    [stored] = store.spans(span.trace_id)
    assert stored["t0"] == pytest.approx(60.0)
    assert stored["attrs"]["runner"] == "http://n2"


def test_trace_store_evicts_least_recently_updated_trace():
    store = TraceStore(max_traces=2)
    first, second, third = (finished_span(str(i)) for i in range(3))
    store.ingest([first.to_dict()])
    store.ingest([second.to_dict()])
    # touching `first` makes `second` the eviction candidate
    store.ingest([finished_span("more", trace_id=first.trace_id)
                  .to_dict()])
    store.ingest([third.to_dict()])
    assert set(store.trace_ids()) == {first.trace_id, third.trace_id}
    assert store.spans(second.trace_id) == []


def test_trace_store_caps_spans_per_trace():
    store = TraceStore(max_spans_per_trace=2)
    trace = new_trace_id()
    dicts = [finished_span(str(i), trace_id=trace).to_dict()
             for i in range(4)]
    assert store.ingest(dicts) == 2
    assert store.dropped == 2


def test_trace_store_skips_spans_without_ids():
    store = TraceStore()
    broken = finished_span("x").to_dict()
    broken["trace_id"] = None
    assert store.ingest([broken]) == 0
    assert len(store) == 0


# ----------------------------------------------------------------------
# Prometheus federation
# ----------------------------------------------------------------------

OWN = """\
# HELP repro_fleet_runners_healthy Healthy runner count.
# TYPE repro_fleet_runners_healthy gauge
repro_fleet_runners_healthy 2
"""

PEER = """\
# HELP repro_server_jobs_inflight Jobs in flight.
# TYPE repro_server_jobs_inflight gauge
repro_server_jobs_inflight 3
# TYPE repro_profile_cache_total counter
repro_profile_cache_total{tier="memory"} 7
"""


def test_federation_labels_peer_samples_with_the_runner():
    text = federate_metrics(OWN, [("http://n1:8000", PEER)])
    assert "repro_fleet_runners_healthy 2" in text
    assert ('repro_server_jobs_inflight'
            '{runner="http://n1:8000"} 3') in text
    assert ('repro_profile_cache_total'
            '{runner="http://n1:8000",tier="memory"} 7') in text


def test_federation_merges_families_under_one_type_header():
    text = federate_metrics(OWN, [("http://n1", PEER),
                                  ("http://n2", PEER)])
    assert text.count("# TYPE repro_server_jobs_inflight gauge") == 1
    assert 'repro_server_jobs_inflight{runner="http://n1"} 3' in text
    assert 'repro_server_jobs_inflight{runner="http://n2"} 3' in text
    # every sample of a family sits under its single header
    lines = text.splitlines()
    header_at = lines.index("# TYPE repro_server_jobs_inflight gauge")
    assert lines[header_at + 1].startswith("repro_server_jobs_inflight")
    assert lines[header_at + 2].startswith("repro_server_jobs_inflight")


def test_federation_keeps_histogram_series_with_their_family():
    own = ""
    peer = ("# TYPE repro_http_request_seconds histogram\n"
            'repro_http_request_seconds_bucket{le="1"} 4\n'
            "repro_http_request_seconds_sum 2.5\n"
            "repro_http_request_seconds_count 4\n")
    text = federate_metrics(own, [("n1", peer)])
    assert text.count("# TYPE") == 1
    assert ('repro_http_request_seconds_bucket'
            '{runner="n1",le="1"} 4') in text
    assert 'repro_http_request_seconds_sum{runner="n1"} 2.5' in text


def test_federation_escapes_label_values():
    peer = 'weird_metric 1\n'
    text = federate_metrics("", [('node"with\\quirks', peer)])
    assert r'weird_metric{runner="node\"with\\quirks"} 1' in text


def test_federated_output_parses_as_prometheus_text():
    from repro.obs.console import metric_sum, parse_prometheus

    text = federate_metrics(OWN, [("http://n1", PEER),
                                  ("http://n2", PEER)])
    samples = parse_prometheus(text)
    assert metric_sum(samples, "repro_server_jobs_inflight") == 6.0
    assert metric_sum(samples, "repro_server_jobs_inflight",
                      runner="http://n1") == 3.0
    assert metric_sum(samples, "repro_fleet_runners_healthy") == 2.0
