"""Span layer: nesting, ids, serialization, sinks, adoption."""

import threading

import pytest

from repro import obs
from repro.obs.span import NULL_SPAN


class TestDisabled:
    def test_span_is_noop_without_sinks(self):
        assert not obs.enabled()
        scope = obs.span("anything", attr=1)
        assert scope is NULL_SPAN
        with scope as sp:
            sp.set(more=2)
            sp.event("ignored")
            assert sp.wall_s == 0.0
        assert obs.current_span() is None

    def test_module_event_is_noop_without_sinks(self):
        obs.event("nothing", x=1)  # must not raise

    def test_current_context_none_outside_spans(self):
        assert obs.current_context() is None


class TestNesting:
    def test_parent_child_ids_and_shared_trace(self, collector):
        with obs.span("outer") as outer:
            assert obs.current_span() is outer
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert obs.current_span() is outer
        assert obs.current_span() is None
        spans = collector.snapshot()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[0].span_id != spans[1].span_id

    def test_sibling_spans_share_parent(self, collector):
        with obs.span("root") as root:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        a, b, _ = collector.snapshot()
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_explicit_parent_context(self, collector):
        ctx = {"trace_id": "feedface00000000", "span_id": "1.2"}
        with obs.span("adopted", parent=ctx) as sp:
            assert sp.parent_id == "1.2"
            assert sp.trace_id == "feedface00000000"

    def test_timestamps_monotonic(self, collector):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = collector.snapshot()
        assert outer.t0 <= inner.t0
        assert inner.end <= outer.end
        assert outer.wall_s >= inner.wall_s >= 0

    def test_threads_do_not_inherit_each_other(self, collector):
        seen = []

        def worker():
            seen.append(obs.current_span())

        with obs.span("main-only"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == [None]


class TestErrorsAndEvents:
    def test_exception_marks_error_and_propagates(self, collector):
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("bad input")
        (sp,) = collector.snapshot()
        assert sp.status == "error"
        assert sp.error == "ValueError: bad input"

    def test_events_attach_to_current_span(self, collector):
        with obs.span("host") as sp:
            sp.event("direct", n=1)
            obs.event("ambient", n=2)
        (done,) = collector.snapshot()
        assert [(ev.name, ev.attrs["n"]) for ev in done.events] == \
            [("direct", 1), ("ambient", 2)]
        assert all(done.t0 <= ev.t <= done.end for ev in done.events)

    def test_set_merges_attrs(self, collector):
        with obs.span("s", a=1) as sp:
            sp.set(b=2).set(a=3)
        (done,) = collector.snapshot()
        assert done.attrs == {"a": 3, "b": 2}


class TestSerialization:
    def test_dict_round_trip(self, collector):
        with pytest.raises(RuntimeError):
            with obs.span("outer", k="v") as sp:
                sp.event("mark", at=1)
                raise RuntimeError("x")
        (orig,) = collector.snapshot()
        clone = obs.Span.from_dict(orig.to_dict())
        assert clone.to_dict() == orig.to_dict()
        assert clone.span_id == orig.span_id
        assert clone.events[0].attrs == {"at": 1}

    def test_span_ids_carry_pid(self, collector):
        import os

        with obs.span("x") as sp:
            pass
        assert sp.span_id.startswith(f"{os.getpid():x}.")
        assert sp.pid == os.getpid()


class TestAdoption:
    def test_orphan_roots_reparented_and_trace_rewritten(self, collector):
        with obs.span("worker-root"):
            with obs.span("worker-leaf"):
                pass
        forest = [s.to_dict() for s in collector.snapshot()]
        collector.clear()
        ctx = {"trace_id": "abcd1234abcd1234", "span_id": "99.1"}
        adopted = obs.adopt_spans(forest, ctx)
        by_name = {s.name: s for s in adopted}
        assert by_name["worker-root"].parent_id == "99.1"
        # internal link preserved
        assert (by_name["worker-leaf"].parent_id
                == by_name["worker-root"].span_id)
        assert all(s.trace_id == "abcd1234abcd1234" for s in adopted)
        # adopted spans are re-emitted to the active sinks
        assert len(collector) == 2

    def test_adopt_without_parent_keeps_shape(self):
        dicts = [obs.Span("n", "t" * 16, "1.1", None, 0.0, end=1.0)
                 .to_dict()]
        (span,) = obs.adopt_spans(dicts, None)
        assert span.parent_id is None
        assert span.trace_id == "t" * 16


class TestSinks:
    def test_broken_sink_never_breaks_the_flow(self, collector):
        class Broken:
            def emit(self, span):
                raise RuntimeError("sink down")

        broken = obs.add_sink(Broken())
        try:
            with obs.span("still-works"):
                pass
        finally:
            obs.remove_sink(broken)
        assert len(collector) == 1

    def test_add_sink_idempotent_remove_tolerant(self, collector):
        again = obs.add_sink(collector)
        assert again is collector
        with obs.span("once"):
            pass
        assert len(collector) == 1
        obs.remove_sink(object())  # unknown: no error
