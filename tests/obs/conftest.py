"""Shared obs fixtures: a collector sink that always detaches."""

import pytest

from repro import obs


@pytest.fixture
def collector():
    sink = obs.add_sink(obs.SpanCollector())
    try:
        yield sink
    finally:
        obs.remove_sink(sink)


@pytest.fixture
def registry():
    """A fresh registry so tests never fight over the global one."""
    return obs.MetricsRegistry()
