"""MetricsRegistry label-cardinality guard.

An unbounded label value (a job id, a URL with a query string) would
grow a metric's table forever on a long-lived server; the registry
caps distinct label sets per metric and counts what it refuses in
``repro_metrics_dropped_labels_total``.
"""

from repro.obs.metrics import DROPPED_METRIC, MetricsRegistry


def dropped(registry, metric):
    return registry.counter(
        DROPPED_METRIC, "", ("metric",)).get(metric=metric)


def test_counter_drops_label_sets_past_the_cap():
    registry = MetricsRegistry(label_cap=2)
    counter = registry.counter("jobs_total", "", ("app",))
    counter.inc(app="a")
    counter.inc(app="b")
    counter.inc(app="c")               # over the cap: dropped
    assert counter.get(app="a") == 1 and counter.get(app="b") == 1
    assert counter.get(app="c") == 0
    assert dropped(registry, "jobs_total") == 1


def test_existing_label_sets_keep_updating_at_the_cap():
    registry = MetricsRegistry(label_cap=1)
    counter = registry.counter("hits", "", ("tier",))
    counter.inc(tier="memory")
    counter.inc(5, tier="memory")
    assert counter.get(tier="memory") == 6
    assert dropped(registry, "hits") == 0


def test_gauge_set_and_inc_respect_the_cap():
    registry = MetricsRegistry(label_cap=1)
    gauge = registry.gauge("depth", "", ("queue",))
    gauge.set(3, queue="a")
    gauge.set(9, queue="b")
    gauge.inc(queue="b")
    assert gauge.get(queue="a") == 3
    assert gauge.get(queue="b") == 0
    assert dropped(registry, "depth") == 2


def test_histogram_observe_respects_the_cap():
    registry = MetricsRegistry(label_cap=1)
    histogram = registry.histogram("latency", "", ("route",),
                                   buckets=(0.1, 1.0))
    histogram.observe(0.05, route="a")
    histogram.observe(0.05, route="a")
    histogram.observe(0.05, route="b")
    text = registry.to_prometheus()
    assert 'latency_count{route="a"} 2' in text
    assert 'route="b"' not in text
    assert dropped(registry, "latency") == 1


def test_unlabeled_metrics_are_never_capped():
    registry = MetricsRegistry(label_cap=1)
    counter = registry.counter("plain_total", "")
    for _ in range(5):
        counter.inc()
    assert counter.get() == 5


def test_drop_counter_itself_is_exempt_from_the_cap():
    registry = MetricsRegistry(label_cap=1)
    for name in ("m1", "m2", "m3"):
        counter = registry.counter(name, "", ("l",))
        counter.inc(l="a")
        counter.inc(l="b")             # each metric overflows once
    # three distinct label sets on the drop counter, cap is 1 --
    # but the drop counter is exempt, so nothing is lost silently
    for name in ("m1", "m2", "m3"):
        assert dropped(registry, name) == 1


def test_cap_is_per_metric_not_global():
    registry = MetricsRegistry(label_cap=2)
    a = registry.counter("a_total", "", ("x",))
    b = registry.counter("b_total", "", ("x",))
    for value in ("1", "2"):
        a.inc(x=value)
        b.inc(x=value)
    assert a.get(x="1") == 1 and b.get(x="2") == 1
    assert dropped(registry, "a_total") == 0


def test_cap_none_disables_the_guard():
    registry = MetricsRegistry(label_cap=None)
    counter = registry.counter("big", "", ("i",))
    for i in range(50):
        counter.inc(i=str(i))
    assert counter.get(i="49") == 1
    assert DROPPED_METRIC not in registry.to_prometheus()
