"""StackProfiler: folded stacks, sampling, bounds, lifecycle."""

import sys
import threading
import time

from repro.obs.profiler import StackProfiler, fold_frame


def here_and_callers():
    return fold_frame(sys._getframe())


def test_fold_frame_walks_outer_to_inner():
    folded = here_and_callers()
    parts = folded.split(";")
    assert parts[-1].endswith(":here_and_callers")
    assert any(":test_fold_frame_walks_outer_to_inner" in p
               for p in parts)
    # callers precede callees
    assert (parts.index(
        next(p for p in parts
             if ":test_fold_frame_walks_outer_to_inner" in p))
        < len(parts) - 1)


def test_sample_once_counts_the_calling_thread():
    profiler = StackProfiler(hz=50.0)
    assert profiler.sample_once() >= 1
    assert profiler.samples == 1
    folded = profiler.folded()
    assert ":test_sample_once_counts_the_calling_thread" in folded
    stack, count = folded.splitlines()[0].rsplit(" ", 1)
    assert int(count) >= 1 and ";" in stack


def test_repeated_samples_accumulate_counts():
    profiler = StackProfiler(hz=50.0)
    for _ in range(3):
        profiler.sample_once()
    # assert on THIS thread's stack: other live threads (leftover pool
    # workers, server loops) are sampled too and may outscore it
    mine = next(line for line in profiler.folded().splitlines()
                if ":test_repeated_samples_accumulate_counts" in line)
    assert mine.rsplit(" ", 1)[1] == "3"


def test_max_stacks_bounds_the_table():
    profiler = StackProfiler(hz=50.0, max_stacks=1)
    profiler.sample_once()

    def elsewhere():
        profiler.sample_once()

    elsewhere()
    assert profiler.snapshot()["stacks"] == 1
    assert profiler.dropped >= 1


def test_start_stop_lifecycle_and_background_sampling():
    profiler = StackProfiler(hz=200.0)
    assert not profiler.running
    profiler.start()
    assert profiler.running
    profiler.start()                   # idempotent
    deadline = time.monotonic() + 5.0
    while profiler.samples == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    profiler.stop()
    assert not profiler.running
    assert profiler.samples > 0
    # the sampler never profiles itself
    assert "repro-profiler" not in profiler.folded()
    assert ":_run " not in profiler.folded()


def test_sampler_skips_the_given_thread():
    profiler = StackProfiler(hz=50.0)
    profiler.sample_once(skip_ident=threading.get_ident())
    assert ":test_sampler_skips_the_given_thread" \
        not in profiler.folded()


def test_reset_clears_counts():
    profiler = StackProfiler(hz=50.0)
    profiler.sample_once()
    profiler.reset()
    snap = profiler.snapshot()
    assert snap["samples"] == 0 and snap["stacks"] == 0
    assert profiler.folded() == ""


def test_rejects_non_positive_hz():
    import pytest

    with pytest.raises(ValueError):
        StackProfiler(hz=0.0)
