"""End-to-end observability: flows, engines, caches, service, CLI.

These tests exercise the real instrumented stack -- a flow run under a
collector sink must produce one nested trace whose spans and metrics
agree with the legacy telemetry counters.
"""

import threading

import pytest

import repro.lang.engine as eng
from repro import obs
from repro.apps.registry import get_app
from repro.flow.engine import FlowEngine
from repro.meta.ast_api import Ast
from repro.service.core import DesignService

TINY = "double main() { return 1.0 + 2.0; }"


def _exec_counts():
    c = obs.REGISTRY.counter("repro_exec_total",
                             labelnames=("mode",))
    return {mode: c.get(mode=mode)
            for mode in ("compiled", "interp", "interp-fallback")}


class TestFlowTrace:
    @pytest.fixture(scope="class")
    def flow_spans(self):
        from repro.analysis.profile import clear_profile_cache

        # cold cache, so the trace includes real execute_unit spans
        # even when earlier tests already profiled kmeans
        clear_profile_cache()
        sink = obs.add_sink(obs.SpanCollector())
        try:
            FlowEngine().run(get_app("kmeans"), mode="informed")
        finally:
            obs.remove_sink(sink)
        return sink.snapshot()

    def test_one_trace_rooted_at_the_flow(self, flow_spans):
        assert len({s.trace_id for s in flow_spans}) == 1
        roots = [s for s in flow_spans if s.parent_id is None]
        assert [r.name for r in roots] == ["flow kmeans/informed"]

    def test_phase_spans_nest_at_least_three_levels(self, flow_spans):
        names = {s.name for s in flow_spans}
        assert {"parse", "profile.collect", "execute_unit"} <= names
        assert obs.span_depth(flow_spans) >= 3

    def test_task_spans_carry_kind_attrs(self, flow_spans):
        kinds = {s.attrs["kind"] for s in flow_spans
                 if "kind" in s.attrs}
        assert {"A", "T", "O"} <= kinds

    def test_branch_decision_event_recorded(self, flow_spans):
        events = [ev for s in flow_spans for ev in s.events
                  if ev.name == "psa.branch"]
        assert any(ev.attrs["branch"] == "A" for ev in events)

    def test_dse_points_recorded(self, flow_spans):
        points = [ev for s in flow_spans for ev in s.events
                  if ev.name == "dse.point"]
        assert any(ev.attrs["dse"] == "omp-threads" for ev in points)


class TestEngineMetrics:
    def test_execution_mode_counted(self):
        before = _exec_counts()
        Ast(TINY).execute()
        after = _exec_counts()
        mode = eng.execution_mode()
        assert after[mode] == before[mode] + 1

    def test_profile_cache_tiers_counted(self):
        tiers = obs.REGISTRY.counter("repro_profile_cache_total",
                                     labelnames=("tier",))
        from repro.analysis.profile import collect_profile
        from repro.lang.interpreter import Workload

        unit = Ast("double main() { return 40.0 + 2.0; }").unit
        workload = Workload()
        before_miss = tiers.get(tier="miss")
        before_mem = tiers.get(tier="memory")
        collect_profile(unit, workload, "main")
        collect_profile(unit, workload, "main")
        assert tiers.get(tier="miss") == before_miss + 1
        assert tiers.get(tier="memory") == before_mem + 1


class TestEngineObservers:
    def test_add_is_idempotent(self):
        seen = []

        def watcher(unit, workload, entry, mode):
            seen.append(entry)

        eng.add_execution_observer(watcher)
        eng.add_execution_observer(watcher)
        try:
            Ast(TINY).execute()
        finally:
            eng.remove_execution_observer(watcher)
        assert seen == ["main"], "observer fired more than once"

    def test_remove_unknown_is_tolerated(self):
        eng.remove_execution_observer(lambda *a: None)

    def test_concurrent_registration(self):
        def watcher_for(i):
            def watcher(unit, workload, entry, mode):
                pass
            return watcher

        watchers = [watcher_for(i) for i in range(16)]
        errors = []

        def churn(w):
            try:
                for _ in range(50):
                    eng.add_execution_observer(w)
                    eng.remove_execution_observer(w)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(w,))
                   for w in watchers]
        for t in threads:
            t.start()
        Ast(TINY).execute()   # notify while the registry is churning
        for t in threads:
            t.join()
        assert not errors
        for w in watchers:
            assert w not in eng._observers


class TestServiceTrace:
    def test_thread_pool_job_is_one_nested_trace(self):
        sink = obs.add_sink(obs.SpanCollector())
        try:
            with DesignService(workers=2, pool="thread") as svc:
                svc.run(svc.job_for("kmeans", "informed"), timeout=120)
        finally:
            obs.remove_sink(sink)
        spans = sink.snapshot()
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["service.job"]
        assert len({s.trace_id for s in spans}) == 1
        assert obs.span_depth(spans) >= 4

    def test_metrics_agree_with_fleet_telemetry(self):
        events = obs.REGISTRY.counter("repro_service_events_total",
                                      labelnames=("event",))
        before = {k: events.get(event=k)
                  for k in ("jobs_run", "cache_hit_memory")}
        with DesignService(workers=1, pool="thread") as svc:
            job = svc.job_for("kmeans", "informed")
            svc.run(job, timeout=120)
            svc.run(job, timeout=120)   # memory hit
            counters = dict(svc.telemetry.counters)
        assert (events.get(event="jobs_run") - before["jobs_run"]
                == counters["jobs_run"] == 1)
        assert (events.get(event="cache_hit_memory")
                - before["cache_hit_memory"]
                == counters["cache_hit_memory"] == 1)

    def test_scheduler_counters_feed_registry(self):
        attempts = obs.REGISTRY.counter("repro_scheduler_attempts_total",
                                        labelnames=("outcome",))
        waits = obs.REGISTRY.histogram("repro_scheduler_queue_wait_seconds")
        before_ok = attempts.get(outcome="ok")
        before_n = waits.count()
        with DesignService(workers=1, pool="thread") as svc:
            svc.run(svc.job_for("kmeans", "informed"), timeout=120)
        assert attempts.get(outcome="ok") == before_ok + 1
        assert waits.count() == before_n + 1


class TestProcessBoundary:
    def test_payload_round_trip_preserves_links(self):
        """Worker-side span forest survives dict serialization and is
        re-homed intact under the submitter's span."""
        from repro.service.jobs import FlowJob, execute_job_payload

        payload = execute_job_payload(
            FlowJob(app="kmeans", mode="informed").spec(),
            collect_obs=True)
        dicts = payload["obs_spans"]
        assert dicts and all(isinstance(d, dict) for d in dicts)

        sink = obs.add_sink(obs.SpanCollector())
        try:
            ctx = {"trace_id": "c0ffee00c0ffee00", "span_id": "77.1"}
            adopted = obs.adopt_spans(dicts, ctx)
        finally:
            obs.remove_sink(sink)
        roots = [s for s in adopted if s.parent_id == "77.1"]
        assert [r.name for r in roots] == ["service.job"]
        assert all(s.trace_id == "c0ffee00c0ffee00" for s in adopted)
        ids = {s.span_id for s in adopted}
        non_roots = [s for s in adopted if s.parent_id != "77.1"]
        assert non_roots and all(s.parent_id in ids for s in non_roots)
        assert obs.span_depth(adopted) >= 3
        assert len(sink) == len(adopted)   # re-emitted to active sinks

    def test_process_pool_spans_adopted_into_submitter_trace(self):
        sink = obs.add_sink(obs.SpanCollector())
        try:
            with obs.span("submitter") as parent:
                with DesignService(workers=1, pool="process") as svc:
                    if svc.scheduler.mode != "process":
                        pytest.skip("no process pool on this platform")
                    svc.run(svc.job_for("kmeans", "informed"),
                            timeout=300)
        finally:
            obs.remove_sink(sink)
        spans = sink.snapshot()
        assert len({s.trace_id for s in spans}) == 1
        jobs = [s for s in spans if s.name == "service.job"]
        assert jobs and jobs[0].parent_id == parent.span_id
        import os

        assert any(s.pid != os.getpid() for s in spans), \
            "expected spans produced by the worker process"


class TestCliRegression:
    def test_run_time_keeps_execution_observers_firing(self, capsys):
        """Regression: the old ``--time`` monkey-patched
        ``execute_unit``, silently detaching execution observers.  The
        span-based breakdown must leave the observer chain intact."""
        from repro.__main__ import main
        from repro.analysis.profile import clear_profile_cache

        seen = []

        def watcher(unit, workload, entry, mode):
            seen.append(mode)

        # a warm profile cache (earlier tests ran kmeans) would satisfy
        # the analyses without executing; the regression needs real runs
        clear_profile_cache()
        eng.add_execution_observer(watcher)
        try:
            rc = main(["run", "kmeans", "--time"])
        finally:
            eng.remove_execution_observer(watcher)
        out = capsys.readouterr().out
        assert rc == 0
        assert "phase breakdown (wall):" in out
        assert "program runs" in out
        assert seen, "execution observers stopped firing under --time"

    def test_run_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        rc = main(["run", "kmeans", "--trace-out", str(trace),
                   "--metrics-out", str(metrics)])
        assert rc == 0
        data = json.loads(trace.read_text())
        assert data["traceEvents"]
        assert "repro_exec_total" in metrics.read_text()
