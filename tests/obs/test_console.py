"""The `repro obs` console: parsing, rendering, fetch loops."""

import io
import json

import pytest

from repro.obs import console
from repro.obs.console import (
    label_values, metric_sum, parse_prometheus, render_top,
    run_top, run_trace, spans_from_chrome,
)

TEXT = """\
# HELP repro_server_jobs_inflight Jobs in flight.
# TYPE repro_server_jobs_inflight gauge
repro_server_jobs_inflight{runner="http://n1:1"} 2
repro_server_jobs_inflight{runner="http://n2:2"} 1
repro_profile_cache_total{runner="http://n1:1",tier="memory"} 5
repro_profile_cache_total{runner="http://n1:1",tier="miss"} 3
repro_fleet_reroutes_total{reason="node_loss"} 1
repro_slo_burn_rate{slo="router",window="fast"} 0.5
plain_counter 7
"""

SUMMARY = {
    "role": "router",
    "version": "1.2.3",
    "traces": {"count": 4, "dropped": 0},
    "slo": {
        "name": "router", "target": 0.99, "degraded": False,
        "windows": {"fast": {"burn_rate": 0.5},
                    "slow": {"burn_rate": 0.1}},
    },
    "fleet": {"healthy": 2, "total": 2, "placements": 4,
              "inflight": 3, "breaker": {"state": "closed"}},
    "runners": [
        {"url": "http://n1:1", "state": "healthy"},
        {"url": "http://n2:2", "state": "draining"},
    ],
}


# ----------------------------------------------------------------------
# Prometheus text parsing
# ----------------------------------------------------------------------

def test_parse_prometheus_reads_labels_and_values():
    samples = parse_prometheus(TEXT)
    assert ("plain_counter", {}, 7.0) in samples
    assert ("repro_server_jobs_inflight",
            {"runner": "http://n1:1"}, 2.0) in samples


def test_parse_prometheus_skips_comments_and_junk():
    samples = parse_prometheus("# HELP x y\nbroken_line nan_nope_ok\n"
                               "fine 1\n")
    assert samples == [("fine", {}, 1.0)]


def test_parse_prometheus_unescapes_label_values():
    [(_, labels, _)] = parse_prometheus(
        r'm{path="C:\\tmp",msg="say \"hi\""} 1')
    assert labels == {"path": "C:\\tmp", "msg": 'say "hi"'}


def test_metric_sum_filters_by_label_subset():
    samples = parse_prometheus(TEXT)
    assert metric_sum(samples, "repro_server_jobs_inflight") == 3.0
    assert metric_sum(samples, "repro_server_jobs_inflight",
                      runner="http://n2:2") == 1.0
    assert metric_sum(samples, "repro_profile_cache_total",
                      runner="http://n1:1", tier="memory") == 5.0
    assert metric_sum(samples, "absent_metric") == 0.0


def test_label_values_lists_distinct_sorted():
    samples = parse_prometheus(TEXT)
    assert label_values(samples, "repro_server_jobs_inflight",
                        "runner") == ["http://n1:1", "http://n2:2"]


# ----------------------------------------------------------------------
# Dashboard rendering (pure)
# ----------------------------------------------------------------------

def test_render_top_shows_fleet_runners_and_slo():
    frame = render_top(SUMMARY, parse_prometheus(TEXT))
    assert "router v1.2.3" in frame and "traces 4" in frame
    assert "runners 2/2 healthy" in frame
    assert "breaker closed" in frame
    assert "slo router" in frame and "-> ok" in frame
    lines = frame.splitlines()
    n1 = next(l for l in lines if l.startswith("http://n1:1"))
    assert "healthy" in n1
    fields = n1.split()
    assert "2" in fields            # inflight
    assert "5" in fields and "3" in fields  # hit:mem / miss
    n2 = next(l for l in lines if l.startswith("http://n2:2"))
    assert "draining" in n2
    assert "reroutes 1" in frame


def test_render_top_flags_degradation():
    summary = dict(SUMMARY)
    summary["slo"] = {**SUMMARY["slo"], "degraded": True}
    assert "DEGRADED" in render_top(summary, [])


def test_render_top_collapses_to_local_row_without_fleet():
    summary = {"role": "runner", "version": "1.2.3"}
    frame = render_top(summary, parse_prometheus("plain 1\n"))
    assert "(local)" in frame
    assert "slo: (not configured)" in frame


# ----------------------------------------------------------------------
# Chrome-event round trip
# ----------------------------------------------------------------------

def test_spans_from_chrome_rebuilds_spans():
    from repro import obs

    collector = obs.add_sink(obs.SpanCollector())
    try:
        with obs.span("outer", runner="http://n1"):
            with obs.span("inner"):
                pass
    finally:
        obs.remove_sink(collector)
    trace = obs.chrome_trace(collector.snapshot())
    spans = spans_from_chrome(trace)
    by_name = {s.name: s for s in spans}
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["outer"].attrs["runner"] == "http://n1"
    assert by_name["inner"].t0 >= by_name["outer"].t0
    assert by_name["inner"].end <= by_name["outer"].end + 1e-6


# ----------------------------------------------------------------------
# Fetch loops (monkeypatched transport)
# ----------------------------------------------------------------------

@pytest.fixture
def fake_endpoints(monkeypatch):
    def fetch_text(server, path, timeout_s=10.0):
        assert server == "http://router:9"
        if path == "/metrics":
            return TEXT
        if path == "/v1/obs/summary":
            return json.dumps(SUMMARY)
        raise AssertionError(f"unexpected path {path}")

    monkeypatch.setattr(console, "fetch_text", fetch_text)


def test_run_top_once_renders_a_single_frame(fake_endpoints):
    out = io.StringIO()
    assert run_top("http://router:9", once=True, stream=out) == 0
    frame = out.getvalue()
    assert "repro fleet console" in frame
    assert "\x1b[" not in frame        # --once never clears the screen


def test_run_top_reports_unreachable_servers():
    out = io.StringIO()
    assert run_top("http://127.0.0.1:1", once=True, stream=out) == 1


def test_run_trace_writes_json_and_renders_timeline(tmp_path,
                                                    monkeypatch):
    from repro import obs

    collector = obs.add_sink(obs.SpanCollector())
    try:
        with obs.span("fleet.job"):
            with obs.span("service.job", runner="http://n1"):
                pass
    finally:
        obs.remove_sink(collector)
    trace = obs.chrome_trace(collector.snapshot())
    monkeypatch.setattr(console, "fetch_json",
                        lambda server, path, timeout_s=10.0: trace)
    out_path = tmp_path / "trace.json"
    out = io.StringIO()
    assert run_trace("http://router:9", "abc123",
                     out_path=str(out_path), timeline=True,
                     stream=out) == 0
    written = json.loads(out_path.read_text())
    assert len(written["traceEvents"]) == 2
    rendered = out.getvalue()
    assert "2 spans" in rendered and "http://n1" in rendered
    assert "fleet.job" in rendered


def test_run_trace_maps_404_to_an_error_exit(monkeypatch):
    import urllib.error

    def missing(server, path, timeout_s=10.0):
        raise urllib.error.HTTPError(server + path, 404, "nope", {},
                                     io.BytesIO(b"{}"))

    monkeypatch.setattr(console, "fetch_json", missing)
    assert run_trace("http://router:9", "missing") == 1
