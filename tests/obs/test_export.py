"""Exporters: JSONL sink, Chrome trace events, ASCII timeline."""

import json

from repro import obs


def _tree(collector):
    """root -> child -> leaf, plus one event on child."""
    with obs.span("root", app="kmeans"):
        with obs.span("child") as child:
            child.event("mark", k="v")
            with obs.span("leaf"):
                pass
    return collector.snapshot()


class TestJsonl:
    def test_sink_streams_one_line_per_span(self, tmp_path, collector):
        path = str(tmp_path / "sub" / "trace.jsonl")
        sink = obs.add_sink(obs.JsonlSink(path))
        try:
            _tree(collector)
        finally:
            obs.remove_sink(sink)
            sink.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 3
        assert all(json.loads(ln)["type"] == "span" for ln in lines)
        spans = obs.read_jsonl(path)
        assert {s.name for s in spans} == {"root", "child", "leaf"}

    def test_read_jsonl_round_trips_links(self, tmp_path, collector):
        path = str(tmp_path / "t.jsonl")
        sink = obs.add_sink(obs.JsonlSink(path))
        try:
            _tree(collector)
        finally:
            obs.remove_sink(sink)
            sink.close()
        by_name = {s.name: s for s in obs.read_jsonl(path)}
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["leaf"].parent_id == by_name["child"].span_id


class TestChromeTrace:
    def test_events_well_formed(self, collector):
        spans = _tree(collector)
        data = obs.chrome_trace(spans)
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in data["traceEvents"] if e["ph"] == "i"]
        assert len(xs) == 3
        assert len(instants) == 1
        assert instants[0]["name"] == "mark"
        assert min(e["ts"] for e in xs) == 0.0   # rebased to the start
        assert all(e["dur"] >= 0 for e in xs)
        assert all(e["args"]["span_id"] for e in xs)
        by_name = {e["name"]: e for e in xs}
        assert (by_name["child"]["args"]["parent_id"]
                == by_name["root"]["args"]["span_id"])

    def test_write_is_valid_json(self, tmp_path, collector):
        spans = _tree(collector)
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(spans, path)
        data = json.load(open(path, encoding="utf-8"))
        assert len(data["traceEvents"]) == 4

    def test_accepts_dicts(self, collector):
        dicts = [s.to_dict() for s in _tree(collector)]
        data = obs.chrome_trace(dicts)
        assert len(data["traceEvents"]) == 4


class TestDepthAndTimeline:
    def test_span_depth(self, collector):
        spans = _tree(collector)
        assert obs.span_depth(spans) == 3
        assert obs.span_depth([]) == 0

    def test_ascii_timeline_lists_every_span(self, collector):
        spans = _tree(collector)
        text = obs.ascii_timeline(spans)
        for name in ("root", "child", "leaf"):
            assert name in text
        # child indented one level under root
        lines = {ln.split("] ", 1)[1].split(" (")[0].rstrip(): ln
                 for ln in text.splitlines() if "] " in ln}
        assert lines["  child"].index("child") \
            > lines["root"].index("root")

    def test_ascii_timeline_truncates(self, collector):
        with obs.span("root"):
            for i in range(10):
                with obs.span(f"s{i}"):
                    pass
        text = obs.ascii_timeline(collector.snapshot(), max_spans=4)
        assert "more spans" in text
