"""SLOTracker: burn-rate math, multi-window degradation, gauges."""

import pytest

from repro.obs.slo import SLOTracker


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


def tracker(**kwargs):
    kwargs.setdefault("name", "test")
    kwargs.setdefault("target", 0.99)
    kwargs.setdefault("windows", {"fast": 60.0, "slow": 600.0})
    return SLOTracker(**kwargs)


def test_burn_rate_is_bad_fraction_over_error_budget():
    clock = FakeClock()
    slo = tracker(now_fn=clock)
    for _ in range(98):
        slo.observe(ok=True)
    for _ in range(2):
        slo.observe(ok=False)
    # 2% bad against a 1% budget: burning at exactly 2x
    assert slo.burn_rate("fast") == pytest.approx(2.0)
    assert slo.burn_rate("slow") == pytest.approx(2.0)


def test_slow_latency_burns_budget_like_an_error():
    slo = tracker(now_fn=FakeClock(), latency_s=1.0)
    slo.observe(ok=True, latency_s=5.0)    # "succeeded", too slowly
    assert slo.total_bad == 1 and slo.total_good == 0


def test_empty_windows_do_not_burn():
    slo = tracker(now_fn=FakeClock())
    assert slo.burn_rate("fast") == 0.0
    assert not slo.degraded


def test_degraded_needs_every_window_hot():
    clock = FakeClock()
    slo = tracker(now_fn=clock, burn_threshold=10.0)
    # an old stretch of pure failure: outside fast, inside slow
    for _ in range(10):
        slo.observe(ok=False)
    clock.advance(120.0)
    assert slo.burn_rate("slow") >= 10.0
    assert slo.burn_rate("fast") == 0.0
    assert not slo.degraded             # the spike already cleared
    # failures *now* light the fast window too -> real incident
    for _ in range(10):
        slo.observe(ok=False)
    assert slo.degraded


def test_fast_window_recovers_as_time_passes():
    clock = FakeClock()
    slo = tracker(now_fn=clock)
    slo.observe(ok=False)
    assert slo.burn_rate("fast") > 0
    clock.advance(61.0)
    assert slo.burn_rate("fast") == 0.0
    assert slo.burn_rate("slow") > 0    # still inside the slow window


def test_buckets_are_pruned_past_the_longest_window():
    clock = FakeClock()
    slo = tracker(now_fn=clock, windows={"w": 10.0})
    for _ in range(30):
        slo.observe(ok=True)
        clock.advance(1.0)
    assert len(slo._buckets) <= 13


def test_snapshot_is_json_shaped():
    import json

    slo = tracker(now_fn=FakeClock())
    slo.observe(ok=True, latency_s=0.1)
    slo.observe(ok=False)
    snap = json.loads(json.dumps(slo.snapshot()))
    assert snap["name"] == "test" and snap["target"] == 0.99
    assert snap["total_good"] == 1 and snap["total_bad"] == 1
    assert set(snap["windows"]) == {"fast", "slow"}
    assert snap["windows"]["fast"]["bad"] == 1
    assert isinstance(snap["degraded"], bool)


def test_attach_publishes_slo_gauges(registry):
    from repro.obs.console import metric_sum, parse_prometheus

    slo = tracker(now_fn=FakeClock()).attach(registry)
    try:
        for _ in range(6):
            slo.observe(ok=True)
        for _ in range(4):
            slo.observe(ok=False)      # 40% bad: burning at ~40x
        text = registry.to_prometheus()
    finally:
        slo.detach()
    samples = parse_prometheus(text)
    assert metric_sum(samples, "repro_slo_burn_rate", slo="test",
                      window="fast") == pytest.approx(40.0)
    assert metric_sum(samples, "repro_slo_degraded", slo="test") == 1.0
    assert metric_sum(samples, "repro_slo_window_requests", slo="test",
                      window="slow") == 10.0
    assert metric_sum(samples, "repro_slo_window_bad", slo="test",
                      window="fast") == 4.0
    # detach really unhooks: no more updates land
    slo.observe(ok=False)
    assert registry.to_prometheus() == text


@pytest.mark.parametrize("kwargs", [
    {"target": 0.0}, {"target": 1.0}, {"target": -1.0},
    {"latency_s": 0.0}, {"windows": {}},
])
def test_constructor_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        tracker(**kwargs)
