"""MetricsRegistry: counters/gauges/histograms, dumps, concurrency."""

import json
import threading

import pytest

from repro import obs


class TestCounter:
    def test_inc_and_get(self, registry):
        c = registry.counter("jobs_total", "jobs", ("status",))
        c.inc(status="ok")
        c.inc(2, status="ok")
        c.inc(status="failed")
        assert c.get(status="ok") == 3
        assert c.get(status="failed") == 1
        assert c.get(status="unseen") == 0

    def test_counters_only_go_up(self, registry):
        c = registry.counter("n")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_mismatch_rejected(self, registry):
        c = registry.counter("x_total", "", ("a",))
        with pytest.raises(ValueError):
            c.inc(b=1)
        with pytest.raises(ValueError):
            c.inc()

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "", ("bad-label",))


class TestRegistry:
    def test_get_or_create_idempotent(self, registry):
        a = registry.counter("same", "help", ("l",))
        b = registry.counter("same", "other help", ("l",))
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("clash")
        with pytest.raises(ValueError):
            registry.gauge("clash")

    def test_labelnames_mismatch_rejected(self, registry):
        registry.counter("lbl", "", ("a",))
        with pytest.raises(ValueError):
            registry.counter("lbl", "", ("a", "b"))

    def test_collector_runs_at_dump_time(self, registry):
        source = {"value": 1}

        def pull(reg):
            reg.gauge("pulled").set(source["value"])

        registry.register_collector(pull)
        assert "pulled 1" in registry.to_prometheus()
        source["value"] = 7
        assert "pulled 7" in registry.to_prometheus()


class TestGaugeAndHistogram:
    def test_gauge_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.get() == 4

    def test_histogram_buckets_cumulative(self, registry):
        h = registry.histogram("lat", "", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)
        text = "\n".join(h.samples())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text


class TestDumps:
    def test_prometheus_text_format(self, registry):
        registry.counter("a_total", "things done", ("k",)).inc(k="v")
        registry.histogram("b_seconds", "waits", buckets=(1.0,)) \
            .observe(0.5)
        text = registry.to_prometheus()
        assert "# HELP a_total things done" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{k="v"} 1' in text
        assert "# TYPE b_seconds histogram" in text

    def test_label_values_escaped(self, registry):
        registry.counter("esc_total", "", ("v",)).inc(v='say "hi"\n')
        line = [ln for ln in registry.to_prometheus().splitlines()
                if ln.startswith("esc_total")][0]
        assert r'\"hi\"' in line and r"\n" in line

    def test_json_dump_parses(self, registry):
        registry.counter("c_total", "", ("x",)).inc(3, x="y")
        data = json.loads(registry.to_json())
        sample = data["c_total"]["samples"][0]
        assert sample == {"labels": {"x": "y"}, "value": 3}


class TestConcurrency:
    N_THREADS = 8
    N_INCS = 500

    def test_counter_exact_total_under_contention(self, registry):
        c = registry.counter("hot_total", "", ("who",))

        def hammer(who):
            for _ in range(self.N_INCS):
                c.inc(who=who)

        threads = [threading.Thread(target=hammer, args=(f"t{i % 2}",))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = c.get(who="t0") + c.get(who="t1")
        assert total == self.N_THREADS * self.N_INCS

    def test_histogram_exact_count_under_contention(self, registry):
        h = registry.histogram("hot_seconds", "", buckets=(0.5,))

        def hammer():
            for i in range(self.N_INCS):
                h.observe(i % 2)  # half below, half above the bucket

        threads = [threading.Thread(target=hammer)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expect = self.N_THREADS * self.N_INCS
        assert h.count() == expect
        text = "\n".join(h.samples())
        assert f'hot_seconds_bucket{{le="0.5"}} {expect // 2}' in text
