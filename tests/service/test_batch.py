"""Batch + DesignService acceptance tests.

The headline check mirrors `python -m repro batch --all --jobs 4`:
all 5 apps x 2 modes execute on a 4-worker pool, the speedup numbers
are identical to serial execution, and a warm-cache rerun (a fresh
service on the same cache directory, as a new process would be)
completes with 10/10 cache hits -- verified via telemetry counters.
"""

import pytest

from repro.evalharness.runner import DESIGN_LABELS, EvaluationRunner
from repro.service import (
    DesignService, FlowJob, expand_jobs, iter_batch, run_batch,
)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("result-cache"))


@pytest.fixture(scope="module")
def cold_report(cache_dir):
    """One cold `--all --jobs 4` batch through a cached service."""
    with DesignService(cache_dir=cache_dir, workers=4,
                       pool="thread") as service:
        report = run_batch(service, expand_jobs())
        counters = dict(service.telemetry.counters)
    return report, counters


class TestExpansion:
    def test_all_by_default_is_5x2(self):
        jobs = expand_jobs()
        assert len(jobs) == 10
        assert {job.app for job in jobs} == {
            "rush_larsen", "nbody", "bezier", "adpredictor", "kmeans"}
        assert {job.mode for job in jobs} == {"informed", "uninformed"}

    def test_subset_and_kwargs(self):
        jobs = expand_jobs(["kmeans"], ["informed"], priority=3,
                           retries=1)
        assert jobs == [FlowJob("kmeans", "informed", priority=3,
                                retries=1)]

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            expand_jobs(["warp_drive"])
        with pytest.raises(KeyError):
            expand_jobs(modes=["psychic"])


class TestColdBatch:
    def test_all_ten_jobs_succeed(self, cold_report):
        report, counters = cold_report
        assert len(report.items) == 10
        assert report.ok, [str(i.error) for i in report.failed]
        assert counters["jobs_run"] == 10
        assert counters["cache_write"] == 10

    def test_speedups_identical_to_serial_execution(self, cold_report,
                                                    runner):
        """Parallel batch numbers == the serial session runner's."""
        report, _ = cold_report
        for item in report.items:
            serial = runner.run(item.job.app, item.job.mode)
            for label in DESIGN_LABELS:
                ours = item.result.design(label)
                want = serial.design(label)
                assert (ours is None) == (want is None), \
                    (item.job.label, label)
                if ours is None or not want.synthesizable:
                    continue
                assert ours.speedup == want.speedup, \
                    (item.job.label, label)
                assert ours.predicted_time_s == want.predicted_time_s
            assert item.result.selected_target == serial.selected_target

    def test_dedup_and_memory_hits_within_one_service(self, cache_dir):
        with DesignService(cache_dir=cache_dir, workers=2,
                           pool="thread") as service:
            job = FlowJob("kmeans", "informed")
            service.run(job)
            service.run(job)
            counters = service.telemetry.counters
            # first resolve from disk (cold service), second from memory
            assert counters["cache_hit_disk"] == 1
            assert counters["cache_hit_memory"] == 1


class TestWarmBatch:
    def test_warm_rerun_is_10_of_10_cache_hits(self, cold_report,
                                               cache_dir):
        """A fresh service on the same cache dir never re-executes."""
        with DesignService(cache_dir=cache_dir, workers=4,
                           pool="thread") as service:
            report = run_batch(service, expand_jobs())
            counters = service.telemetry.counters
            assert len(report.items) == 10 and report.ok
            assert counters["cache_hit_disk"] == 10
            assert counters["jobs_run"] == 0
            assert counters["cache_miss"] == 0
            assert service.telemetry.cache_hits == 10
            assert service.cache.stats.hits == 10
            assert all(item.source == "cache-disk"
                       for item in report.items)

    def test_warm_results_match_serial_numbers(self, cold_report,
                                               cache_dir, runner):
        with DesignService(cache_dir=cache_dir, pool="thread") as service:
            for job in expand_jobs():
                record = service.run(job)
                serial = runner.run(job.app, job.mode)
                auto_ours = record.auto_selected
                auto_want = serial.auto_selected
                assert (auto_ours is None) == (auto_want is None)
                if auto_ours is not None:
                    assert auto_ours.speedup == auto_want.speedup

    def test_streaming_yields_cached_items_first(self, cold_report,
                                                 cache_dir):
        with DesignService(cache_dir=cache_dir, pool="thread") as service:
            items = list(iter_batch(service, expand_jobs()))
            assert len(items) == 10
            assert all(item.source == "cache-disk" for item in items)
            assert all(item.best_speedup is None
                       or item.best_speedup > 1 for item in items)


class TestServiceBackedRunner:
    def test_runner_uses_the_shared_disk_cache(self, cold_report,
                                               cache_dir):
        """EvaluationRunner on a warmed cache never re-runs a flow."""
        service = DesignService(cache_dir=cache_dir, pool="thread")
        try:
            eval_runner = EvaluationRunner(service=service)
            result = eval_runner.informed("kmeans")
            assert result.selected_target == "omp"
            assert service.telemetry.counters["jobs_run"] == 0
            assert service.telemetry.counters["cache_hit_disk"] == 1
        finally:
            service.close()
