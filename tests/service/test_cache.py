"""ResultCache tests: persistence, versioned invalidation, stats."""

import json
import os

from repro.flow.serialize import FlowResultRecord, result_to_dict
from repro.service.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.service.jobs import FlowJob


def put_result(cache, result, job):
    cache.put(job.key(), job.spec(),
              result_to_dict(result, include_sources=True))
    return job.key()


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path, kmeans_informed):
        cache = ResultCache(str(tmp_path))
        job = FlowJob("kmeans", "informed")
        assert cache.get(job.key()) is None
        key = put_result(cache, kmeans_informed, job)
        record = cache.get(key)
        assert isinstance(record, FlowResultRecord)
        assert record.app_name == "kmeans"
        assert record.selected_target == kmeans_informed.selected_target
        assert record.auto_selected.speedup \
            == kmeans_informed.auto_selected.speedup

    def test_survives_a_new_cache_instance(self, tmp_path, kmeans_informed):
        job = FlowJob("kmeans", "informed")
        key = put_result(ResultCache(str(tmp_path)), kmeans_informed, job)
        fresh = ResultCache(str(tmp_path))
        record = fresh.get(key)
        assert record is not None
        assert [d.label for d in record.designs] \
            == [d.label for d in kmeans_informed.designs]
        assert fresh.stats.hits == 1

    def test_sources_are_kept(self, tmp_path, kmeans_informed):
        cache = ResultCache(str(tmp_path))
        key = put_result(cache, kmeans_informed,
                         FlowJob("kmeans", "informed"))
        record = cache.get(key)
        assert "#pragma omp parallel for" in record.designs[0].render()


class TestInvalidation:
    def test_stale_format_is_dropped(self, tmp_path, kmeans_informed):
        cache = ResultCache(str(tmp_path))
        job = FlowJob("kmeans", "informed")
        key = put_result(cache, kmeans_informed, job)
        path = cache._path(key)
        entry = json.load(open(path))
        entry["format"] = CACHE_FORMAT_VERSION + 1
        json.dump(entry, open(path, "w"))
        assert cache.get(key) is None
        assert cache.stats.invalidated == 1
        assert not os.path.exists(path)

    def test_corrupt_entry_is_quarantined(self, tmp_path,
                                          kmeans_informed):
        cache = ResultCache(str(tmp_path))
        key = put_result(cache, kmeans_informed,
                         FlowJob("kmeans", "informed"))
        path = cache._path(key)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.invalidated == 0
        # evidence moved aside, not deleted; no longer a live entry
        assert not os.path.exists(path)
        quarantined = list(cache.quarantined())
        assert len(quarantined) == 1
        assert quarantined[0].endswith(os.path.basename(path))
        assert key not in list(cache.keys())

    def test_crc_mismatch_is_quarantined(self, tmp_path, kmeans_informed):
        cache = ResultCache(str(tmp_path))
        key = put_result(cache, kmeans_informed,
                         FlowJob("kmeans", "informed"))
        path = cache._path(key)
        entry = json.load(open(path))
        # valid JSON, right format, silently flipped payload bit
        entry["result"]["app"] = entry["result"].get("app", "") + "x"
        json.dump(entry, open(path, "w"))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert len(list(cache.quarantined())) == 1


class TestStatsAndMaintenance:
    def test_stats_count_lookups_and_writes(self, tmp_path,
                                            kmeans_informed):
        cache = ResultCache(str(tmp_path))
        job = FlowJob("kmeans", "informed")
        cache.get(job.key())
        put_result(cache, kmeans_informed, job)
        cache.get(job.key())
        cache.get(job.key())
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1
        assert cache.stats.hits == 2
        assert cache.stats.hit_rate == 2 / 3

    def test_keys_entries_and_purge(self, tmp_path, kmeans_informed,
                                    kmeans_uninformed):
        cache = ResultCache(str(tmp_path))
        put_result(cache, kmeans_informed, FlowJob("kmeans", "informed"))
        put_result(cache, kmeans_uninformed,
                   FlowJob("kmeans", "uninformed"))
        assert len(cache) == 2
        modes = {entry["job"]["mode"] for entry in cache.entries()}
        assert modes == {"informed", "uninformed"}
        assert cache.size_bytes() > 0
        assert cache.purge() == 2
        assert len(cache) == 0


class TestDurableWrites:
    """``REPRO_DURABLE=1``: fsync before rename, no half-visible entry."""

    def test_durable_put_fsyncs_before_the_rename(
            self, tmp_path, kmeans_informed, monkeypatch):
        import repro.service.cache as cache_mod

        synced = []
        real_fsync = os.fsync
        monkeypatch.setenv("REPRO_DURABLE", "1")
        monkeypatch.setattr(cache_mod.os, "fsync",
                            lambda fd: (synced.append(fd),
                                        real_fsync(fd))[1])
        cache = ResultCache(str(tmp_path))
        key = put_result(cache, kmeans_informed,
                         FlowJob("kmeans", "informed"))
        # entry fsync + directory fsync
        assert len(synced) >= 2
        assert cache.get(key) is not None

    def test_non_durable_put_never_fsyncs(
            self, tmp_path, kmeans_informed, monkeypatch):
        import repro.service.cache as cache_mod

        monkeypatch.delenv("REPRO_DURABLE", raising=False)
        monkeypatch.setattr(
            cache_mod.os, "fsync",
            lambda fd: (_ for _ in ()).throw(
                AssertionError("fsync outside REPRO_DURABLE=1")))
        cache = ResultCache(str(tmp_path))
        key = put_result(cache, kmeans_informed,
                         FlowJob("kmeans", "informed"))
        assert cache.get(key) is not None

    def test_crash_before_rename_leaves_no_entry(
            self, tmp_path, kmeans_informed, monkeypatch):
        """The torn-write crash point: the ``cache.fsync`` fault fires
        between the temp write and the rename -- the entry must be
        entirely absent, never half-visible."""
        import pytest

        from repro.resilience import faults
        from repro.resilience.faults import FaultPlan, InjectedFault

        monkeypatch.setenv("REPRO_DURABLE", "1")
        cache = ResultCache(str(tmp_path))
        job = FlowJob("kmeans", "informed")
        plan = FaultPlan(seed=0, rate=1.0, sites=("cache.fsync",),
                         max_faults=1)
        with faults.active_plan(plan):
            with pytest.raises(InjectedFault):
                put_result(cache, kmeans_informed, job)
        # nothing published, and the torn temp file was discarded
        assert cache.get(job.key()) is None
        leftovers = [name for _, _, files in os.walk(str(tmp_path))
                     for name in files]
        assert leftovers == []
        # the very next write (fault budget spent) publishes atomically
        key = put_result(cache, kmeans_informed, job)
        assert cache.get(key).app_name == "kmeans"
