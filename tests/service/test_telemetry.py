"""Telemetry tests: engine observer hooks, spans, fleet aggregation."""

import threading

from repro.apps.registry import get_app
from repro.flow.engine import FlowEngine
from repro.service.telemetry import (
    FleetTelemetry, JobTelemetry, TaskSpan, Tracer,
)


class TestTaskSpan:
    def test_from_dict_accepts_pre_t0_dicts(self):
        """Dicts cached before the t0/error/span_id fields existed."""
        legacy = {"name": "x", "kind": "A", "scope": "T-INDEP",
                  "wall_s": 0.25, "status": "ok"}
        span = TaskSpan.from_dict(legacy)
        assert span.t0 == 0.0
        assert span.error is None
        assert span.span_id is None
        assert span.wall_s == 0.25

    def test_round_trip_with_error_detail(self):
        span = TaskSpan("x", "A", "T-INDEP", 0.5, status="error",
                        t0=123.4, error="ValueError: nope",
                        span_id="1f.2")
        data = span.to_dict()
        assert data["t0"] == 123.4
        assert data["error"] == "ValueError: nope"
        rebuilt = TaskSpan.from_dict(data)
        assert rebuilt == span

    def test_optional_fields_omitted_when_unset(self):
        data = TaskSpan("x", "A", "T-INDEP", 0.5).to_dict()
        assert "error" not in data and "span_id" not in data

    def test_tracer_records_error_detail(self):
        from repro.flow.context import FlowContext
        from repro.flow.task import Task, TaskKind

        class Boom(Task):
            kind = TaskKind.ANALYSIS
            name = "Boom"
            scope = "T-INDEP"

            def run(self, ctx):
                raise ValueError("nope")

        tracer = Tracer()
        ctx = FlowContext(get_app("kmeans"), observer=tracer)
        try:
            Boom()(ctx)
        except ValueError:
            pass
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.error == "ValueError: nope"
        assert span.t0 > 0


class TestTracer:
    def test_engine_hooks_emit_spans(self):
        tracer = Tracer()
        FlowEngine().run(get_app("kmeans"), mode="informed",
                         observer=tracer)
        assert tracer.spans, "no spans emitted by the flow engine"
        names = [span.name for span in tracer.spans]
        assert "Identify Hotspot Loops" in names
        assert all(span.kind in ("A", "T", "CG", "O")
                   for span in tracer.spans)
        assert all(span.wall_s >= 0 for span in tracer.spans)
        assert all(span.status == "ok" for span in tracer.spans)

    def test_branch_decisions_recorded(self):
        tracer = Tracer()
        FlowEngine().run(get_app("kmeans"), mode="uninformed",
                         observer=tracer)
        branches = {event.branch: event.selected
                    for event in tracer.branches}
        assert set(branches["A"]) == {"gpu", "fpga", "omp"}
        assert set(branches["B"]) == {"gtx1080ti", "rtx2080ti"}
        assert set(branches["C"]) == {"arria10", "stratix10"}

    def test_by_kind_and_wall_total(self):
        tracer = Tracer()
        FlowEngine().run(get_app("kmeans"), mode="informed",
                         observer=tracer)
        kinds = tracer.by_kind()
        assert kinds["A"]["count"] >= 7     # the T-INDEP analyses alone
        total = sum(bucket["wall_s"] for bucket in kinds.values())
        assert abs(total - tracer.wall_total_s) < 1e-9

    def test_dict_round_trip(self):
        tracer = Tracer()
        tracer.spans = [TaskSpan("t", "A", "T-INDEP", 0.5)]
        FlowEngine().run(get_app("kmeans"), mode="informed",
                         observer=tracer)
        rebuilt = Tracer.from_dict(tracer.to_dict())
        assert [s.to_dict() for s in rebuilt.spans] \
            == [s.to_dict() for s in tracer.spans]
        assert [b.to_dict() for b in rebuilt.branches] \
            == [b.to_dict() for b in tracer.branches]


class TestFleetTelemetry:
    def _job(self, app="kmeans", source="run", status="ok", wall=1.0):
        return JobTelemetry(key="k" * 64, app=app, mode="informed",
                            source=source, status=status, wall_s=wall,
                            attempts=1,
                            spans=[TaskSpan("x", "A", "T-INDEP", wall)])

    def test_counters_and_hits(self):
        fleet = FleetTelemetry()
        fleet.count("cache_hit_disk", 3)
        fleet.count("cache_hit_memory")
        fleet.count("cache_miss", 2)
        assert fleet.cache_hits == 4
        assert fleet.counters["cache_miss"] == 2

    def test_aggregation_by_kind_and_source(self):
        fleet = FleetTelemetry()
        fleet.record_job(self._job(wall=1.0))
        fleet.record_job(self._job(app="nbody", source="cache-disk",
                                   wall=0.0))
        kinds = fleet.by_kind()
        assert kinds["A"]["count"] == 2
        assert fleet.by_source() == {"run": 1, "cache-disk": 1}

    def test_render_ascii_mentions_the_numbers(self):
        fleet = FleetTelemetry()
        fleet.count("cache_hit_disk", 10)
        fleet.record_job(self._job())
        text = fleet.render_ascii()
        assert "10 disk hits" in text
        assert "kmeans/informed" in text
        assert "analysis" in text

    def test_to_dict_is_json_compatible(self):
        import json

        fleet = FleetTelemetry()
        fleet.record_job(self._job())
        fleet.count("dedup")
        data = json.loads(fleet.to_json())
        assert data["counters"]["dedup"] == 1
        assert data["jobs"][0]["app"] == "kmeans"

    def test_concurrent_counts_and_records_are_exact(self):
        fleet = FleetTelemetry()
        n_threads, n_ops = 8, 200

        def hammer(i):
            for _ in range(n_ops):
                fleet.count("cache_miss")
                fleet.count("jobs_run", 2)
                fleet.record_job(self._job(app="kmeans" if i % 2
                                           else "nbody"))

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert fleet.counters["cache_miss"] == n_threads * n_ops
        assert fleet.counters["jobs_run"] == 2 * n_threads * n_ops
        assert len(fleet.jobs) == n_threads * n_ops
        assert fleet.by_kind()["A"]["count"] == n_threads * n_ops
