"""JobScheduler tests: parallelism, dedup, timeout, retry, cancel.

Timing discipline: fake tasks block on Events (released by the test)
rather than sleeping, so nothing here waits anywhere near 1s in CI.
"""

import threading

import pytest

from repro.service.scheduler import (
    JobCancelled, JobFailed, JobScheduler, JobStatus, JobTimeout,
)


@pytest.fixture
def scheduler():
    sched = JobScheduler(workers=2, mode="thread",
                         backoff_s=0.001, max_backoff_s=0.01)
    yield sched
    sched.shutdown(wait=True)


class TestExecution:
    def test_runs_and_returns(self, scheduler):
        handle, created = scheduler.submit("k1", lambda: 41 + 1)
        assert created
        assert handle.result(timeout=5) == 42
        assert handle.status is JobStatus.SUCCEEDED
        assert handle.attempts == 1

    def test_jobs_run_in_parallel(self, scheduler):
        """Two jobs both enter RUNNING at once on a 2-worker pool."""
        both_started = threading.Barrier(3, timeout=5)
        release = threading.Event()

        def task():
            both_started.wait()
            release.wait(5)
            return "done"

        h1, _ = scheduler.submit("a", task)
        h2, _ = scheduler.submit("b", task)
        both_started.wait()      # would time out if the pool were serial
        release.set()
        assert h1.result(5) == "done"
        assert h2.result(5) == "done"

    def test_as_completed_yields_in_finish_order(self, scheduler):
        gate_a = threading.Event()

        def slow():
            gate_a.wait(5)
            return "slow"

        h_slow, _ = scheduler.submit("slow", slow)
        h_fast, _ = scheduler.submit("fast", lambda: "fast")
        ordered = []
        for handle in JobScheduler.as_completed([h_slow, h_fast],
                                                timeout=5):
            ordered.append(handle.key)
            gate_a.set()
        assert ordered == ["fast", "slow"]


class TestDedup:
    def test_identical_inflight_jobs_share_one_handle(self, scheduler):
        release = threading.Event()
        runs = []

        def task():
            runs.append(1)
            release.wait(5)
            return "x"

        h1, created1 = scheduler.submit("same", task)
        h2, created2 = scheduler.submit("same", task)
        assert created1 and not created2
        assert h1 is h2
        assert scheduler.dedup_joins == 1
        release.set()
        assert h1.result(5) == "x"
        assert len(runs) == 1

    def test_completed_key_can_run_again(self, scheduler):
        h1, _ = scheduler.submit("k", lambda: 1)
        h1.result(5)
        h2, created = scheduler.submit("k", lambda: 2)
        assert created and h2 is not h1
        assert h2.result(5) == 2


class TestTimeout:
    def test_hanging_job_times_out(self, scheduler):
        hang = threading.Event()
        handle, _ = scheduler.submit("hang", lambda: hang.wait(5),
                                     timeout=0.05)
        with pytest.raises(JobTimeout):
            handle.result(timeout=5)
        assert handle.status is JobStatus.TIMEOUT
        hang.set()               # let the abandoned worker finish fast

    def test_timeout_then_retry_can_succeed(self, scheduler):
        """First attempt hangs; the retry finds the gate open."""
        gate = threading.Event()
        attempts = []

        def flaky_hang():
            attempts.append(1)
            if len(attempts) == 1:
                gate.wait(5)     # first attempt: hangs past the timeout
            return "recovered"

        handle, _ = scheduler.submit("fh", flaky_hang,
                                     timeout=0.05, retries=1)
        assert handle.result(timeout=5) == "recovered"
        assert handle.attempts == 2
        gate.set()


class TestRetry:
    def test_flaky_job_retries_until_success(self, scheduler):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError(f"boom {len(calls)}")
            return "ok"

        handle, _ = scheduler.submit("flaky", flaky, retries=3)
        assert handle.result(timeout=5) == "ok"
        assert handle.attempts == 3
        assert len(calls) == 3

    def test_exhausted_retries_raise_with_cause(self, scheduler):
        def always_fails():
            raise ValueError("nope")

        handle, _ = scheduler.submit("bad", always_fails, retries=2)
        with pytest.raises(JobFailed) as excinfo:
            handle.result(timeout=5)
        assert handle.status is JobStatus.FAILED
        assert handle.attempts == 3
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_zero_retries_fails_on_first_error(self, scheduler):
        handle, _ = scheduler.submit(
            "once", lambda: (_ for _ in ()).throw(RuntimeError("x")))
        with pytest.raises(JobFailed):
            handle.result(timeout=5)
        assert handle.attempts == 1


class TestCancellation:
    def test_queued_job_cancels_immediately(self):
        sched = JobScheduler(workers=1, mode="thread")
        try:
            block = threading.Event()
            running, _ = sched.submit("busy", lambda: block.wait(5))
            queued, _ = sched.submit("queued", lambda: "never")
            assert queued.cancel()
            with pytest.raises(JobCancelled):
                queued.result(timeout=5)
            assert queued.status is JobStatus.CANCELLED
            block.set()
            running.result(timeout=5)
        finally:
            sched.shutdown(wait=True)

    def test_cancel_after_done_is_false(self, scheduler):
        handle, _ = scheduler.submit("done", lambda: 7)
        handle.result(timeout=5)
        assert handle.cancel() is False


class TestFallback:
    def test_thread_mode_resolves_to_threads(self, scheduler):
        assert scheduler.mode == "thread"
        assert scheduler.fallback_note is None

    def test_auto_with_one_worker_uses_threads(self):
        sched = JobScheduler(workers=1, mode="auto")
        try:
            assert sched.mode == "thread"
        finally:
            sched.shutdown(wait=True)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            JobScheduler(workers=0)
        with pytest.raises(ValueError):
            JobScheduler(workers=1, mode="fiber")
