"""FlowJob validation and content-hash key tests."""

import pytest

from repro.service.cache import CACHE_FORMAT_VERSION
from repro.service.jobs import FlowJob, JobValidationError


class TestValidation:
    def test_accepts_known_app_and_mode(self):
        job = FlowJob("kmeans", "informed")
        assert job.label == "kmeans/informed"

    def test_rejects_unknown_app(self):
        with pytest.raises(JobValidationError, match="unknown app"):
            FlowJob("not_an_app", "informed")

    def test_rejects_unknown_mode(self):
        with pytest.raises(JobValidationError, match="unknown mode"):
            FlowJob("kmeans", "clairvoyant")

    def test_rejects_bad_numbers(self):
        with pytest.raises(JobValidationError):
            FlowJob("kmeans", intensity_threshold=0.0)
        with pytest.raises(JobValidationError):
            FlowJob("kmeans", scale=-1.0)
        with pytest.raises(JobValidationError):
            FlowJob("kmeans", timeout_s=0)
        with pytest.raises(JobValidationError):
            FlowJob("kmeans", retries=-1)
        with pytest.raises(JobValidationError):
            FlowJob("kmeans", priority="high")


class TestKeys:
    def test_key_is_deterministic(self):
        assert FlowJob("kmeans", "informed").key() \
            == FlowJob("kmeans", "informed").key()

    def test_key_varies_with_every_result_determining_field(self):
        base = FlowJob("kmeans", "informed")
        variants = [
            FlowJob("nbody", "informed"),
            FlowJob("kmeans", "uninformed"),
            FlowJob("kmeans", "informed", intensity_threshold=0.5),
            FlowJob("kmeans", "informed", scale=2.0),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_priority_and_limits_do_not_change_the_key(self):
        """Scheduling knobs are not content -- same work, same key."""
        base = FlowJob("kmeans", "informed")
        assert FlowJob("kmeans", "informed", priority=9).key() == base.key()
        assert FlowJob("kmeans", "informed", timeout_s=60,
                       retries=2).key() == base.key()

    def test_spec_includes_source_hash_and_format(self):
        spec = FlowJob("kmeans", "informed").spec()
        assert spec["format"] == CACHE_FORMAT_VERSION
        assert len(spec["source_sha"]) == 64

    def test_from_spec_round_trip(self):
        job = FlowJob("bezier", "uninformed", intensity_threshold=0.3,
                      scale=1.5)
        rebuilt = FlowJob.from_spec(job.spec())
        assert rebuilt == job
        assert rebuilt.key() == job.key()
