"""One-pass shared profiling tests (the ``repro.analysis.profile`` layer).

The headline property: a full informed flow performs exactly one
dynamic execution per distinct (source, workload) pair, with hotspot,
trip-count, data-movement and alias analysis all reading the shared
profile -- and a warm profile cache performs zero executions.
"""

import pytest

from repro.analysis.profile import (
    clear_profile_cache, collect_profile, deserialize_report,
    profile_cache_stats, serialize_report, stable_loop_keys,
    workload_fingerprint,
)
from repro.apps import get_app
from repro.flow.engine import FlowEngine
from repro.lang import engine as eng
from repro.lang.interpreter import ExecLimitExceeded, Interpreter, Workload
from repro.meta.ast_api import Ast
from repro.meta.unparse import unparse


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_profile_cache()
    yield
    clear_profile_cache()


def observe_executions(fn):
    """Run ``fn`` and return one (source, workload-key, entry, mode)
    record per dynamic program execution."""
    seen = []

    def obs(unit, workload, entry, mode):
        seen.append((unparse(unit), workload_fingerprint(workload),
                     entry, mode))
    eng.add_execution_observer(obs)
    try:
        fn()
    finally:
        eng.remove_execution_observer(obs)
    return seen


class TestFlowExecutesOncePerSource:
    def test_informed_flow_one_execution_per_source_workload(self):
        app = get_app("kmeans")
        seen = observe_executions(
            lambda: FlowEngine().run(app, "informed"))
        keys = [(src, wl, entry) for src, wl, entry, _ in seen]
        assert len(keys) == len(set(keys)), "duplicate dynamic execution"
        # the flow really is dynamic: at least the timer-instrumented
        # hotspot run plus the post-extraction analysis run
        assert len(keys) >= 2

    def test_second_flow_performs_zero_executions(self):
        app = get_app("kmeans")
        FlowEngine().run(app, "informed")
        seen = observe_executions(
            lambda: FlowEngine().run(app, "informed"))
        assert seen == []

    def test_uninformed_flow_reuses_informed_profiles(self):
        app = get_app("nbody")
        FlowEngine().run(app, "informed")
        seen = observe_executions(
            lambda: FlowEngine().run(app, "uninformed"))
        assert seen == []

    def test_sharing_disabled_restores_cross_flow_re_execution(self, monkeypatch):
        # pre-sharing behavior: the informed and uninformed flows each
        # re-execute the same (source, workload) pairs
        monkeypatch.setenv("REPRO_PROFILE_CACHE", "0")
        app = get_app("kmeans")

        def both():
            engine = FlowEngine()
            engine.run(app, "informed")
            engine.run(app, "uninformed")
        seen = observe_executions(both)
        keys = [(src, wl, entry) for src, wl, entry, _ in seen]
        assert len(keys) > len(set(keys)), \
            "expected duplicated executions with sharing disabled"


class TestEngineSelection:
    def test_interp_env_restores_interpreter_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "interp")
        runs = []
        orig = Interpreter.run

        def counting(self, *a, **k):
            runs.append(self.unit)
            return orig(self, *a, **k)
        monkeypatch.setattr(Interpreter, "run", counting)
        seen = observe_executions(
            lambda: FlowEngine().run(get_app("kmeans"), "informed"))
        assert seen, "flow performed no dynamic executions"
        assert all(mode == "interp" for _, _, _, mode in seen)
        assert len(runs) == len(seen), \
            "interp mode must execute via the tree-walking interpreter"

    def test_compiled_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        seen = observe_executions(
            lambda: Ast("int main() { return 3; }").execute())
        assert [m for _, _, _, m in seen] == ["compiled"]

    def test_bailout_notifies_the_interpreter_re_run(self, monkeypatch):
        # passing int* to a double* param compiles but bails out at run
        # time; the interpreter re-run is a second real execution, so
        # observers must hear about both (tagged as the fallback)
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        source = """
        double first(double* p) { p[0] = p[0] + 1.0; return p[0]; }
        int main() {
            int* a = ws_array_int("a", 3);
            a[0] = 6;
            double v = first(a);
            return (int)v;
        }
        """
        reports = []
        seen = observe_executions(
            lambda: reports.append(Ast(source).execute()))
        assert [m for _, _, _, m in seen] == ["compiled", "interp-fallback"]
        # the fallback re-derived the buffers: no double-increment
        assert reports[0].return_value == 7


SOURCE = """
int work(const double* x, double* y, int n) {
    timer_start("k");
    for (int i = 0; i < n; i++) {
        y[i] = x[i] * 2.0 + 1.0;
    }
    timer_stop("k");
    return n;
}
int main() {
    int n = ws_int("n");
    double* x = ws_array_double("x", n);
    double* y = ws_array_double("y", n);
    int r = work(x, y, n);
    printf("%d\\n", r);
    return r;
}
"""


def make_workload():
    return Workload(scalars={"n": 8},
                    arrays={"x": [float(i) for i in range(8)]})


class TestSerialization:
    def test_round_trip_rebinds_node_ids_across_reparse(self):
        ast_a = Ast(SOURCE)
        report = Interpreter(ast_a.unit, make_workload()).run("main")
        data = serialize_report(report, ast_a.unit)
        assert data is not None

        ast_b = Ast(SOURCE)  # fresh parse: different node ids
        assert stable_loop_keys(ast_a.unit) != stable_loop_keys(ast_b.unit) \
            or list(stable_loop_keys(ast_a.unit)) \
            == list(stable_loop_keys(ast_b.unit))
        restored = deserialize_report(data, ast_b.unit)
        assert restored is not None

        keys_b = stable_loop_keys(ast_b.unit)
        assert {keys_b[nid] for nid in restored.loop_profiles} \
            == {key for key in data["loops"]}
        assert restored.global_counter.as_dict() \
            == report.global_counter.as_dict()
        assert restored.timers == report.timers
        assert restored.stdout == report.stdout
        assert restored.return_value == report.return_value
        [(fn, args)] = [(e.fn_name, e.args) for e in restored.pointer_events]
        assert fn == "work"
        # dense renumbering: ids start at 0, distinct args stay distinct
        assert sorted(a[1] for a in args) == [0, 1]

    def test_collect_profile_memory_cache(self):
        ast = Ast(SOURCE)
        r1 = collect_profile(ast, make_workload())
        r2 = collect_profile(ast, make_workload())
        stats = profile_cache_stats()
        assert stats.executions == 1
        assert stats.memory_hits == 1
        assert r1 is not r2  # hits materialize a fresh report
        assert r1.total_cycles() == r2.total_cycles()

    def test_different_workload_executes_again(self):
        ast = Ast(SOURCE)
        collect_profile(ast, make_workload())
        collect_profile(ast, Workload(scalars={"n": 4}))
        assert profile_cache_stats().executions == 2

    def test_max_steps_is_part_of_the_cache_key(self):
        # a cached full run must not satisfy a step-limited request:
        # the limit would be silently un-enforced on the hit
        ast = Ast(SOURCE)
        collect_profile(ast, make_workload())
        with pytest.raises(ExecLimitExceeded):
            collect_profile(ast, make_workload(), max_steps=3)
        assert profile_cache_stats().executions == 2

    def test_disk_layer_survives_memory_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ast = Ast(SOURCE)
        r1 = collect_profile(ast, make_workload())
        clear_profile_cache()  # simulate a new process
        seen = observe_executions(
            lambda: collect_profile(ast, make_workload()))
        assert seen == []
        assert profile_cache_stats().disk_hits == 1
        r2 = collect_profile(ast, make_workload())
        assert r2.global_counter.as_dict() == r1.global_counter.as_dict()

    def test_kernel_report_recompute_after_invalidate(self):
        from repro.flow.context import FlowContext
        app = get_app("kmeans")
        ctx = FlowContext(app)
        first = ctx.kernel_report()
        assert ctx.kernel_report() is first  # memoized
        ctx.invalidate_kernel_report()
        second = ctx.kernel_report()
        assert second is not first  # fresh object (cache rehydrates)
        assert second.global_counter.as_dict() \
            == first.global_counter.as_dict()
