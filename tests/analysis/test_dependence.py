"""Loop dependence analysis tests: the Fig. 3 decision inputs."""

import pytest

from repro.analysis.dependence import analyze_dependences, analyze_loop_dependences
from repro.meta.ast_api import Ast


def deps_of(body, params="double* a, double* b, int n", extra=""):
    source = f"void knl({params}) {{\n{extra}\n{body}\n}}"
    ast = Ast(source)
    loop = ast.function("knl").loops()[0]
    return analyze_loop_dependences(loop)


class TestParallelLoops:
    def test_elementwise_is_parallel(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            a[i] = b[i] * 2.0;
        }""")
        assert info.is_parallel

    def test_private_scalar_is_parallel(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            double t = b[i];
            a[i] = t * t;
        }""")
        assert info.is_parallel

    def test_strided_components_are_parallel(self):
        # a[i*3], a[i*3+1], a[i*3+2]: constant offsets below the stride
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            a[i * 3] = 1.0;
            a[i * 3 + 1] = 2.0;
            a[i * 3 + 2] = 3.0;
        }""")
        assert info.is_parallel

    def test_read_only_arrays_never_conflict(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            a[i] = b[i] + b[i + 1] + b[0];
        }""")
        assert info.is_parallel

    def test_local_array_is_private(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            double tmp[4];
            tmp[0] = b[i];
            a[i] = tmp[0];
        }""")
        assert info.is_parallel


class TestReductions:
    def test_compound_add_is_reduction(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            s += a[i];
        }""", extra="double s = 0.0;")
        assert info.reductions == ("s",)
        assert not info.carried
        assert info.is_parallel_with_reductions
        assert not info.is_parallel

    def test_explicit_form_is_reduction(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            s = s + a[i];
        }""", extra="double s = 0.0;")
        assert info.reductions == ("s",)

    def test_multiplicative_reduction(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            p *= a[i];
        }""", extra="double p = 1.0;")
        assert info.reductions == ("p",)


class TestCarriedDependences:
    def test_running_min_with_read_is_carried(self):
        # the K-Means pattern: best is read (compare) and plainly assigned
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            if (a[i] < best) {
                best = a[i];
            }
        }""", extra="double best = 1.0e30;")
        assert any(c.name == "best" for c in info.carried)
        assert not info.is_parallel_with_reductions

    def test_distance_one_array_dep(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            a[i] = a[i + 1] * 0.5;
        }""")
        assert any(c.kind == "array" and "distance" in c.reason
                   for c in info.carried)

    def test_loop_invariant_write_is_carried(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            a[0] = a[0] + b[i];
        }""")
        assert info.carried

    def test_non_affine_subscript_is_carried(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            a[idx[i]] = b[i];
        }""", params="double* a, double* b, int n, int* idx")
        assert any(c.kind == "non-affine" for c in info.carried)

    def test_mismatched_strides_carried(self):
        info = deps_of("""
        for (int i = 0; i < n; i++) {
            a[i * 2] = a[i] + 1.0;
        }""")
        assert info.carried

    def test_call_with_pointer_args_is_carried(self):
        source = """
        void helper(double* p) { p[0] = 1.0; }
        void knl(double* a, int n) {
            for (int i = 0; i < n; i++) {
                helper(a);
            }
        }
        """
        ast = Ast(source)
        info = analyze_loop_dependences(ast.function("knl").loops()[0])
        assert any(c.kind == "call" for c in info.carried)

    def test_pure_scalar_call_is_safe(self):
        source = """
        double f(double v) { return v * 2.0; }
        void knl(double* a, int n) {
            for (int i = 0; i < n; i++) {
                a[i] = f(a[i]);
            }
        }
        """
        ast = Ast(source)
        info = analyze_loop_dependences(ast.function("knl").loops()[0])
        assert not any(c.kind == "call" for c in info.carried)


class TestNestedStructure:
    NBODY_LIKE = """
    void knl(double* acc, const double* pos, int n) {
        for (int i = 0; i < n; i++) {
            acc[i] = 0.0;
            for (int j = 0; j < n; j++) {
                acc[i] += pos[j] - pos[i];
            }
        }
    }
    """

    def test_outer_parallel_inner_carried(self):
        ast = Ast(self.NBODY_LIKE)
        deps = analyze_dependences(ast, "knl")
        outer = deps[[p for p in deps if p.index == 0][0]]
        inner = deps[[p for p in deps if p.index == 1][0]]
        assert outer.is_parallel
        # inner loop writes acc[i], invariant in j -> carried
        assert inner.carried

    def test_analyze_all_loops(self):
        ast = Ast(self.NBODY_LIKE)
        deps = analyze_dependences(ast, "knl")
        assert len(deps) == 2
