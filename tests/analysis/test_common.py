"""Affine-form and static-typing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.common import (
    LoopPath, SymbolTable, affine_form, infer_type, loop_path, resolve_loop,
)
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import CType
from repro.meta.parser import parse_expr


class TestAffineForm:
    def test_constant(self):
        assert affine_form(parse_expr("7")) == {1: 7}

    def test_variable(self):
        assert affine_form(parse_expr("i")) == {"i": 1, 1: 0}

    def test_scaled_plus_offset(self):
        assert affine_form(parse_expr("i * 4 + 3")) == {"i": 4, 1: 3}

    def test_two_variables(self):
        form = affine_form(parse_expr("i * 8 + j * 2 + 1"))
        assert form == {"i": 8, "j": 2, 1: 1}

    def test_subtraction_and_negation(self):
        assert affine_form(parse_expr("7 - i")) == {"i": -1, 1: 7}
        assert affine_form(parse_expr("-(i + 2)")) == {"i": -1, 1: -2}

    def test_constant_factor_on_left(self):
        assert affine_form(parse_expr("3 * i")) == {"i": 3, 1: 0}

    def test_cancellation(self):
        form = affine_form(parse_expr("i - i"))
        assert form.get("i", 0) == 0

    def test_product_of_variables_not_affine(self):
        assert affine_form(parse_expr("i * j")) is None

    def test_division_not_affine(self):
        assert affine_form(parse_expr("i / 2")) is None

    def test_array_load_subscript_not_affine(self):
        assert affine_form(parse_expr("labels[i]")) is None

    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(1, 9))
    def test_affine_form_matches_evaluation(self, c0, c1, ival):
        """The canonical form evaluates to the same value as the expr."""
        expr = parse_expr(f"i * {c1} + {c0}" if c1 >= 0
                          else f"{c0} - i * {-c1}")
        form = affine_form(expr)
        assert form is not None
        predicted = form.get("i", 0) * ival + form.get(1, 0)
        assert predicted == c1 * ival + c0


SOURCE = """
int total = 0;

double helper(double v) { return v * 2.0; }

void knl(double* out, const float* x, int n) {
    double acc[8];
    for (int i = 0; i < n; i++) {
        float t = x[i];
        out[i] = helper((double)t) + 1.0f;
    }
}
"""


@pytest.fixture
def ast():
    return Ast(SOURCE)


@pytest.fixture
def symbols(ast):
    return SymbolTable(ast.function("knl"), ast.unit)


class TestSymbolTable:
    def test_params(self, symbols):
        assert symbols.type_of("out") == CType("double", 1)
        assert symbols.type_of("x") == CType("float", 1)
        assert symbols.type_of("n") == CType("int")

    def test_locals_and_loop_vars(self, symbols):
        assert symbols.type_of("t") == CType("float")
        assert symbols.type_of("i") == CType("int")

    def test_local_array_decays_and_flagged(self, symbols):
        assert symbols.type_of("acc") == CType("double", 1)
        assert symbols.is_local_array("acc")
        assert not symbols.is_local_array("out")

    def test_globals_visible(self, symbols):
        assert symbols.type_of("total") == CType("int")

    def test_unknown(self, symbols):
        assert symbols.type_of("ghost") is None


class TestInferType:
    def test_literals(self, symbols):
        assert infer_type(parse_expr("1.5"), symbols).base == "double"
        assert infer_type(parse_expr("1.5f"), symbols).base == "float"
        assert infer_type(parse_expr("3"), symbols).base == "int"

    def test_promotion(self, symbols):
        assert infer_type(parse_expr("n + 1.5f"), symbols).base == "float"
        assert infer_type(parse_expr("t + 1.0"), symbols).base == "double"

    def test_index_yields_element(self, symbols):
        assert infer_type(parse_expr("x[0]"), symbols).base == "float"
        assert infer_type(parse_expr("out[0]"), symbols).base == "double"

    def test_comparison_is_int(self, symbols):
        assert infer_type(parse_expr("t < 1.0f"), symbols).base == "int"

    def test_cast(self, symbols):
        assert infer_type(parse_expr("(float)n"), symbols).base == "float"

    def test_math_builtin_precision(self, symbols):
        assert infer_type(parse_expr("sqrtf(t)"), symbols).base == "float"
        assert infer_type(parse_expr("sqrt(1.0)"), symbols).base == "double"


class TestLoopPaths:
    def test_path_round_trip(self, ast):
        loop = ast.function("knl").loops()[0]
        path = loop_path(loop)
        assert path == LoopPath("knl", 0)
        assert resolve_loop(ast, path) is loop

    def test_path_resolves_in_clone(self, ast):
        loop = ast.function("knl").loops()[0]
        path = loop_path(loop)
        clone = ast.clone()
        resolved = resolve_loop(clone, path)
        assert resolved is not loop
        assert resolved.loop_var() == "i"

    def test_out_of_range(self, ast):
        with pytest.raises(ValueError):
            resolve_loop(ast, LoopPath("knl", 5))
