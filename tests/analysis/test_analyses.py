"""Hotspot / trip-count / intensity / data-movement / alias / access
pattern analysis tests."""

import pytest

from repro.analysis import (
    analyze_access_pattern, analyze_data_movement, analyze_intensity,
    analyze_pointer_aliasing, analyze_trip_counts, identify_hotspot_loops,
    static_trip_count,
)
from repro.analysis.common import LoopPath
from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast
from repro.meta.parser import parse_stmt

APP = """
void knl(double* out, const double* x, int n) {
    for (int i = 0; i < n; i++) {
        double s = 0.0;
        for (int j = 0; j < 8; j++) {
            s += sqrt(x[i * 8 + j]);
        }
        out[i] = s;
    }
}

int main() {
    int n = ws_int("n");
    double* x = ws_array_double("x", n * 8);
    double* out = ws_array_double("out", n);
    for (int i = 0; i < n * 8; i++) {
        x[i] = 1.0 + rand01();
    }
    knl(out, x, n);
    double check = 0.0;
    for (int i = 0; i < n; i++) {
        check += out[i];
    }
    printf("%g\\n", check);
    return 0;
}
"""


@pytest.fixture
def ast():
    return Ast(APP)


@pytest.fixture
def workload():
    return Workload(scalars={"n": 40})


class TestHotspot:
    def test_hottest_is_the_kernel_call_loop(self, ast, workload):
        # pre-extraction shape: time main's outermost loops; the knl
        # call is a statement, so the heaviest *loop* is init or check.
        hotspots = identify_hotspot_loops(ast, workload)
        assert hotspots  # loops found and timed
        assert hotspots[0].fraction >= hotspots[-1].fraction

    def test_fractions_bounded(self, ast, workload):
        for info in identify_hotspot_loops(ast, workload):
            assert 0.0 <= info.fraction <= 1.0

    def test_reference_not_mutated(self, ast, workload):
        before = ast.source
        identify_hotspot_loops(ast, workload)
        assert ast.source == before

    def test_min_fraction_filter(self, ast, workload):
        all_spots = identify_hotspot_loops(ast, workload)
        filtered = identify_hotspot_loops(ast, workload, min_fraction=0.99)
        assert len(filtered) <= len(all_spots)


class TestTripCounts:
    def test_static_literal_bounds(self):
        assert static_trip_count(parse_stmt(
            "for (int j = 0; j < 8; j++) ;")) == 8
        assert static_trip_count(parse_stmt(
            "for (int j = 2; j <= 8; j += 2) ;")) == 4
        assert static_trip_count(parse_stmt(
            "for (int j = 5; j < 2; j++) ;")) == 0

    def test_static_unknown_bound(self):
        assert static_trip_count(parse_stmt(
            "for (int j = 0; j < n; j++) ;")) is None

    def test_static_downward_loop_unsupported(self):
        assert static_trip_count(parse_stmt(
            "for (int j = 8; j > 0; j--) ;")) is None

    def test_dynamic_counts(self, ast, workload):
        infos = analyze_trip_counts(ast, workload, "knl")
        outer = infos[LoopPath("knl", 0)]
        inner = infos[LoopPath("knl", 1)]
        assert outer.total_iterations == 40
        assert outer.static_trips is None
        assert inner.entries == 40
        assert inner.avg_trips == 8
        assert inner.static_trips == 8 and inner.fixed_bounds


class TestIntensity:
    def test_kernel_intensity(self, ast):
        info = analyze_intensity(ast, "knl")
        # per inner iter: sqrt(8) + add(1) FLOPs over one 8-byte load
        assert info.flops_per_byte == pytest.approx(9 / 8, rel=0.3)

    def test_sp_fraction_zero_for_dp_kernel(self, ast):
        assert analyze_intensity(ast, "knl").sp_fraction == 0.0

    def test_sp_fraction_after_demotion(self):
        source = """
        void knl(float* out, const float* x, int n) {
            for (int i = 0; i < n; i++) {
                out[i] = sqrtf(x[i]) * 2.0f;
            }
        }
        """
        info = analyze_intensity(Ast(source), "knl")
        assert info.sp_fraction == 1.0

    def test_compute_bound_classification(self, ast):
        info = analyze_intensity(ast, "knl")
        assert info.is_compute_bound(0.25)
        assert not info.is_compute_bound(10.0)


class TestDataMovement:
    def test_directions_and_sizes(self, ast, workload):
        info = analyze_data_movement(ast, workload, "knl")
        x = info.buffer("x")
        out = info.buffer("out")
        assert x.direction == "in" and x.nbytes == 40 * 8 * 8
        assert out.direction == "out" and out.nbytes == 40 * 8
        assert info.bytes_in == x.nbytes
        assert info.bytes_out == out.nbytes
        assert info.kernel_calls == 1


class TestAliasing:
    def test_disjoint_buffers_ok(self, ast, workload):
        info = analyze_pointer_aliasing(ast, workload, "knl")
        assert info.no_aliasing
        assert info.calls_observed == 1

    def test_overlap_detected(self):
        source = """
        void knl(double* a, double* b, int n) {
            for (int i = 0; i < n; i++) a[i] = b[i];
        }
        int main() {
            double* buf = ws_array_double("buf", 16);
            knl(buf, buf + 4, 8);
            return 0;
        }
        """
        info = analyze_pointer_aliasing(Ast(source), Workload(), "knl")
        assert not info.no_aliasing
        assert info.conflicts[0].param_a == "a"
        assert info.conflicts[0].param_b == "b"


class TestAccessPattern:
    def test_affine_only_kernel_has_no_gather(self, ast):
        info = analyze_access_pattern(ast, "knl")
        assert info.gather_fraction == 0.0
        assert info.gather_buffers == frozenset()

    def test_gather_detected(self):
        source = """
        void knl(double* out, const double* w, const int* idx, int n) {
            for (int i = 0; i < n; i++) {
                out[i] = w[idx[i]];
            }
        }
        """
        info = analyze_access_pattern(Ast(source), "knl")
        assert info.gather_buffers == frozenset({"w"})
        assert 0.0 < info.gather_fraction < 1.0

    def test_local_arrays_excluded(self):
        source = """
        void knl(double* out, int n) {
            for (int i = 0; i < n; i++) {
                double tmp[4];
                tmp[0] = 1.0;
                out[i] = tmp[0];
            }
        }
        """
        info = analyze_access_pattern(Ast(source), "knl")
        # only the out[] store is DRAM traffic
        assert info.streamed_bytes > 0
        assert info.gather_bytes == 0
