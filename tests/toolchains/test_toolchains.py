"""Simulated toolchain tests: gcc warnings, hipcc register estimation,
dpcpp HLS resource/II reports."""

import pytest

from repro.meta.ast_api import Ast
from repro.toolchains import DpcppToolchain, GccToolchain, HipccToolchain
from repro.toolchains.hipcc import REGISTER_CAP, estimate_registers
from repro.transforms.unroll import set_unroll_pragma

SIMPLE_KERNEL = """
void knl(float* out, const float* x, int n) {
    for (int i = 0; i < n; i++) {
        float t = x[i];
        out[i] = t * t + 1.0f;
    }
}
"""

EXP_HEAVY_KERNEL_TEMPLATE = """
void knl(double* out, const double* x, int n) {{
    for (int i = 0; i < n; i++) {{
        double v = x[i];
{body}
        out[i] = v;
    }}
}}
"""


def exp_heavy_kernel(count):
    body = "\n".join(
        f"        double t{k} = exp(v * {k + 1}.0);" for k in range(count))
    body += "\n        v = " + " + ".join(f"t{k}" for k in range(count)) + ";"
    return EXP_HEAVY_KERNEL_TEMPLATE.format(body=body)


class TestGcc:
    def test_clean_compile(self):
        report = GccToolchain().compile(Ast(SIMPLE_KERNEL))
        assert report.success and report.openmp_pragmas == 0

    def test_counts_omp_pragmas_and_warns(self):
        ast = Ast(SIMPLE_KERNEL)
        loop = ast.function("knl").loops()[0]
        from repro.meta.instrument import insert_pragma

        insert_pragma(loop, "omp parallel for")
        report = GccToolchain().compile(ast, openmp=False)
        assert report.openmp_pragmas == 1
        assert any("fopenmp" in w for w in report.warnings)
        assert not GccToolchain().compile(ast, openmp=True).warnings


class TestHipcc:
    def test_small_kernel_few_registers(self):
        report = HipccToolchain().compile(Ast(SIMPLE_KERNEL), "knl")
        assert report.success
        assert report.registers_per_thread < 64
        assert not report.spilled

    def test_register_growth_with_body_size(self):
        small = HipccToolchain().compile(Ast(exp_heavy_kernel(4)), "knl")
        big = HipccToolchain().compile(Ast(exp_heavy_kernel(20)), "knl")
        assert big.registers_per_thread > small.registers_per_thread

    def test_register_cap_and_spill(self):
        report = HipccToolchain().compile(Ast(exp_heavy_kernel(60)), "knl")
        assert report.registers_per_thread == REGISTER_CAP
        assert report.spilled

    def test_intrinsics_detected(self):
        source = SIMPLE_KERNEL.replace("t * t + 1.0f", "__expf(t)")
        report = HipccToolchain().compile(Ast(source), "knl")
        assert report.uses_intrinsics

    def test_estimate_registers_helper(self):
        ast = Ast(SIMPLE_KERNEL)
        assert estimate_registers(ast.function("knl")) >= 16


class TestDpcpp:
    def test_report_fields(self):
        report = DpcppToolchain().partial_compile(
            Ast(SIMPLE_KERNEL), "knl", "arria10")
        assert report.device == "arria10"
        assert 0 < report.alm_utilization < 1
        assert report.fmax_mhz == 230.0
        assert report.fitted

    def test_unroll_scales_resources(self):
        ast = Ast(SIMPLE_KERNEL)
        tool = DpcppToolchain()
        base = tool.partial_compile(ast, "knl", "stratix10")
        for loop in ast.function("knl").outermost_loops():
            set_unroll_pragma(loop, 8)
        unrolled = tool.partial_compile(ast, "knl", "stratix10")
        assert unrolled.alms_used > base.alms_used
        assert unrolled.unroll_factor == 8

    def test_dp_costs_more_than_sp(self):
        sp = DpcppToolchain().partial_compile(
            Ast(SIMPLE_KERNEL), "knl", "arria10")
        dp_source = SIMPLE_KERNEL.replace("float", "double").replace(
            "1.0f", "1.0")
        dp = DpcppToolchain().partial_compile(Ast(dp_source), "knl", "arria10")
        assert dp.alms_used > sp.alms_used

    def test_exp_heavy_kernel_overmaps_arria10(self):
        """The Rush Larsen mechanism: elementary functions eat the fabric."""
        report = DpcppToolchain().partial_compile(
            Ast(exp_heavy_kernel(40)), "knl", "arria10")
        assert report.overmapped

    def test_rmw_raises_ii(self):
        source = """
        void knl(double* a, const double* b, int n) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 8; j++) {
                    a[i] += b[i * 8 + j];
                }
            }
        }
        """
        report = DpcppToolchain().partial_compile(Ast(source), "knl",
                                                  "stratix10")
        assert report.ii > 1
        assert any("Remove Array" in w for w in report.warnings)

    def test_variable_inner_loop_blocks_outer_unroll(self):
        source = """
        void knl(double* a, const double* b, int n) {
            for (int i = 0; i < n; i++) {
                double s = 0.0;
                for (int j = 0; j < n; j++) {
                    s += b[j];
                }
                a[i] = s;
            }
        }
        """
        ast = Ast(source)
        for loop in ast.function("knl").outermost_loops():
            set_unroll_pragma(loop, 16)
        report = DpcppToolchain().partial_compile(ast, "knl", "stratix10")
        assert report.unroll_factor == 1
        assert report.variable_inner_loop
        assert any("ignored" in w for w in report.warnings)

    def test_local_arrays_cheaper_than_buffers(self):
        with_buffer = """
        void knl(double* a, const double* t, int n) {
            for (int i = 0; i < n; i++) {
                #pragma unroll 8
                for (int j = 0; j < 8; j++) {
                    a[i * 8 + j] = t[j] * 2.0;
                }
            }
        }
        """
        with_local = with_buffer.replace(
            "const double* t, int n) {",
            "int n) {\n    double t[8];")
        buffered = DpcppToolchain().partial_compile(
            Ast(with_buffer), "knl", "stratix10")
        local = DpcppToolchain().partial_compile(
            Ast(with_local), "knl", "stratix10")
        assert local.alms_used < buffered.alms_used
