"""The wire taxonomy maps both ways and loses nothing."""

import pytest

from repro.server import protocol
from repro.server.protocol import (
    JobNotFound, ServerError, error_from_payload, error_to_payload,
    job_from_payload, job_to_payload,
)
from repro.service.core import ServiceOverloaded
from repro.service.jobs import FlowJob, JobValidationError
from repro.service.scheduler import (
    JobCancelled, JobFailed, JobQuarantined, JobResultPending, JobTimeout,
)


# ----------------------------------------------------------------------
# exception -> wire
# ----------------------------------------------------------------------

@pytest.mark.parametrize("exc,status,code", [
    (JobResultPending("k" * 64, "running", 2, 1.5), 202, "pending"),
    (ServiceOverloaded("shed", retry_after_s=3.0), 429, "overloaded"),
    (JobQuarantined("boom", key="k" * 64, crashes=3), 503, "quarantined"),
    (JobTimeout("too slow"), 504, "timeout"),
    (JobCancelled("dropped"), 409, "cancelled"),
    (JobFailed("exploded"), 500, "failed"),
    (JobValidationError("bad app"), 400, "invalid_job"),
    (JobNotFound("no such job"), 404, "not_found"),
    (RuntimeError("surprise"), 500, "internal"),
])
def test_status_and_code(exc, status, code):
    got_status, payload = error_to_payload(exc)
    assert got_status == status
    assert payload["error"]["code"] == code
    assert payload["error"]["message"]


def test_backpressure_bodies_carry_retry_after():
    _, payload = error_to_payload(ServiceOverloaded("x", retry_after_s=7.5))
    assert payload["error"]["retry_after_s"] == 7.5
    assert protocol.retry_after_of(payload) == 7.5
    _, payload = error_to_payload(JobResultPending("k", "running", 1, 0.0))
    assert protocol.retry_after_of(payload) > 0


# ----------------------------------------------------------------------
# wire -> exception (the client side of the same taxonomy)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("exc,exc_type", [
    (JobResultPending("k" * 64, "running", 2, 1.5), JobResultPending),
    (ServiceOverloaded("shed", retry_after_s=3.0), ServiceOverloaded),
    (JobQuarantined("boom", key="k" * 64, crashes=3), JobQuarantined),
    (JobTimeout("too slow"), JobTimeout),
    (JobCancelled("dropped"), JobCancelled),
    (JobFailed("exploded"), JobFailed),
    (JobValidationError("bad app"), JobValidationError),
    (JobNotFound("no such job"), JobNotFound),
])
def test_round_trip_preserves_type(exc, exc_type):
    status, payload = error_to_payload(exc)
    rebuilt = error_from_payload(status, payload)
    assert type(rebuilt) is exc_type


def test_round_trip_preserves_fields():
    status, payload = error_to_payload(
        JobQuarantined("boom", key="deadbeef", crashes=5))
    rebuilt = error_from_payload(status, payload)
    assert rebuilt.key == "deadbeef" and rebuilt.crashes == 5

    status, payload = error_to_payload(
        JobResultPending("abc123", "running", 4, 2.0))
    rebuilt = error_from_payload(status, payload)
    assert rebuilt.key == "abc123"
    assert rebuilt.status == "running" and rebuilt.attempts == 4
    assert isinstance(rebuilt, TimeoutError)   # keeps the except-clause

    status, payload = error_to_payload(
        ServiceOverloaded("shed", retry_after_s=9.0))
    rebuilt = error_from_payload(status, payload)
    assert rebuilt.retry_after_s == 9.0


def test_busy_code_maps_to_overloaded():
    exc = error_from_payload(429, {"error": {
        "code": "busy", "message": "queue full", "retry_after_s": 1.0}})
    assert isinstance(exc, ServiceOverloaded)
    assert exc.retry_after_s == 1.0


def test_unknown_code_falls_back_to_server_error():
    exc = error_from_payload(418, {"error": {"code": "teapot",
                                             "message": "short and stout"}})
    assert isinstance(exc, ServerError)
    assert exc.status == 418 and exc.code == "teapot"


def test_empty_body_still_maps():
    exc = error_from_payload(500, None)
    assert isinstance(exc, ServerError)
    assert "500" in str(exc)


# ----------------------------------------------------------------------
# job payloads
# ----------------------------------------------------------------------

def test_job_payload_round_trip():
    job = FlowJob(app="kmeans", mode="uninformed", scale=2.0, retries=1)
    rebuilt = job_from_payload(job_to_payload(job))
    assert rebuilt.key() == job.key()


def test_job_payload_rejects_unknown_fields():
    with pytest.raises(JobValidationError, match="unknown job field"):
        job_from_payload({"app": "kmeans", "sudo": True})


def test_job_payload_rejects_non_object():
    with pytest.raises(JobValidationError, match="JSON object"):
        job_from_payload(["kmeans"])


def test_job_payload_requires_app():
    with pytest.raises(JobValidationError, match="app"):
        job_from_payload({"mode": "informed"})


def test_timeout_round_trips_last_observed_state():
    exc = JobTimeout("poll budget blown", status="running", attempts=2)
    status, payload = error_to_payload(exc)
    assert status == 504
    error = payload["error"]
    assert error["status"] == "running" and error["attempts"] == 2
    rebuilt = error_from_payload(status, payload)
    assert isinstance(rebuilt, JobTimeout)
    assert rebuilt.status == "running" and rebuilt.attempts == 2
    # the detail rides in the message once, not once per hop
    assert str(rebuilt) == str(exc)
    assert str(rebuilt).count("last observed") == 1
