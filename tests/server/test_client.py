"""ReproClient retry/backoff behavior, no sockets involved."""

import random
import urllib.error

import pytest

from repro.client import ReproClient
from repro.service.core import ServiceOverloaded
from repro.service.scheduler import (JobQuarantined, JobResultPending,
                                     JobTimeout)


class ScriptedClient(ReproClient):
    """Plays back a scripted list of (status, payload, headers)."""

    def __init__(self, responses, **kwargs):
        kwargs.setdefault("backoff_s", 0.5)
        kwargs.setdefault("jitter", 0.0)   # deterministic sleeps here
        super().__init__("http://scripted.invalid", **kwargs)
        self.responses = list(responses)
        self.requests = []
        self.sleeps = []
        self._sleep = self.sleeps.append

    def _request_once(self, method, path, payload=None):
        self.requests.append((method, path, payload))
        response = self.responses.pop(0)
        if isinstance(response, Exception):
            raise response
        return response


def _overloaded(retry_after, header=True):
    headers = {"Retry-After": str(retry_after)} if header else {}
    return (429, {"error": {"code": "overloaded", "message": "shed",
                            "retry_after_s": retry_after}}, headers)


def test_retry_honors_retry_after_header():
    client = ScriptedClient([
        _overloaded(3.5),
        _overloaded(0.25),
        (200, {"id": "abc"}, {}),
    ])
    assert client.submit("kmeans")["id"] == "abc"
    assert client.sleeps == [3.5, 0.25]
    assert len(client.requests) == 3


def test_retry_falls_back_to_exponential_backoff():
    client = ScriptedClient([
        (429, {"error": {"code": "busy", "message": "full"}}, {}),
        (429, {"error": {"code": "busy", "message": "full"}}, {}),
        (201, {"id": "abc"}, {}),
    ], backoff_s=0.1)
    client.submit("kmeans")
    assert client.sleeps == [0.1, 0.2]      # 0.1 * 2**attempt


def test_retries_exhausted_raises_taxonomy_error():
    client = ScriptedClient([_overloaded(1.0)] * 3, max_retries=2)
    with pytest.raises(ServiceOverloaded) as excinfo:
        client.submit("kmeans")
    assert excinfo.value.retry_after_s == 1.0
    assert len(client.requests) == 3        # initial + 2 retries


def test_terminal_errors_are_not_retried():
    client = ScriptedClient([
        (503, {"error": {"code": "quarantined", "message": "dead",
                         "key": "k", "crashes": 3}}, {}),
    ])
    with pytest.raises(JobQuarantined):
        client.result("k")
    assert client.sleeps == []              # no retry on terminal errors


def test_connection_errors_are_retried():
    client = ScriptedClient([
        urllib.error.URLError("refused"),
        (200, {"apps": []}, {}),
    ], backoff_s=0.05)
    assert client.apps() == []
    assert client.sleeps == [0.05]


def test_run_flow_polls_through_pending():
    pending = (202, {"error": {"code": "pending", "message": "running",
                               "key": "k", "status": "running",
                               "attempts": 1, "retry_after_s": 1.0}}, {})
    done = (200, {"app": "kmeans", "mode": "informed",
                  "reference_time_s": 1.0, "designs": [],
                  "selected_target": None}, {})
    client = ScriptedClient([
        (201, {"id": "k"}, {}),             # submit
        pending, pending, done,             # poll, poll, result
    ], poll_interval_s=0.125)
    record = client.run_flow("kmeans")
    assert record.app_name == "kmeans"
    assert client.sleeps == [0.125, 0.125]


def test_run_flow_timeout_reraises_pending():
    pending = (202, {"error": {"code": "pending", "message": "running",
                               "key": "k"}}, {})
    client = ScriptedClient([(201, {"id": "k"}, {}), pending])
    with pytest.raises(JobResultPending):
        client.run_flow("kmeans", timeout=0.0)


# ----------------------------------------------------------------------
# Backoff jitter and the total retry wall-time budget
# ----------------------------------------------------------------------

def test_jitter_spreads_retry_delays():
    client = ScriptedClient([_overloaded(2.0), _overloaded(2.0),
                             (200, {"id": "abc"}, {})],
                            jitter=0.5, rng=random.Random(7))
    client.submit("kmeans")
    assert len(client.sleeps) == 2
    for delay in client.sleeps:
        assert 1.0 <= delay <= 3.0     # 2.0 * [1-j, 1+j]
    # seeded rng: the two draws differ (herd desynchronization)
    assert client.sleeps[0] != client.sleeps[1]


def test_jitter_zero_is_exact_and_bounds_are_validated():
    client = ScriptedClient([_overloaded(1.5), (200, {"id": "x"}, {})])
    client.submit("kmeans")
    assert client.sleeps == [1.5]
    with pytest.raises(ValueError):
        ReproClient("http://x.invalid", jitter=1.0)
    with pytest.raises(ValueError):
        ReproClient("http://x.invalid", jitter=-0.1)
    with pytest.raises(ValueError):
        ReproClient("http://x.invalid", max_wait_s=0)


def test_max_wait_caps_retryable_errors():
    # server keeps asking for 10s waits; a 1s budget refuses to sleep
    client = ScriptedClient([_overloaded(10.0)] * 5,
                            max_wait_s=1.0, max_retries=10)
    with pytest.raises(JobTimeout) as excinfo:
        client.submit("kmeans")
    assert "max_wait_s=1.0" in str(excinfo.value)
    assert client.sleeps == []          # refused before sleeping
    assert len(client.requests) == 1


def test_max_wait_caps_connection_retries():
    client = ScriptedClient([urllib.error.URLError("refused")] * 5,
                            backoff_s=10.0, max_wait_s=1.0,
                            max_retries=10)
    with pytest.raises(JobTimeout):
        client.apps()
    assert client.sleeps == []


def test_max_wait_caps_run_flow_polling():
    pending = (202, {"error": {"code": "pending", "message": "running",
                               "key": "k", "status": "running",
                               "attempts": 1}}, {})
    client = ScriptedClient([(201, {"id": "k"}, {})] + [pending] * 50,
                            poll_interval_s=30.0, max_wait_s=0.5)
    with pytest.raises(JobTimeout):
        client.run_flow("kmeans")
    # an explicit timeout= still reports pending, not the budget
    client = ScriptedClient([(201, {"id": "k"}, {}), pending],
                            max_wait_s=0.5)
    with pytest.raises(JobResultPending):
        client.run_flow("kmeans", timeout=0.0)


def test_budget_timeout_reports_where_the_job_was():
    pending = (202, {"error": {"code": "pending", "message": "running",
                               "key": "k", "status": "running",
                               "attempts": 3}}, {})
    client = ScriptedClient([(201, {"id": "k"}, {})] + [pending] * 50,
                            poll_interval_s=30.0, max_wait_s=0.5)
    with pytest.raises(JobTimeout) as excinfo:
        client.run_flow("kmeans")
    # the timeout carries the job's last observed telemetry, so the
    # message says where the job was when the client gave up
    assert excinfo.value.status == "running"
    assert excinfo.value.attempts == 3
    assert "last observed status=running" in str(excinfo.value)
