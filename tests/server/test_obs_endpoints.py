"""Runner-side observability surface: /v1/obs/* and healthz extras."""

import pytest

from repro.client import ReproClient
from repro.config import ReproConfig


@pytest.fixture(scope="module")
def obs_server():
    from tests.server.conftest import LiveServer

    server = LiveServer(port=0, config=ReproConfig(
        workers=1, obs_buffer=512, profile_hz=50.0))
    yield server
    server.stop()


@pytest.fixture(scope="module")
def obs_client(obs_server):
    return ReproClient(obs_server.url, backoff_s=0.05,
                       poll_interval_s=0.05)


def test_healthz_carries_clock_and_slo_advisories(obs_client):
    health = obs_client.health()
    assert health["http_status"] == 200 and health["status"] == "ok"
    assert isinstance(health["now"], float)
    slo = health["slo"]
    assert slo["name"] == "server"
    assert set(slo["windows"]) == {"fast", "slow"}
    assert isinstance(slo["degraded"], bool)


def test_slo_degradation_never_flips_health_status(obs_server,
                                                   obs_client):
    slo = obs_server.server.slo
    # drown the tracker in synthetic failures: burn >> threshold
    for _ in range(200):
        slo.observe(ok=False)
    health = obs_client.health()
    assert health["slo"]["degraded"] is True
    # advisory only -- the runner stays routable (see slo.py docstring)
    assert health["http_status"] == 200 and health["status"] == "ok"


def test_obs_spans_drains_job_spans_incrementally(obs_client):
    obs_client.run_flow("kmeans", "informed", timeout=120)
    data = obs_client.obs_spans(since=0)
    assert data["enabled"] is True
    assert data["next"] > 0 and isinstance(data["now"], float)
    names = {s["name"] for s in data["spans"]}
    assert "service.job" in names
    assert any(n.startswith("flow.") or n == "parse" for n in names)
    trace_ids = {s["trace_id"] for s in data["spans"]
                 if s["name"] == "service.job"}
    assert len(trace_ids) >= 1
    # the cursor advances: nothing new means an empty drain
    again = obs_client.obs_spans(since=data["next"])
    assert again["spans"] == [] and again["next"] == data["next"]


def test_obs_spans_rejects_a_bad_cursor(obs_client):
    status, data, _ = obs_client._request_once(
        "GET", "/v1/obs/spans?since=banana")
    assert status == 400
    assert data["error"]["code"] == "bad_request"


def test_obs_summary_describes_the_runner(obs_client):
    import repro

    summary = obs_client.obs_summary()
    assert summary["role"] == "runner"
    assert summary["version"] == repro.__version__
    assert summary["spans"]["enabled"] is True
    assert summary["spans"]["buffered"] >= 0
    profiler = summary["profiler"]
    assert profiler is not None and profiler["hz"] == 50.0
    assert profiler["running"] is True
    assert summary["slo"]["name"] == "server"


def test_obs_profile_serves_folded_stacks(obs_client):
    deadline = 100
    text = ""
    while deadline and not text.strip():
        text = obs_client.obs_profile()
        deadline -= 1
    assert text.strip(), "profiler produced no samples"
    stack, count = text.splitlines()[0].rsplit(" ", 1)
    assert int(count) >= 1 and ":" in stack


def test_obs_is_dark_by_default(live_server_factory):
    server = live_server_factory(config=ReproConfig(workers=1))
    client = ReproClient(server.url, max_retries=0)
    data = client.obs_spans()
    assert data["enabled"] is False and data["spans"] == []
    import urllib.error

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        client.obs_profile()
    assert excinfo.value.code == 404
    summary = client.obs_summary()
    assert summary["spans"]["enabled"] is False
    assert summary["profiler"] is None
