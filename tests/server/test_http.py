"""Integration: a live server, the real client, real sockets.

The expensive round-trip tests share one module-scoped server; the
backpressure / drain tests each get their own (they monkeypatch the
execution path and mutate server state).
"""

import threading

import pytest

import repro.service.core as service_core
from repro.client import ReproClient
from repro.config import ReproConfig
from repro.flow.serialize import FlowResultRecord, result_to_dict
from repro.server.protocol import JobNotFound
from repro.service.core import ServiceOverloaded
from repro.service.jobs import JobValidationError
from repro.service.scheduler import JobResultPending


@pytest.fixture(scope="module")
def client(shared_server):
    return ReproClient(shared_server.url, backoff_s=0.05)


# ----------------------------------------------------------------------
# Catalog / operations endpoints
# ----------------------------------------------------------------------

def test_apps_and_modes(client):
    from repro import api

    assert client.apps() == api.list_apps()
    assert client.modes() == api.list_modes()


def test_healthz(client):
    health = client.health()
    assert health["http_status"] == 200
    assert health["status"] == "ok"
    assert health["overload"]["state"] == "closed"
    assert health["server"]["draining"] is False
    assert health["scheduler"]["workers"] == 1


def test_metrics_exposition(client):
    client.apps()                      # ensure at least one request
    text = client.metrics()
    assert "repro_http_requests_total" in text
    assert "repro_server_jobs_inflight" in text


def test_unknown_route_404(client):
    status, data, _ = client._request_once("GET", "/v2/nothing")
    assert status == 404
    assert data["error"]["code"] == "not_found"


# ----------------------------------------------------------------------
# Jobs: submit -> poll -> result
# ----------------------------------------------------------------------

def test_round_trip_matches_in_process(client, kmeans_informed):
    record = client.run_flow("kmeans", "informed")
    assert isinstance(record, FlowResultRecord)
    assert result_to_dict(record) == result_to_dict(kmeans_informed)


def test_submit_dedups_on_content_hash(client):
    first_status, first, _ = client._request_once(
        "POST", "/v1/jobs", {"app": "kmeans", "scale": 1.25})
    assert first_status == 201
    again_status, again, _ = client._request_once(
        "POST", "/v1/jobs", {"app": "kmeans", "scale": 1.25})
    assert again_status == 200         # same spec, no new work
    assert again["id"] == first["id"]
    assert client.status(first["id"])["id"] == first["id"]
    assert any(j["id"] == first["id"] for j in client.jobs())


def test_cached_resubmit_reports_cache_source(client):
    client.run_flow("kmeans", "uninformed")
    record = client.submit("kmeans", "uninformed")
    assert record["done"] and record["status"] == "succeeded"


def test_invalid_job_is_400(client):
    status, data, _ = client._request_once(
        "POST", "/v1/jobs", {"app": "not-a-benchmark"})
    assert status == 400
    assert data["error"]["code"] == "invalid_job"
    with pytest.raises(JobValidationError):
        client.submit("kmeans", mode="clairvoyant")


def test_unknown_job_is_404(client):
    with pytest.raises(JobNotFound):
        client.status("f" * 64)
    status, data, _ = client._request_once(
        "GET", f"/v1/jobs/{'f' * 64}/result")
    assert status == 404


def test_sse_events_are_ordered(client):
    job_id = client.submit("kmeans", "informed")["id"]
    events = list(client.events(job_id))
    names = [name for name, _ in events]
    assert names[0] == "queued"
    assert names[-1] == "done"
    if "task" in names:                # fresh run: full lifecycle
        assert names.index("scheduled") < names.index("task")
        assert all(name != "done" for name in names[:-1])


# ----------------------------------------------------------------------
# Backpressure, pending results, graceful shutdown
# ----------------------------------------------------------------------

@pytest.fixture
def blocked_execution(monkeypatch):
    """execute_job blocks until released; returns (started, release)."""
    started = threading.Event()
    release = threading.Event()
    real = service_core.execute_job

    def slow(job, engine=None, observer=None):
        started.set()
        assert release.wait(60), "test never released the worker"
        return real(job, engine=engine, observer=observer)

    monkeypatch.setattr(service_core, "execute_job", slow)
    yield started, release
    release.set()                      # never leave a worker hanging


def test_pending_result_is_202(live_server_factory, blocked_execution):
    started, release = blocked_execution
    server = live_server_factory(config=ReproConfig(workers=1))
    client = ReproClient(server.url, backoff_s=0.01)
    job_id = client.submit("kmeans", "informed")["id"]
    assert started.wait(10)
    status, data, headers = client._request_once(
        "GET", f"/v1/jobs/{job_id}/result")
    assert status == 202
    assert data["error"]["code"] == "pending"
    with pytest.raises(JobResultPending):
        client.result(job_id)
    release.set()
    record = client.run_flow("kmeans", "informed")
    assert record.selected_target


def test_saturation_sheds_429_then_client_retry_wins(
        live_server_factory, blocked_execution):
    started, release = blocked_execution
    server = live_server_factory(config=ReproConfig(workers=1),
                                 max_queue=1)
    client = ReproClient(server.url, max_retries=10, backoff_s=0.05,
                         poll_interval_s=0.05)
    # one job fills the single accept-queue slot...
    client.submit("kmeans", "informed")
    assert started.wait(10)
    # ...so different work is shed with 429 busy + Retry-After
    status, data, headers = client._request_once(
        "POST", "/v1/jobs", {"app": "bezier"})
    assert status == 429
    assert data["error"]["code"] == "busy"
    retry_after = {k.lower(): v for k, v in headers.items()}["retry-after"]
    assert float(retry_after) >= 1
    # a non-retrying client sees the taxonomy exception
    with pytest.raises(ServiceOverloaded):
        ReproClient(server.url, max_retries=0).submit("bezier")
    # a retrying client wins once the slot frees up: zero lost jobs
    timer = threading.Timer(0.3, release.set)
    timer.start()
    try:
        accepted = client.submit("bezier")
    finally:
        timer.cancel()
        release.set()
    assert accepted["id"]
    assert client.run_flow("kmeans", "informed").selected_target
    assert client.run_flow("bezier", "informed").selected_target
    shed = client.metrics()
    assert 'repro_server_jobs_shed_total{reason="queue_full"}' in shed


def test_draining_sheds_new_work_but_serves_cache(live_server_factory):
    server = live_server_factory(config=ReproConfig(workers=1))
    client = ReproClient(server.url, max_retries=0)
    client.run_flow("kmeans", "informed")       # warm the server
    server.server.draining = True
    try:
        # cached spec still served...
        record = client.submit("kmeans", "informed")
        assert record["done"]
        # ...new work is refused 503 unavailable
        status, data, _ = client._request_once(
            "POST", "/v1/jobs", {"app": "bezier"})
        assert status == 503
        assert data["error"]["code"] == "unavailable"
        health = client.health()
        assert health["http_status"] == 503
        assert health["status"] == "degraded"
    finally:
        server.server.draining = False


def test_graceful_shutdown_drains_inflight(live_server_factory,
                                           blocked_execution):
    started, release = blocked_execution
    server = live_server_factory(config=ReproConfig(workers=1))
    client = ReproClient(server.url)
    job_id = client.submit("kmeans", "informed")["id"]
    assert started.wait(10)
    threading.Timer(0.3, release.set).start()
    server.stop(drain=True)            # must block until the job lands
    state = server.server._jobs[job_id]
    assert state.status == "succeeded"
    assert server.server._inflight == 0


# ----------------------------------------------------------------------
# SSE resume: Last-Event-ID replays exactly the missed frames
# ----------------------------------------------------------------------

def _sse_frames(base_url, job_id, last_event_id=None):
    """Raw SSE exchange; returns ``[(id, event), ...]``."""
    import urllib.request

    headers = {"Accept": "text/event-stream"}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    request = urllib.request.Request(
        f"{base_url}/v1/jobs/{job_id}/events", headers=headers)
    with urllib.request.urlopen(request, timeout=30) as resp:
        text = resp.read().decode("utf-8").strip()
    frames = []
    for block in text.split("\n\n") if text else ():
        fields = dict(line.split(": ", 1)
                      for line in block.splitlines() if ": " in line)
        frames.append((int(fields["id"]), fields["event"]))
    return frames


def test_sse_ids_are_monotone_and_resume_skips_seen_frames(client):
    job_id = client.submit("kmeans", "informed")["id"]
    client.run_flow("kmeans", "informed", timeout=120)
    full = _sse_frames(client.base_url, job_id)
    ids = [seq for seq, _ in full]
    assert ids == sorted(ids) and len(set(ids)) == len(ids)
    assert full[-1][1] == "done"
    # resuming after the second frame replays exactly the remainder
    cursor = full[1][0]
    assert _sse_frames(client.base_url, job_id, cursor) == full[2:]
    # a cursor at the end replays nothing
    assert _sse_frames(client.base_url, job_id, full[-1][0]) == []


def test_sse_malformed_last_event_id_degrades_to_full_replay(client):
    job_id = client.submit("kmeans", "informed")["id"]
    client.run_flow("kmeans", "informed", timeout=120)
    full = _sse_frames(client.base_url, job_id)
    assert _sse_frames(client.base_url, job_id, "not-a-number") == full


def test_client_events_resume_from_cursor(client):
    job_id = client.submit("kmeans", "informed")["id"]
    client.run_flow("kmeans", "informed", timeout=120)
    full = _sse_frames(client.base_url, job_id)
    names = [name for name, _ in client.events(
        job_id, last_event_id=full[0][0])]
    assert names == [event for _, event in full[1:]]
