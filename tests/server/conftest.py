"""Fixtures: a real ReproServer on a live socket, loop in a thread."""

import asyncio
import threading

import pytest

from repro.server import ReproServer


class LiveServer:
    """Runs one :class:`ReproServer` on its own event-loop thread."""

    def __init__(self, **kwargs):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        self.server = ReproServer(**kwargs)
        self.call(self.server.start())
        self.url = f"http://127.0.0.1:{self.server.port}"
        self._stopped = False

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def call(self, coro, timeout=60.0):
        """Run a coroutine on the server's loop and wait for it."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def stop(self, drain=True):
        if self._stopped:
            return
        self._stopped = True
        self.call(self.server.shutdown(drain=drain))
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def live_server_factory():
    servers = []

    def factory(**kwargs):
        kwargs.setdefault("port", 0)
        server = LiveServer(**kwargs)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()


@pytest.fixture(scope="module")
def shared_server():
    """One warm server per module for the read-only round-trip tests."""
    server = LiveServer(port=0)
    yield server
    server.stop()
