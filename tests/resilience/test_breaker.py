"""CircuitBreaker state machine, driven by an injected clock."""

import pytest

from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker("test", failure_threshold=3, cooldown_s=10.0,
                          clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED       # streak restarted

    def test_cooldown_promotes_to_half_open(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()           # still cooling down
        clock.advance(0.2)
        assert breaker.allow()               # probe admitted
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_and_restarts_cooldown(
            self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.advance(9.0)
        assert not breaker.allow()           # cooldown restarted
        clock.advance(1.0)
        assert breaker.allow()

    def test_reset_forces_closed(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown_s=0)
