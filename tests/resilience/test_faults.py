"""FaultPlan: determinism, gating, env config, null fast path."""

import pytest

from repro import obs
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, InjectedFault


@pytest.fixture(autouse=True)
def no_global_plan():
    """Every test starts and ends with injection disabled."""
    previous = faults.current_plan()
    faults.clear_plan()
    yield
    faults.install_plan(previous)


class TestDecision:
    def test_deterministic_per_seed_site_index(self):
        plan = FaultPlan(seed=7, rate=0.05)
        fired = [plan.would_fire("cache.read", i) for i in range(200)]
        again = FaultPlan(seed=7, rate=0.05)
        assert fired == [again.would_fire("cache.read", i)
                         for i in range(200)]
        # a 5% plan over 200 invocations fires at least once and is
        # nowhere near always-on
        assert 0 < sum(fired) < 50

    def test_sites_decorrelated(self):
        plan = FaultPlan(seed=7, rate=0.2)
        a = [plan.would_fire("cache.read", i) for i in range(100)]
        b = [plan.would_fire("worker.exec", i) for i in range(100)]
        assert a != b

    def test_seed_changes_schedule(self):
        a = FaultPlan(seed=1, rate=0.2)
        b = FaultPlan(seed=2, rate=0.2)
        assert [a.would_fire("s", i) for i in range(100)] != \
               [b.would_fire("s", i) for i in range(100)]

    def test_rate_bounds(self):
        assert not FaultPlan(rate=0.0).would_fire("s", 0)
        always = FaultPlan(rate=1.0)
        assert all(always.would_fire("s", i) for i in range(20))
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rate=-0.1)


class TestCheck:
    def test_check_counts_and_raises(self):
        plan = FaultPlan(seed=0, rate=1.0)
        with pytest.raises(InjectedFault) as excinfo:
            plan.check("cache.read")
        assert excinfo.value.site == "cache.read"
        assert excinfo.value.index == 0
        assert plan.counts() == {"cache.read": 1}
        assert plan.fired == 1

    def test_sites_filter(self):
        plan = FaultPlan(seed=0, rate=1.0, sites=("cache.read",))
        plan.check("worker.exec")           # filtered: no raise
        with pytest.raises(InjectedFault):
            plan.check("cache.read")

    def test_max_faults_caps_the_storm(self):
        plan = FaultPlan(seed=0, rate=1.0, max_faults=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.check("s")
        plan.check("s")                     # budget exhausted: no raise
        assert plan.fired == 2

    def test_inject_is_noop_without_plan(self):
        faults.inject("cache.read")         # must not raise

    def test_active_plan_scopes_install(self):
        plan = FaultPlan(seed=0, rate=1.0)
        with faults.active_plan(plan) as installed:
            assert installed is plan
            assert faults.current_plan() is plan
            with pytest.raises(InjectedFault):
                faults.inject("s")
        assert faults.current_plan() is None

    def test_fired_fault_is_visible_in_telemetry(self):
        collector = obs.add_sink(obs.SpanCollector())
        try:
            with faults.active_plan(FaultPlan(seed=0, rate=1.0)):
                with obs.span("chaos-test"):
                    with pytest.raises(InjectedFault):
                        faults.inject("cache.read")
            spans = collector.snapshot()
        finally:
            obs.remove_sink(collector)
        events = [e for s in spans for e in s.events
                  if e.name == "fault.injected"]
        assert len(events) == 1
        assert events[0].attrs["site"] == "cache.read"


class TestSpec:
    def test_roundtrip(self):
        plan = FaultPlan(seed=7, rate=0.05,
                         sites=("cache.read", "worker.exec"),
                         max_faults=10)
        parsed = FaultPlan.from_spec(plan.spec())
        assert parsed.seed == 7
        assert parsed.rate == 0.05
        assert parsed.sites == frozenset(("cache.read", "worker.exec"))
        assert parsed.max_faults == 10

    def test_parse_minimal(self):
        plan = FaultPlan.from_spec("seed=3,rate=0.2")
        assert (plan.seed, plan.rate) == (3, 0.2)
        assert plan.sites is None and plan.max_faults is None

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("seed")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("turbo=9")

    def test_env_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=9,rate=0.5")
        plan = faults.configure_from_env()
        assert plan is not None and plan.seed == 9
        faults.clear_plan()

    def test_env_config_tolerates_typos(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "rate=banana")
        assert faults.configure_from_env() is None
        assert "REPRO_FAULTS" in capsys.readouterr().err
