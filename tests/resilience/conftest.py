"""Wire-level chaos tests borrow the live HTTP server fixture."""

import pytest

from tests.server.conftest import LiveServer


@pytest.fixture
def live_server_factory():
    servers = []

    def factory(**kwargs):
        kwargs.setdefault("port", 0)
        server = LiveServer(**kwargs)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        try:
            server.stop()
        except Exception:              # noqa: BLE001 - chaos kills nodes
            pass
