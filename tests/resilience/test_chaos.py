"""Chaos tests: the real flow stack under seeded fault storms.

The headline suite for ``repro.resilience``: runs the actual fig5
workload (5 apps x 2 modes) with a deterministic fault plan installed
and asserts the three resilience guarantees end to end --

1. **correctness**: every job completes and its designs are identical
   to a fault-free run (retries + fallbacks absorb the faults);
2. **visibility**: every fired fault shows up in telemetry
   (``repro_faults_injected_total`` and ``fault.injected`` events);
3. **containment**: poisonous payloads are dead-lettered, corrupt
   cache entries quarantined, tripped breakers degrade gracefully.
"""

import os

import pytest

from repro import obs
from repro.lang import engine as lang_engine
from repro.meta.ast_api import Ast
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.service import (
    DesignService, JobQuarantined, ServiceOverloaded, expand_jobs,
)


@pytest.fixture(autouse=True)
def clean_chaos_state():
    """No plan and no tripped engine breakers leak between tests."""
    previous = faults.current_plan()
    faults.clear_plan()
    lang_engine.reset_breakers()
    yield
    faults.install_plan(previous)
    lang_engine.reset_breakers()


def _fault_counter_total():
    counter = obs.REGISTRY.counter(
        "repro_faults_injected_total",
        "deterministic faults fired by injection site", ("site",))
    return sum(counter.get(site=site) for site in faults.KNOWN_SITES)


def _design_signature(result):
    """The observable outcome of one flow run, engine-independent."""
    return (result.selected_target,
            [(d.metadata.get("device_label"), d.synthesizable,
              round(d.speedup, 9) if d.speedup is not None else None)
             for d in result.designs])


class TestFig5UnderStorm:
    def test_fig5_storm_is_absorbed_and_visible(self, tmp_path,
                                                all_informed,
                                                all_uninformed):
        """The acceptance run: fig5 under seed=7/rate=5%, with retries
        absorbing worker faults, must produce results identical to the
        fault-free session fixtures -- and every fault must be visible
        in the metrics."""
        plan = FaultPlan(seed=7, rate=0.05)
        before = _fault_counter_total()
        collector = obs.add_sink(obs.SpanCollector())
        try:
            with faults.active_plan(plan), \
                 DesignService(cache_dir=str(tmp_path / "cache"),
                               workers=4, pool="thread",
                               default_timeout=60.0,
                               default_retries=3) as service:
                outcomes = {}
                for submission, value, error in service.stream(
                        expand_jobs(), timeout=300):
                    assert error is None, \
                        f"{submission.job.label} failed under chaos: " \
                        f"{error}"
                    outcomes[(submission.job.app,
                              submission.job.mode)] = value
        finally:
            obs.remove_sink(collector)
        # 1. correctness: identical to the fault-free references
        assert len(outcomes) == 10
        for app, reference in all_informed.items():
            assert _design_signature(outcomes[(app, "informed")]) == \
                _design_signature(reference), f"{app}/informed diverged"
        for app, reference in all_uninformed.items():
            assert _design_signature(outcomes[(app, "uninformed")]) == \
                _design_signature(reference), \
                f"{app}/uninformed diverged"
        # 2. the storm actually stormed, deterministically
        assert plan.fired > 0, \
            f"no faults fired; invocations: {plan.counts()}"
        # 3. visibility: one counter increment per fired fault...
        assert _fault_counter_total() - before == plan.fired
        # ...and faults that fire inside a span also leave an event
        # there (ones in span-less driver callbacks only hit the
        # counter)
        events = [e for s in collector.snapshot() for e in s.events
                  if e.name == "fault.injected"]
        assert 1 <= len(events) <= plan.fired
        assert all(e.attrs["seed"] == 7 for e in events)

    def test_storm_replays_identically(self, tmp_path):
        """Same seed, same code path => same fault schedule."""
        def run_once(subdir):
            plan = FaultPlan(seed=11, rate=0.1,
                             sites=("worker.exec", "exec.compiled"))
            with faults.active_plan(plan), \
                 DesignService(cache_dir=str(tmp_path / subdir),
                               workers=1, pool="thread",
                               default_retries=3) as service:
                service.run(service.job_for("kmeans", "informed"),
                            timeout=120)
            return plan.counts(), plan.fired

        counts_a, fired_a = run_once("a")
        counts_b, fired_b = run_once("b")
        assert counts_a == counts_b
        assert fired_a == fired_b


class TestCacheCorruptionChaos:
    def test_injected_corruption_self_heals(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with DesignService(cache_dir=cache_dir, workers=1,
                           pool="thread") as service:
            job = service.job_for("kmeans", "informed")
            clean = service.run(job, timeout=120)
        # a fresh service reads the entry under a read-fault plan: the
        # entry is treated as corrupt, quarantined, and the job re-runs
        plan = FaultPlan(seed=0, rate=1.0, sites=("cache.read",),
                         max_faults=1)
        with faults.active_plan(plan), \
             DesignService(cache_dir=cache_dir, workers=1,
                           pool="thread") as service:
            job = service.job_for("kmeans", "informed")
            submission = service.submit(job)
            assert submission.source == "run"     # not served corrupt
            healed = submission.result(timeout=120)
            assert service.cache.stats.corrupt == 1
            quarantined = list(service.cache.quarantined())
            assert len(quarantined) == 1
        assert _design_signature(healed) == _design_signature(clean)
        # the re-run re-cached: a third service gets a clean disk hit
        with DesignService(cache_dir=cache_dir, workers=1,
                           pool="thread") as service:
            submission = service.submit(
                service.job_for("kmeans", "informed"))
            assert submission.source == "cache-disk"


class TestEngineBreakerChaos:
    SOURCE = """
        int main() {
            int acc = 0;
            for (int i = 0; i < 10; i = i + 1) { acc = acc + i; }
            return acc;
        }
    """

    def test_compiled_faults_trip_the_unit_breaker(self):
        unit = Ast(self.SOURCE).unit
        plan = FaultPlan(seed=0, rate=1.0, sites=("exec.compiled",))
        with faults.active_plan(plan):
            # every compiled attempt faults; each run still succeeds
            # on the interpreter and strikes the breaker
            for _ in range(lang_engine.BREAKER_THRESHOLD):
                report = lang_engine.execute_unit(unit, mode="compiled")
                assert repr(report.return_value) == "45"
        assert lang_engine.breaker_state(unit) == "open"
        invocations = plan.counts()["exec.compiled"]
        assert invocations == lang_engine.BREAKER_THRESHOLD
        # breaker open: the next run goes straight to the interpreter
        # without even consulting the fault site
        with faults.active_plan(plan):
            report = lang_engine.execute_unit(unit, mode="compiled")
            assert repr(report.return_value) == "45"
        assert plan.counts()["exec.compiled"] == invocations

    def test_unrelated_unit_keeps_its_own_breaker(self):
        unit_a = Ast(self.SOURCE).unit
        unit_b = Ast(self.SOURCE).unit
        plan = FaultPlan(seed=0, rate=1.0, sites=("exec.compiled",))
        with faults.active_plan(plan):
            for _ in range(lang_engine.BREAKER_THRESHOLD):
                lang_engine.execute_unit(unit_a, mode="compiled")
        assert lang_engine.breaker_state(unit_a) == "open"
        assert lang_engine.breaker_state(unit_b) == "closed"
        report = lang_engine.execute_unit(unit_b, mode="compiled")
        assert repr(report.return_value) == "45"


@pytest.fixture
def crash_service(tmp_path):
    """A process-pool service whose workers die on every payload.

    The worker.crash site is gated to pool child processes, so the
    plan is harmless in this (parent) test process; forked workers
    inherit it and hard-exit on entry.
    """
    plan = FaultPlan(seed=0, rate=1.0, sites=("worker.crash",))
    service = DesignService(cache_dir=str(tmp_path / "cache"),
                            workers=2, pool="process",
                            crash_retries=1, overload_threshold=1)
    if service.scheduler.mode != "process":
        service.close()
        pytest.skip("process pool unavailable on this host")
    with faults.active_plan(plan):
        yield service
    service.close(cancel_pending=True)


class TestDeadLetterChaos:
    def test_crash_loop_lands_in_dead_letter_and_sheds_load(
            self, crash_service, tmp_path):
        service = crash_service
        job = service.job_for("kmeans", "informed")
        submission = service.submit(job)
        with pytest.raises(JobQuarantined):
            submission.result(timeout=120)
        # containment: the job is enumerable in the persisted queue
        assert service.dead_letter.contains(job.key())
        record = service.dead_letter.get(job.key())
        assert record["job"]["app"] == "kmeans"
        assert record["crashes"] >= 2
        # exclusion: resubmitting never touches the pool again
        resubmitted = service.submit(job)
        assert resubmitted.source == "dead-letter"
        with pytest.raises(JobQuarantined):
            resubmitted.result(timeout=5)
        # degradation: the overload breaker is now shedding new work
        assert service.overload_state == "open"
        with pytest.raises(ServiceOverloaded):
            service.submit(service.job_for("nbody", "informed"))

    def test_dead_letter_cli_enumerates_and_clears(self, crash_service,
                                                   tmp_path, capsys):
        from repro.__main__ import main as cli_main

        service = crash_service
        job = service.job_for("kmeans", "informed")
        with pytest.raises(JobQuarantined):
            service.submit(job).result(timeout=120)
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["service", "dead-letter",
                         "--cache-dir", cache_dir]) == 0
        listing = capsys.readouterr().out
        assert job.key()[:12] in listing
        assert "kmeans" in listing
        assert cli_main(["service", "dead-letter",
                         "--cache-dir", cache_dir, "--clear"]) == 0
        assert "released 1" in capsys.readouterr().out
        assert cli_main(["service", "dead-letter",
                         "--cache-dir", cache_dir]) == 0
        assert "empty" in capsys.readouterr().out
