"""Wire faults: seeded (fire, mode) schedule and transport semantics.

``inject_wire`` decides *whether* a request misbehaves and *how* from
one SHA-256 word, so a chaos seed replays the exact storm.  The live
tests prove the client and router transports act each mode out -- and
that retries plus idempotent submission absorb a storm end to end.
"""

import urllib.error

import pytest

from repro.client import ReproClient
from repro.config import ReproConfig
from repro.fleet.runner import RunnerHandle
from repro.resilience import faults
from repro.resilience.faults import (
    FaultPlan, WIRE_MODES, active_plan, inject_wire,
)


@pytest.fixture(autouse=True)
def no_global_plan():
    previous = faults.current_plan()
    faults.clear_plan()
    yield
    faults.install_plan(previous)


# ----------------------------------------------------------------------
# The (fire, mode) schedule
# ----------------------------------------------------------------------

class TestSchedule:
    def test_mode_is_deterministic_per_seed_site_index(self):
        plan = FaultPlan(seed=7, rate=1.0)
        modes = [plan.wire_mode("net.request", i) for i in range(64)]
        again = FaultPlan(seed=7, rate=1.0)
        assert modes == [again.wire_mode("net.request", i)
                         for i in range(64)]
        # 64 draws cover the whole mode alphabet
        assert set(modes) == set(WIRE_MODES)

    def test_mode_decorrelated_from_fire_decision(self):
        """Fired invocations must not all land on one mode -- the mode
        reads different bytes of the hash word than the threshold."""
        plan = FaultPlan(seed=3, rate=0.5)
        fired_modes = {plan.wire_mode("net.request", i)
                       for i in range(200)
                       if plan.would_fire("net.request", i)}
        assert len(fired_modes) >= 3

    def test_check_wire_counts_and_respects_max(self):
        plan = FaultPlan(seed=0, rate=1.0, max_faults=2)
        modes = [plan.check_wire("net.request") for _ in range(5)]
        assert sum(m is not None for m in modes) == 2
        assert plan.counts() == {"net.request": 5}
        assert plan.fired == 2

    def test_check_wire_respects_sites_filter(self):
        plan = FaultPlan(seed=0, rate=1.0, sites=("journal.write",))
        assert plan.check_wire("net.request") is None
        assert "net.request" not in plan.counts()

    def test_inject_wire_is_noop_without_plan(self):
        assert inject_wire("net.request") is None

    def test_spec_round_trips_wire_storms(self):
        plan = FaultPlan.from_spec("seed=9,rate=0.25,sites=net.request")
        assert plan.spec() == "seed=9,rate=0.25,sites=net.request"
        assert plan.sites == frozenset({"net.request"})


# ----------------------------------------------------------------------
# Transport semantics (no server needed for drop / http_500)
# ----------------------------------------------------------------------

def forced(mode, seed=0):
    """A plan whose first ``net.request`` invocation fires ``mode``."""
    for candidate in range(500):
        plan = FaultPlan(seed=candidate, rate=1.0,
                         sites=("net.request",), max_faults=1)
        if plan.wire_mode("net.request", 0) == mode:
            return plan
    raise AssertionError(f"no seed under 500 yields {mode}")


class TestTransport:
    def test_drop_raises_before_any_send(self):
        handle = RunnerHandle("http://127.0.0.1:9")   # nothing listens
        with active_plan(forced("drop")):
            with pytest.raises(urllib.error.URLError, match="dropped"):
                handle.request("GET", "/healthz")

    def test_http_500_is_a_retryable_refusal(self):
        handle = RunnerHandle("http://127.0.0.1:9")
        with active_plan(forced("http_500")):
            status, data, _ = handle.request("GET", "/healthz")
        assert status == 503
        assert data["error"]["code"] == "unavailable"
        assert data["error"]["retry_after_s"] > 0

    def test_client_drop_consumes_a_retry_then_succeeds(
            self, live_server_factory):
        server = live_server_factory(config=ReproConfig(workers=1))
        client = ReproClient(server.url, backoff_s=0.01, max_retries=3)
        with active_plan(forced("drop")) as plan:
            apps = client.apps()       # retried: the drop is invisible
        assert apps and plan.fired == 1

    def test_truncation_loses_the_response_not_the_side_effect(
            self, live_server_factory):
        """The torn-TCP ambiguity: the submit lands on the server even
        though the caller saw an error -- and the idempotent resubmit
        converges on the same job instead of running it twice."""
        server = live_server_factory(config=ReproConfig(workers=1))
        bare = ReproClient(server.url, max_retries=0)
        payload = {"app": "kmeans", "mode": "informed", "scale": 1.23}
        with active_plan(forced("truncated")):
            with pytest.raises(urllib.error.URLError,
                               match="truncated"):
                bare._request_once("POST", "/v1/jobs", payload)
        # the exchange happened: the job exists server-side
        status, again, _ = bare._request_once("POST", "/v1/jobs",
                                              payload)
        assert status == 200               # dedup, not a second run
        assert any(j["id"] == again["id"] for j in bare.jobs())

    def test_storm_is_absorbed_by_retries(self, live_server_factory):
        """A sustained 25% wire storm on every hop: the client's
        rotation + backoff still lands the flow."""
        server = live_server_factory(config=ReproConfig(workers=1))
        client = ReproClient(server.url, backoff_s=0.01,
                             poll_interval_s=0.05, max_retries=8)
        with active_plan(FaultPlan(seed=11, rate=0.25,
                                   sites=("net.request",))) as plan:
            record = client.run_flow("kmeans", "informed", scale=1.27,
                                     timeout=120)
        assert record.app_name == "kmeans"
        assert plan.fired >= 1             # the storm actually fired
