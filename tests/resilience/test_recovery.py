"""Worker-crash containment and timeout-slot reclamation.

The crash payloads below hard-exit the pool worker (``os._exit``), the
same failure shape a segfault or OOM-kill produces, so these tests
exercise the real ``BrokenProcessPool`` recovery path end to end.
Process-pool tests skip on hosts without multiprocessing support.
"""

import os
import threading
import time

import pytest

from repro.service.scheduler import (
    JobQuarantined, JobResultPending, JobScheduler, JobStatus,
    JobTimeout, _ABANDONED,
)


def _ok(x):
    return x * 2


def _crash_once(sentinel):
    """Hard-kill the worker on first call, succeed afterwards."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("crashed")
        os._exit(9)
    return "recovered"


def _crash_always():
    os._exit(9)


def _sleep_forever():
    time.sleep(60)


@pytest.fixture
def process_scheduler():
    sched = JobScheduler(workers=2, mode="process",
                         backoff_s=0.001, max_backoff_s=0.01)
    if sched.mode != "process":
        sched.shutdown(wait=True)
        pytest.skip("process pool unavailable on this host")
    yield sched
    sched.shutdown(wait=False)


class TestCrashRecovery:
    def test_worker_death_is_recovered_not_fatal(self, process_scheduler,
                                                 tmp_path):
        sentinel = str(tmp_path / "crashed.flag")
        handle, _ = process_scheduler.submit("crashy", _crash_once,
                                             sentinel)
        assert handle.result(timeout=60) == "recovered"
        assert handle.status is JobStatus.SUCCEEDED
        assert handle.crashes == 1
        assert process_scheduler.pool_rebuilds >= 1

    def test_crash_requeue_does_not_consume_retries(self,
                                                    process_scheduler,
                                                    tmp_path):
        # retries=0: a regular failure would be terminal, yet the job
        # still recovers because a crash re-queue is free
        sentinel = str(tmp_path / "crashed.flag")
        handle, _ = process_scheduler.submit("crashy0", _crash_once,
                                             sentinel, retries=0)
        assert handle.result(timeout=60) == "recovered"

    def test_poison_payload_is_quarantined(self, process_scheduler):
        handle, _ = process_scheduler.submit("poison", _crash_always)
        with pytest.raises(JobQuarantined) as excinfo:
            handle.result(timeout=60)
        assert handle.status is JobStatus.QUARANTINED
        # crash budget (2) + the final straw
        assert excinfo.value.crashes == 3
        assert excinfo.value.key == "poison"

    def test_mid_batch_crash_loses_no_results(self, process_scheduler,
                                              tmp_path):
        """The acceptance regression: a BrokenProcessPool mid-batch must
        resolve every outstanding handle and lose zero results."""
        done_before = [process_scheduler.submit(f"pre{i}", _ok, i)[0]
                       for i in range(3)]
        for i, handle in enumerate(done_before):
            assert handle.result(timeout=60) == i * 2
        sentinel = str(tmp_path / "crashed.flag")
        crasher, _ = process_scheduler.submit("mid", _crash_once, sentinel)
        after = [process_scheduler.submit(f"post{i}", _ok, 10 + i)[0]
                 for i in range(4)]
        assert crasher.result(timeout=60) == "recovered"
        for i, handle in enumerate(after):
            assert handle.result(timeout=60) == (10 + i) * 2
        # results completed before the crash are untouched
        for i, handle in enumerate(done_before):
            assert handle.result(timeout=0) == i * 2


class TestTimeoutReclamation:
    def test_abandoned_thread_slot_is_gauged(self):
        sched = JobScheduler(workers=1, mode="thread",
                             backoff_s=0.001, max_backoff_s=0.01)
        try:
            base = _ABANDONED.get()
            release = threading.Event()
            handle, _ = sched.submit("hang", release.wait, 30,
                                     timeout=0.05)
            with pytest.raises(JobTimeout):
                handle.result(timeout=10)
            assert _ABANDONED.get() == base + 1
            release.set()
            deadline = time.monotonic() + 5
            while _ABANDONED.get() > base \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert _ABANDONED.get() == base   # done-callback decrement
        finally:
            sched.shutdown(wait=True)

    def test_process_timeout_recycles_the_pool(self, process_scheduler):
        handle, _ = process_scheduler.submit("stuck", _sleep_forever,
                                             timeout=0.3)
        with pytest.raises(JobTimeout):
            handle.result(timeout=30)
        assert process_scheduler.pool_rebuilds >= 1
        # the recycled pool serves new work promptly: the hung worker
        # was terminated rather than left squatting on the slot
        fresh, _ = process_scheduler.submit("after", _ok, 21)
        assert fresh.result(timeout=60) == 42


class TestResultPending:
    def test_result_timeout_carries_live_status(self):
        sched = JobScheduler(workers=1, mode="thread")
        try:
            release = threading.Event()
            handle, _ = sched.submit("slow", release.wait, 30)
            with pytest.raises(JobResultPending) as excinfo:
                handle.result(timeout=0.05)
            err = excinfo.value
            assert err.key == "slow"
            assert err.status in ("pending", "running")
            assert err.attempts in (0, 1)
            # contract: existing except TimeoutError callers still work
            assert isinstance(err, TimeoutError)
            release.set()
            assert handle.result(timeout=10) is True
        finally:
            sched.shutdown(wait=True)
