"""DeadLetterQueue persistence and bookkeeping."""

from repro.resilience import DeadLetterQueue


class TestMemoryOnly:
    def test_add_contains_get_remove(self):
        dlq = DeadLetterQueue()
        assert not dlq.contains("k1")
        record = dlq.add("k1", {"app": "kmeans"}, reason="crash loop",
                         attempts=3, crashes=3)
        assert record["reason"] == "crash loop"
        assert dlq.contains("k1")
        assert dlq.get("k1")["crashes"] == 3
        assert len(dlq) == 1
        assert dlq.remove("k1")
        assert not dlq.contains("k1")
        assert not dlq.remove("k1")

    def test_add_is_idempotent_last_reason_wins(self):
        dlq = DeadLetterQueue()
        dlq.add("k", None, reason="first")
        dlq.add("k", None, reason="second")
        assert len(dlq) == 1
        assert dlq.get("k")["reason"] == "second"

    def test_entries_oldest_first(self):
        dlq = DeadLetterQueue()
        dlq.add("a", None, reason="ra")
        dlq.add("b", None, reason="rb")
        # force a deterministic order even at equal clock resolution
        dlq._records["a"]["quarantined_at"] = 1.0
        dlq._records["b"]["quarantined_at"] = 2.0
        assert [r["key"] for r in dlq.entries()] == ["a", "b"]


class TestPersistence:
    def test_records_survive_reconstruction(self, tmp_path):
        root = str(tmp_path / "dl")
        dlq = DeadLetterQueue(root)
        dlq.add("deadbeef", {"app": "nbody", "mode": "informed"},
                reason="crashed the pool", attempts=4, crashes=3)
        reloaded = DeadLetterQueue(root)
        assert reloaded.contains("deadbeef")
        record = reloaded.get("deadbeef")
        assert record["job"]["app"] == "nbody"
        assert record["crashes"] == 3

    def test_remove_deletes_the_file(self, tmp_path):
        root = str(tmp_path / "dl")
        dlq = DeadLetterQueue(root)
        dlq.add("k1", None, reason="r")
        assert dlq.remove("k1")
        assert not DeadLetterQueue(root).contains("k1")

    def test_purge_clears_disk_and_memory(self, tmp_path):
        root = str(tmp_path / "dl")
        dlq = DeadLetterQueue(root)
        dlq.add("k1", None, reason="r")
        dlq.add("k2", None, reason="r")
        assert dlq.purge() == 2
        assert len(dlq) == 0
        assert len(DeadLetterQueue(root)) == 0

    def test_unreadable_record_is_skipped_not_fatal(self, tmp_path):
        root = tmp_path / "dl"
        root.mkdir()
        (root / "bad.json").write_text("{nope")
        dlq = DeadLetterQueue(str(root))
        assert len(dlq) == 0
        assert (root / "bad.json").exists()   # evidence kept
