"""Cancellation races: cancel landing in the scheduler's windows.

Each test aims ``cancel()`` at a specific gap in the job lifecycle --
between retry attempts, behind a dedup join, racing submission itself
-- and asserts the invariant that matters: every handle resolves, no
waiter hangs, and a cancelled job reports CANCELLED exactly once.
"""

import threading

import pytest

from repro.service.scheduler import (
    JobCancelled, JobScheduler, JobStatus,
)


@pytest.fixture
def scheduler():
    sched = JobScheduler(workers=2, mode="thread",
                         backoff_s=0.05, max_backoff_s=0.05)
    yield sched
    sched.shutdown(wait=True)


class TestCancelBetweenAttempts:
    def test_cancel_during_backoff_stops_the_retry(self, scheduler):
        """First attempt fails; cancel lands in the backoff window; the
        second attempt must never start."""
        first_failed = threading.Event()
        attempts = []

        def flaky():
            attempts.append(1)
            first_failed.set()
            raise RuntimeError("boom")

        handle, _ = scheduler.submit("racy", flaky, retries=5)
        assert first_failed.wait(5)
        handle.cancel()
        with pytest.raises(JobCancelled):
            handle.result(timeout=5)
        assert handle.status is JobStatus.CANCELLED
        # the 50ms backoff gave cancel() its window: at most one more
        # attempt could have squeezed in, the other four must not run
        assert len(attempts) <= 2


class TestCancelBehindDedupJoin:
    def test_joiner_sees_cancellation_of_the_shared_job(self, scheduler):
        release = threading.Event()
        started = threading.Event()

        def task():
            started.set()
            release.wait(5)
            return "x"

        first, created1 = scheduler.submit("shared", task)
        assert started.wait(5)
        joined, created2 = scheduler.submit("shared", task)
        assert created1 and not created2
        assert joined is first          # one handle, two waiters
        waiter_error = []
        waiter_done = threading.Event()

        def wait_on_join():
            try:
                joined.result(timeout=5)
            except BaseException as exc:
                waiter_error.append(exc)
            waiter_done.set()

        thread = threading.Thread(target=wait_on_join)
        thread.start()
        first.cancel()
        release.set()                   # in-flight attempt drains
        assert waiter_done.wait(5)
        thread.join(5)
        assert waiter_error and isinstance(waiter_error[0], JobCancelled)
        assert first.status is JobStatus.CANCELLED

    def test_cancelled_key_can_be_resubmitted(self, scheduler):
        release = threading.Event()
        handle, _ = scheduler.submit("key", release.wait, 5)
        handle.cancel()
        release.set()
        with pytest.raises(JobCancelled):
            handle.result(timeout=5)
        fresh, created = scheduler.submit("key", lambda: "second life")
        assert created and fresh is not handle
        assert fresh.result(timeout=5) == "second life"


class TestCancelDuringSubmission:
    def test_cancel_racing_submit_never_hangs(self, scheduler):
        """Hammer the submit/cancel race; every handle must resolve."""
        outcomes = []
        for i in range(50):
            handle, _ = scheduler.submit(f"race{i}", lambda: "ran")
            handle.cancel()
            try:
                outcomes.append(handle.result(timeout=5))
            except JobCancelled:
                outcomes.append("cancelled")
        assert len(outcomes) == 50
        assert set(outcomes) <= {"ran", "cancelled"}

    def test_cancel_from_another_thread_during_submit(self, scheduler):
        """Cancel fired concurrently with submit() itself."""
        for i in range(20):
            barrier = threading.Barrier(2, timeout=5)
            holder = {}
            ready = threading.Event()

            def canceller():
                barrier.wait()
                ready.wait(5)
                holder["handle"].cancel()

            thread = threading.Thread(target=canceller)
            thread.start()
            barrier.wait()
            handle, _ = scheduler.submit(f"t{i}", lambda: "ran")
            holder["handle"] = handle
            ready.set()
            try:
                result = handle.result(timeout=5)
                assert result == "ran"
            except JobCancelled:
                assert handle.status is JobStatus.CANCELLED
            thread.join(5)

    def test_queued_behind_busy_pool_cancels_cleanly(self):
        sched = JobScheduler(workers=1, mode="thread")
        try:
            block = threading.Event()
            busy, _ = sched.submit("busy", block.wait, 5)
            queued, _ = sched.submit("queued", lambda: "never")
            assert queued.cancel()
            with pytest.raises(JobCancelled):
                queued.result(timeout=5)
            block.set()
            assert busy.result(timeout=5) is True
        finally:
            sched.shutdown(wait=True)
