"""Shared fixtures.

Full PSA-flow runs cost seconds (they interpret the benchmark twice);
the session-scoped runner executes each (app, mode) pair once and every
test shares the cached :class:`FlowResult`.
"""

import pytest

from repro.evalharness.runner import EvaluationRunner


@pytest.fixture(scope="session")
def runner():
    return EvaluationRunner()


@pytest.fixture(scope="session")
def kmeans_informed(runner):
    return runner.informed("kmeans")


@pytest.fixture(scope="session")
def kmeans_uninformed(runner):
    return runner.uninformed("kmeans")


@pytest.fixture(scope="session")
def nbody_informed(runner):
    return runner.informed("nbody")


@pytest.fixture(scope="session")
def nbody_uninformed(runner):
    return runner.uninformed("nbody")


@pytest.fixture(scope="session")
def adpredictor_informed(runner):
    return runner.informed("adpredictor")


@pytest.fixture(scope="session")
def adpredictor_uninformed(runner):
    return runner.uninformed("adpredictor")


@pytest.fixture(scope="session")
def rush_larsen_informed(runner):
    return runner.informed("rush_larsen")


@pytest.fixture(scope="session")
def rush_larsen_uninformed(runner):
    return runner.uninformed("rush_larsen")


@pytest.fixture(scope="session")
def bezier_informed(runner):
    return runner.informed("bezier")


@pytest.fixture(scope="session")
def bezier_uninformed(runner):
    return runner.uninformed("bezier")


@pytest.fixture(scope="session")
def all_uninformed(runner):
    return {name: runner.uninformed(name) for name in runner.all_apps()}


@pytest.fixture(scope="session")
def all_informed(runner):
    return {name: runner.informed(name) for name in runner.all_apps()}
