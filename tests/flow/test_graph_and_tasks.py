"""Flow graph / task plumbing tests."""

import pytest

from repro.flow.context import FlowContext
from repro.flow.graph import BranchPoint, Sequence, TaskNode
from repro.flow.psa import SelectAll, SelectNamed
from repro.flow.task import FlowError, Task, TaskKind
from repro.apps import get_app


class Probe(Task):
    kind = TaskKind.ANALYSIS
    scope = "TEST"

    def __init__(self, name, log):
        self.name = name
        self._log = log

    def run(self, ctx):
        self._log.append(self.name)


@pytest.fixture
def ctx():
    return FlowContext(get_app("kmeans"))


class TestSequence:
    def test_runs_in_order(self, ctx):
        log = []
        Sequence(Probe("a", log), Probe("b", log), Probe("c", log)).execute(ctx)
        assert log == ["a", "b", "c"]

    def test_then_appends(self, ctx):
        log = []
        seq = Sequence(Probe("a", log)).then(Probe("b", log))
        seq.execute(ctx)
        assert log == ["a", "b"]

    def test_tasks_logged_to_trace(self, ctx):
        Sequence(Probe("hello", [])).execute(ctx)
        assert any("hello" in line for line in ctx.trace)

    def test_describe(self):
        text = Sequence(Probe("a", []), Probe("b", [])).describe()
        assert "a [A]" in text and "b [A]" in text


class TestBranchPoint:
    def test_select_all_runs_every_path(self, ctx):
        log = []
        branch = BranchPoint("X", {
            "p1": Probe("one", log),
            "p2": Probe("two", log),
        })
        branch.execute(ctx)
        assert log == ["one", "two"]

    def test_named_selection_runs_subset(self, ctx):
        log = []
        branch = BranchPoint("X", {
            "p1": Probe("one", log),
            "p2": Probe("two", log),
        }, strategy=SelectNamed("p2"))
        branch.execute(ctx)
        assert log == ["two"]

    def test_decision_recorded_in_facts(self, ctx):
        BranchPoint("X", {"p": Probe("x", [])}).execute(ctx)
        assert ctx.facts["psa:X"].selected == ["p"]

    def test_branches_fork_design_slot(self, ctx):
        captured = {}

        class SetDesign(Task):
            name = "set"

            def run(self, inner):
                inner.design = "DESIGN"

        class Capture(Task):
            name = "cap"

            def __init__(self, key):
                self.key = key

            def run(self, inner):
                captured[self.key] = inner.design

        BranchPoint("X", {
            "a": Sequence(SetDesign(), Capture("a")),
            "b": Capture("b"),
        }).execute(ctx)
        # branch a's design does not leak into branch b or the parent
        assert captured["a"] == "DESIGN"
        assert captured["b"] is None
        assert ctx.design is None

    def test_describe_lists_paths(self):
        branch = BranchPoint("A", {"gpu": Probe("g", [])},
                             strategy=SelectAll())
        text = branch.describe()
        assert "branch A" in text and "[gpu]" in text


class TestContext:
    def test_kernel_name_requires_extraction(self, ctx):
        with pytest.raises(KeyError):
            _ = ctx.kernel_name

    def test_kernel_report_memoized(self, ctx):
        first = ctx.kernel_report()
        assert ctx.kernel_report() is first
        ctx.invalidate_kernel_report()
        assert ctx.kernel_report() is not first

    def test_fork_shares_facts_and_designs(self, ctx):
        child = ctx.fork("x")
        child.facts["k"] = 1
        child.designs.append("d")
        assert ctx.facts["k"] == 1
        assert ctx.designs == ["d"]
        assert child.design is None

    def test_task_base_requires_run(self, ctx):
        with pytest.raises(NotImplementedError):
            Task()(ctx)
