"""FlowResult serialization round-trip tests.

serialize -> deserialize -> the same designs, speedups and decision
trace; this guards the disk format `repro.service.cache` persists.
(`tests/test_serialize_and_dump.py` covers the outbound dict shape;
this file covers the return trip.)
"""

import json

import pytest

from repro.flow.psa import PSADecision
from repro.flow.serialize import (
    DesignRecord, FlowResultRecord, design_from_dict, design_to_dict,
    dump_result, load_result, result_from_dict, result_to_dict,
)


@pytest.fixture(scope="module")
def round_tripped(kmeans_uninformed):
    data = result_to_dict(kmeans_uninformed, include_sources=True)
    # force through actual JSON so nothing non-serializable sneaks by
    return kmeans_uninformed, result_from_dict(json.loads(json.dumps(data)))


class TestResultRoundTrip:
    def test_same_designs(self, round_tripped):
        original, record = round_tripped
        assert isinstance(record, FlowResultRecord)
        assert [d.label for d in record.designs] \
            == [d.label for d in original.designs]
        for ours, want in zip(record.designs, original.designs):
            assert ours.kind == want.kind
            assert ours.device == want.device
            assert ours.synthesizable == want.synthesizable
            assert ours.failure_reason == want.failure_reason
            assert ours.metadata["device_label"] \
                == want.metadata["device_label"]

    def test_same_speedups_and_times(self, round_tripped):
        original, record = round_tripped
        for ours, want in zip(record.designs, original.designs):
            assert ours.speedup == want.speedup
            assert ours.predicted_time_s == want.predicted_time_s
        assert record.reference_time_s == original.reference_time_s
        assert record.auto_selected.speedup \
            == original.auto_selected.speedup

    def test_same_loc_metrics(self, round_tripped):
        original, record = round_tripped
        for ours, want in zip(record.designs, original.designs):
            assert ours.loc == want.loc
            assert ours.reference_loc == want.reference_loc
            assert ours.loc_delta == want.loc_delta
            assert ours.loc_delta_pct == want.loc_delta_pct

    def test_same_decision_trace(self, round_tripped):
        original, record = round_tripped
        assert record.trace == original.trace
        assert record.explain() == original.explain()
        decision = record.decisions["psa:A"]
        assert isinstance(decision, PSADecision)
        assert decision.selected == original.facts["psa:A"].selected
        assert decision.reasons == original.facts["psa:A"].reasons
        assert record.selected_target == original.selected_target

    def test_sources_render(self, round_tripped):
        original, record = round_tripped
        omp = record.design("omp")
        assert omp.render() == original.design("omp").render()

    def test_reserialization_is_identical(self, round_tripped):
        """record -> dict == original -> dict (cache rewrites safely)."""
        original, record = round_tripped
        assert result_to_dict(record, include_sources=True) \
            == result_to_dict(original, include_sources=True)

    def test_record_api_matches_flowresult(self, round_tripped):
        original, record = round_tripped
        assert record.app.display_name == original.app.display_name
        assert len(record.synthesizable_designs) \
            == len(original.synthesizable_designs)
        assert record.design("no-such-label") is None


class TestDesignRecord:
    def test_design_round_trip(self, kmeans_uninformed):
        design = kmeans_uninformed.designs[0]
        data = design_to_dict(design, include_source=True)
        record = design_from_dict(data)
        assert isinstance(record, DesignRecord)
        assert record.label == design.label
        assert design_to_dict(record, include_source=True) == data

    def test_render_without_source_raises(self, kmeans_uninformed):
        record = design_from_dict(
            design_to_dict(kmeans_uninformed.designs[0]))
        with pytest.raises(ValueError, match="without sources"):
            record.render()

    def test_buffer_lookup(self, kmeans_uninformed):
        record = design_from_dict(
            design_to_dict(kmeans_uninformed.designs[0]))
        assert record.buffer("points").direction in ("in", "inout")
        with pytest.raises(KeyError):
            record.buffer("nope")


class TestFileRoundTrip:
    def test_dump_then_load(self, tmp_path, kmeans_informed):
        path = str(tmp_path / "result.json")
        dump_result(kmeans_informed, path, include_sources=True)
        record = load_result(path)
        assert record.app_name == "kmeans"
        assert record.mode == "informed"
        assert record.selected_target == kmeans_informed.selected_target
        assert record.auto_selected.speedup \
            == kmeans_informed.auto_selected.speedup
