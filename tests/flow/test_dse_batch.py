"""Differential suite: batched DSE lowering vs point-at-a-time.

The tentpole guarantee is that ``REPRO_DSE=batched`` (the default) is a
pure *performance* lowering: for every app and device the chosen design
point, the model costs, the HLS reports, the failure classifications and
even the human-readable trace lines are element-wise identical to the
original candidate-at-a-time loops.  These tests pin that equivalence
app by app -- including the edge cases: Rush Larsen overmapping at
factor 1 (unsynthesisable on both FPGAs) and n-body's variable-bound
inner loop discounting the unroll pragma.
"""

import random
import time

import pytest

from repro.apps import get_app
from repro.apps.registry import ALL_APPS
from repro.flow import sweep
from repro.flow.engine import FlowEngine


# ---------------------------------------------------------------------
# Whole-flow comparison
# ---------------------------------------------------------------------

def _design_fingerprint(design):
    """Everything a DSE decision can influence, as comparable data."""
    metadata = {}
    for key, value in design.metadata.items():
        if key == "hls_report":
            metadata[key] = (value.alm_utilization, value.dsp_utilization,
                             value.utilization, value.unroll_factor,
                             value.ii, value.overmapped, value.fitted,
                             tuple(value.warnings))
        else:
            metadata[key] = value
    return {
        "device": design.device,
        "synthesizable": design.synthesizable,
        "failure_reason": design.failure_reason,
        "predicted_time_s": design.predicted_time_s,
        "speedup": design.speedup,
        "metadata": metadata,
        "source": design.render(),
    }


def _run(app_name, mode, dse, monkeypatch):
    monkeypatch.setenv("REPRO_DSE", dse)
    result = FlowEngine().run(get_app(app_name), mode=mode)
    return ([_design_fingerprint(d) for d in result.designs],
            [line for line in result.trace if "DSE" in line])


@pytest.mark.parametrize("app_name", sorted(ALL_APPS))
@pytest.mark.parametrize("mode", ["informed", "uninformed"])
def test_batched_identical_to_point(app_name, mode, monkeypatch):
    point_designs, point_trace = _run(app_name, mode, "point", monkeypatch)
    batch_designs, batch_trace = _run(app_name, mode, "batched", monkeypatch)
    assert batch_designs == point_designs
    assert batch_trace == point_trace


def test_rush_larsen_overmap_edge_case(monkeypatch):
    """Overmap at factor 1 -> unsynthesisable, identically in both
    lowerings (the batched path must not even fit the polynomial)."""
    for dse in ("point", "batched"):
        monkeypatch.setenv("REPRO_DSE", dse)
        result = FlowEngine().run(get_app("rush_larsen"),
                                  mode="uninformed")
        for label in ("oneapi-a10", "oneapi-s10"):
            design = result.design(label)
            assert not design.synthesizable
            assert design.metadata["unroll_factor"] == 1
            assert "overmaps" in design.failure_reason


def test_nbody_variable_inner_edge_case(monkeypatch):
    """The discounted pragma (variable-bound inner loop) keeps factor 1
    under both lowerings."""
    for dse in ("point", "batched"):
        monkeypatch.setenv("REPRO_DSE", dse)
        result = FlowEngine().run(get_app("nbody"), mode="uninformed")
        design = result.design("oneapi-s10")
        assert design.metadata["unroll_factor"] == 1
        assert design.metadata["hls_report"].variable_inner_loop


def test_unknown_dse_mode_runs_default(monkeypatch):
    monkeypatch.setenv("REPRO_DSE", "bogus")
    assert sweep.dse_mode() == "batched"
    monkeypatch.delenv("REPRO_DSE")
    assert sweep.dse_mode() == "batched"
    monkeypatch.setenv("REPRO_DSE", "point")
    assert sweep.dse_mode() == "point"


# ---------------------------------------------------------------------
# Satellite: blocksize near-best tie-breaking is order-invariant
# ---------------------------------------------------------------------

def test_blocksize_tiebreak_order_invariant():
    """Candidates within 1% of the best time tie-break on (occupancy,
    blocksize) -- a total key, so shuffling candidate order can never
    change the selection."""
    candidates = [
        (1.000, 64, 0.50),
        (1.005, 128, 0.75),   # within 1% of best, higher occupancy
        (1.009, 256, 0.75),   # same occupancy, larger block -> wins
        (1.012, 512, 1.00),   # outside the 1% window
        (2.000, 1024, 1.00),
    ]
    expected = sweep.select_blocksize(candidates)
    assert expected[1] == 256
    rng = random.Random(7)
    for _ in range(50):
        shuffled = candidates[:]
        rng.shuffle(shuffled)
        assert sweep.select_blocksize(shuffled) == expected


def test_first_min_index_matches_scalar_rule():
    assert sweep.first_min_index([3.0, 1.0, 1.0, 2.0]) == 1
    assert sweep.first_min_index([5.0]) == 0
    assert sweep.first_min_index([2.0, 2.0, 2.0]) == 0


# ---------------------------------------------------------------------
# Satellite: kernel-subtree cloning in the point-mode unroll loop
# ---------------------------------------------------------------------

class TestCloneFunction:
    """The unroll loop mutates only the kernel function, so its
    candidates clone only that subtree (``Ast.clone_function``) -- the
    rest of the unit is shared, like DSE-time designs where the kernel
    sits next to a large ``main``."""

    def _ast(self):
        from repro.meta.ast_api import Ast

        body = "\n".join(f"    acc = acc + data[i + {k}] * {k}.0;"
                         for k in range(120))
        source = (
            "double kernel(double* data, int n) {\n"
            "    double s = 0.0;\n"
            "    for (int i = 0; i < n; i++) {\n"
            "        s = s + data[i] * data[i];\n"
            "    }\n"
            "    return s;\n"
            "}\n"
            "int main() {\n"
            "    int n = 64;\n"
            "    double* data = ws_array_double(\"data\", n);\n"
            "    double acc = 0.0;\n"
            "    for (int i = 0; i < n; i++) {\n"
            f"{body}\n"
            "    }\n"
            "    return 0;\n"
            "}\n")
        return Ast(source, name="clone_bench.cpp")

    def test_clones_only_the_kernel_subtree(self):
        ast = self._ast()
        dup = ast.clone_function("kernel")
        # the kernel function is a fresh subtree ...
        assert dup.function("kernel") is not ast.function("kernel")
        # ... every other declaration is shared, not copied
        originals = {id(d) for d in ast.unit.decls}
        shared = [d for d in dup.unit.decls if id(d) in originals]
        assert len(shared) == len(ast.unit.decls) - 1
        assert dup.function("main") is ast.function("main")

    def test_mutating_clone_leaves_original_untouched(self):
        from repro.transforms.unroll import set_unroll_pragma

        ast = self._ast()
        before = ast.source
        dup = ast.clone_function("kernel")
        for loop in dup.function("kernel").outermost_loops():
            set_unroll_pragma(loop, 64)
        assert ast.source == before
        assert dup.source != before

    def test_clone_function_faster_than_full_clone(self):
        """Micro-benchmark regression guard: cloning one small kernel
        must beat cloning the whole unit (the old per-factor cost).
        The kernel here is ~1% of the unit, so the gap is far larger
        than scheduler jitter; best-of-3 keeps it stable."""
        ast = self._ast()
        reps = 20

        def best_of(fn):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                for _ in range(reps):
                    fn()
                best = min(best, time.perf_counter() - start)
            return best

        full = best_of(lambda: ast.clone())
        partial = best_of(lambda: ast.clone_function("kernel"))
        assert partial < full / 2


# ---------------------------------------------------------------------
# Telemetry: dse.sweep spans and per-axis dse.point events
# ---------------------------------------------------------------------

def test_sweep_spans_and_metrics(monkeypatch):
    from repro import obs

    monkeypatch.setenv("REPRO_DSE", "batched")
    collector = obs.add_sink(obs.SpanCollector())
    try:
        FlowEngine().run(get_app("kmeans"), mode="uninformed")
    finally:
        obs.remove_sink(collector)
    spans = [s for s in collector.snapshot() if s.name == "dse.sweep"]
    assert {s.attrs["dse"] for s in spans} >= {"unroll", "blocksize",
                                               "omp-threads"}
    for span in spans:
        assert span.attrs["mode"] == "batched"
        assert span.attrs["points"] >= 1
        points = [e for e in span.events if e.name == "dse.point"]
        assert len(points) == span.attrs["points"]

    counter = sweep.POINTS_TOTAL.get(mode="batched", dse="blocksize")
    assert counter >= 8  # the full candidate axis, maybe across runs
