"""PSA strategy tests: the Fig. 3 decision table, exercised both on
synthetic contexts and on the real benchmark flows."""

import pytest

from repro.flow.psa import (
    InformedTargetSelection, PSADecision, SelectAll, SelectNamed,
)
from repro.platforms.profile import KernelProfile


class FakeIntensity:
    def __init__(self, flops_per_byte):
        self.flops_per_byte = flops_per_byte


class FakeAlias:
    def __init__(self, ok=True):
        self.no_aliasing = ok


class FakeContext:
    """Minimal stand-in exposing exactly what strategies consume."""

    def __init__(self, profile, intensity, reference_time=1.0, alias=None):
        self.facts = {"intensity": intensity}
        if alias is not None:
            self.facts["alias"] = alias
        self._profile = profile
        self._reference_time = reference_time
        self.trace = []

    def kernel_profile(self):
        return self._profile

    def reference_time(self):
        return self._reference_time

    def log(self, message):
        self.trace.append(message)


def make_profile(**overrides):
    base = dict(
        kernel_name="k",
        flops=1e9,
        outer_iterations=1_000_000,
        bytes_in=1e6,
        bytes_out=1e6,
        outer_parallel=True,
        dependent_inner_loops=False,
        inner_fully_unrollable=True,
        inner_fixed_product=1,
        transfer_amortization=1,
    )
    base.update(overrides)
    return KernelProfile(**base)


PATHS = ["gpu", "fpga", "omp"]


def select(profile, intensity, **kwargs):
    strategy = InformedTargetSelection(intensity_threshold=0.25)
    ctx = FakeContext(profile, FakeIntensity(intensity), **kwargs)
    return strategy.select(ctx, "A", PATHS)


class TestFig3DecisionTable:
    def test_memory_bound_parallel_goes_omp(self):
        decision = select(make_profile(), intensity=0.1)
        assert decision.selected == ["omp"]

    def test_memory_bound_serial_terminates(self):
        decision = select(make_profile(outer_parallel=False), intensity=0.1)
        assert decision.selected == []

    def test_transfer_dominated_goes_omp(self):
        profile = make_profile(bytes_in=1e12, bytes_out=1e12)
        decision = select(profile, intensity=5.0, reference_time=1e-3)
        assert decision.selected == ["omp"]
        assert any("transfer" in r for r in decision.reasons)

    def test_compute_bound_parallel_no_inner_deps_goes_gpu(self):
        decision = select(make_profile(), intensity=2.0)
        assert decision.selected == ["gpu"]

    def test_unrollable_inner_deps_go_fpga(self):
        profile = make_profile(dependent_inner_loops=True,
                               inner_fully_unrollable=True,
                               inner_fixed_product=16)
        decision = select(profile, intensity=2.0)
        assert decision.selected == ["fpga"]

    def test_non_unrollable_inner_deps_go_gpu(self):
        profile = make_profile(dependent_inner_loops=True,
                               inner_fully_unrollable=False)
        decision = select(profile, intensity=2.0)
        assert decision.selected == ["gpu"]

    def test_serial_outer_compute_bound_goes_fpga(self):
        profile = make_profile(outer_parallel=False)
        decision = select(profile, intensity=2.0)
        assert decision.selected == ["fpga"]

    def test_aliasing_disables_offload(self):
        decision = select(make_profile(), intensity=5.0,
                          alias=FakeAlias(ok=False))
        assert decision.selected == ["omp"]
        assert any("alias" in r.lower() for r in decision.reasons)

    def test_reasons_record_the_quantities(self):
        decision = select(make_profile(), intensity=2.0)
        assert any("FLOPs/B" in r for r in decision.reasons)
        assert any("T_data_trnsfr" in r for r in decision.reasons)


class TestOtherStrategies:
    def test_select_all(self):
        decision = SelectAll().select(None, "A", PATHS)
        assert decision.selected == PATHS

    def test_select_named(self):
        decision = SelectNamed("fpga").select(None, "B", PATHS)
        assert decision.selected == ["fpga"]

    def test_select_named_missing(self):
        with pytest.raises(KeyError):
            SelectNamed("tpu").select(None, "B", PATHS)

    def test_decision_explain(self):
        decision = PSADecision("A", ["gpu"], ["because"])
        text = decision.explain()
        assert "A" in text and "gpu" in text and "because" in text


class TestOnRealFlows:
    """The paper's routing, asserted from the cached flow runs."""

    @pytest.mark.parametrize("app_name,expected", [
        ("rush_larsen", "gpu"),
        ("nbody", "gpu"),
        ("bezier", "gpu"),
        ("adpredictor", "fpga"),
        ("kmeans", "omp"),
    ])
    def test_informed_selection_matches_paper(self, runner, app_name,
                                              expected):
        result = runner.informed(app_name)
        assert result.selected_target == expected
