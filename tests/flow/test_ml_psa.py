"""ML-based PSA strategy tests (the paper's future-work extension)."""

import pytest

from repro.flow.engine import FlowEngine
from repro.flow.ml_psa import (
    DecisionTree, FEATURE_NAMES, MLTargetSelection, extract_features,
    label_from_result, train_from_results, training_row,
)
from repro.apps import get_app


class TestDecisionTree:
    def test_separable_two_class(self):
        X = [[0.0], [0.1], [0.9], [1.0]]
        y = ["omp", "omp", "gpu", "gpu"]
        tree = DecisionTree(max_depth=2).fit(X, y)
        assert tree.predict([0.05]) == "omp"
        assert tree.predict([0.95]) == "gpu"

    def test_three_class_two_features(self):
        X = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0],
             [0.1, 0.1], [0.9, 0.9]]
        y = ["omp", "fpga", "gpu", "gpu", "omp", "gpu"]
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert tree.predict([0.0, 0.0]) == "omp"
        assert tree.predict([0.05, 0.95]) == "fpga"
        assert tree.predict([0.95, 0.5]) == "gpu"

    def test_pure_labels_single_leaf(self):
        tree = DecisionTree().fit([[1.0], [2.0]], ["gpu", "gpu"])
        assert tree.depth() == 0
        assert tree.predict([99.0]) == "gpu"

    def test_depth_limit(self):
        X = [[float(i)] for i in range(16)]
        y = ["gpu" if i % 2 else "omp" for i in range(16)]
        tree = DecisionTree(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_training_set_accuracy_on_fig3_table(self):
        """The tree can represent the hand-written Fig. 3 logic."""
        # columns: intensity, parallel, dependent, unrollable
        rows = [
            ([0.1, 1, 0, 1], "omp"),    # memory bound
            ([0.1, 1, 1, 1], "omp"),
            ([2.0, 1, 0, 1], "gpu"),    # parallel, no dep inner
            ([2.0, 1, 1, 0], "gpu"),    # deps not unrollable
            ([2.0, 1, 1, 1], "fpga"),   # deps fully unrollable
            ([2.0, 0, 0, 1], "fpga"),   # serial outer
        ]
        X = [r for r, _ in rows]
        y = [l for _, l in rows]
        tree = DecisionTree(max_depth=4).fit(X, y)
        for features, label in rows:
            assert tree.predict(features) == label

    def test_predict_with_path_readable(self):
        tree = DecisionTree(max_depth=2).fit(
            [[0.0] * len(FEATURE_NAMES), [1.0] * len(FEATURE_NAMES)],
            ["omp", "gpu"])
        label, path = tree.predict_with_path([1.0] * len(FEATURE_NAMES))
        assert label == "gpu"
        assert any("leaf ->" in step for step in path)

    def test_unfitted_raises(self):
        with pytest.raises(ValueError):
            DecisionTree().predict([1.0])

    def test_empty_training_raises(self):
        with pytest.raises(ValueError):
            DecisionTree().fit([], [])


class TestTrainingData:
    def test_training_rows_from_results(self, all_uninformed):
        for name, result in all_uninformed.items():
            features, label = training_row(result)
            assert len(features) == len(FEATURE_NAMES)
            assert label in ("gpu", "fpga", "omp")

    def test_labels_match_paper_winners(self, all_uninformed):
        expected = {"rush_larsen": "gpu", "nbody": "gpu", "bezier": "gpu",
                    "adpredictor": "fpga", "kmeans": "omp"}
        for name, result in all_uninformed.items():
            assert label_from_result(result) == expected[name], name


class TestLearnedStrategy:
    def test_learned_strategy_reproduces_training_routing(
            self, all_uninformed):
        """Train on the five uninformed runs, then drive informed flows
        with the learned strategy: it must route every training app to
        its winning target (the tree has seen these points)."""
        tree = train_from_results(list(all_uninformed.values()))
        engine = FlowEngine(strategy_a=MLTargetSelection(tree))
        for name, uninformed in all_uninformed.items():
            result = engine.run(get_app(name), mode="informed")
            assert result.selected_target == label_from_result(uninformed), \
                name

    def test_decision_reasons_show_tree_path(self, all_uninformed):
        tree = train_from_results(list(all_uninformed.values()))
        engine = FlowEngine(strategy_a=MLTargetSelection(tree))
        result = engine.run(get_app("kmeans"), mode="informed")
        decision = result.facts["psa:A"]
        assert any("ML strategy" in r for r in decision.reasons)
        assert any("leaf ->" in r for r in decision.reasons)

    def test_generalises_to_unseen_app(self, all_uninformed):
        """Leave-one-out: train without K-Means, predict it.

        K-Means is the only memory-bound app, so the tree cannot learn
        the OMP class without it -- but it must still return a *valid*
        target and never crash on unseen feature ranges."""
        results = [r for n, r in all_uninformed.items() if n != "nbody"]
        tree = train_from_results(results)
        engine = FlowEngine(strategy_a=MLTargetSelection(tree))
        result = engine.run(get_app("nbody"), mode="informed")
        # nbody resembles the other GPU apps: the tree should get it
        assert result.selected_target == "gpu"
