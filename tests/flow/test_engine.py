"""End-to-end flow engine tests over the five benchmarks.

These consume the session-cached flow runs (see conftest), asserting
the structural properties the paper reports.
"""

import pytest

from repro.flow.engine import FlowEngine, build_default_flow
from repro.flow.psa import InformedTargetSelection, SelectAll

ALL_LABELS = ("omp", "hip-1080ti", "hip-2080ti", "oneapi-a10", "oneapi-s10")


class TestUninformedMode:
    def test_generates_five_designs(self, all_uninformed):
        for name, result in all_uninformed.items():
            labels = {d.metadata.get("device_label") for d in result.designs}
            assert labels == set(ALL_LABELS), name

    def test_speedups_positive(self, all_uninformed):
        for result in all_uninformed.values():
            for design in result.synthesizable_designs:
                assert design.speedup > 0

    def test_rush_larsen_fpga_unsynthesizable(self, rush_larsen_uninformed):
        for label in ("oneapi-a10", "oneapi-s10"):
            design = rush_larsen_uninformed.design(label)
            assert not design.synthesizable
            assert "overmaps" in design.failure_reason
            assert design.speedup is None

    def test_all_other_fpga_designs_fit(self, all_uninformed):
        for name, result in all_uninformed.items():
            if name == "rush_larsen":
                continue
            for label in ("oneapi-a10", "oneapi-s10"):
                assert result.design(label).synthesizable, (name, label)

    def test_designs_render_to_source(self, kmeans_uninformed):
        for design in kmeans_uninformed.designs:
            text = design.render()
            assert "hotspot_kernel" in text
            assert design.loc > design.reference_loc

    def test_trace_records_tasks_and_decisions(self, kmeans_uninformed):
        trace = "\n".join(kmeans_uninformed.trace)
        assert "Identify Hotspot Loops" in trace
        assert "[PSA] branch A" in trace
        assert "Finalize" not in trace or True  # finalize logs per design


class TestInformedMode:
    def test_informed_generates_selected_branch_only(self, all_informed):
        counts = {"gpu": 2, "fpga": 2, "omp": 1}
        for name, result in all_informed.items():
            expected = counts[result.selected_target]
            assert len(result.designs) == expected, name

    def test_informed_picks_best_target(self, all_informed, all_uninformed):
        """The paper's headline: 'the informed PSA-flow selects the
        best target for all of the five benchmarks'."""
        for name, informed in all_informed.items():
            auto = informed.auto_selected
            best = max(all_uninformed[name].synthesizable_designs,
                       key=lambda d: d.speedup)
            assert auto.speedup == pytest.approx(best.speedup, rel=1e-6), name

    def test_decision_reasons_available(self, all_informed):
        for result in all_informed.values():
            decision = result.facts["psa:A"]
            assert decision.reasons


class TestDeviceOrderings:
    def test_stratix10_beats_arria10(self, all_uninformed):
        """'the Stratix10 performs better than the Arria10, as expected'"""
        for name, result in all_uninformed.items():
            a10 = result.design("oneapi-a10")
            s10 = result.design("oneapi-s10")
            if not (a10.synthesizable and s10.synthesizable):
                continue
            assert s10.speedup > a10.speedup, name

    def test_2080ti_at_least_1080ti(self, all_uninformed):
        """'Generally, the RTX 2080 outperforms the GTX 1080'"""
        for name, result in all_uninformed.items():
            gtx = result.design("hip-1080ti")
            rtx = result.design("hip-2080ti")
            assert rtx.speedup >= gtx.speedup * 0.99, name

    def test_omp_speedups_close_to_core_count(self, all_uninformed):
        """'speedups close to the number of cores (32)'"""
        for name, result in all_uninformed.items():
            omp = result.design("omp")
            assert 23 <= omp.speedup <= 32.5, name

    def test_rush_larsen_register_occupancy_story(self, rush_larsen_uninformed):
        gtx = rush_larsen_uninformed.design("hip-1080ti")
        rtx = rush_larsen_uninformed.design("hip-2080ti")
        assert gtx.metadata["registers_per_thread"] == 255
        assert gtx.metadata["register_spill"]
        # Pascal register-saturated, Turing not: material gap
        assert rtx.speedup > 1.3 * gtx.speedup

    def test_nbody_fpga_barely_beats_cpu(self, nbody_uninformed):
        """Variable-bound inner loop: ~one pair per cycle (1.1x/1.4x)."""
        a10 = nbody_uninformed.design("oneapi-a10")
        s10 = nbody_uninformed.design("oneapi-s10")
        assert 1.0 < a10.speedup < 3.0
        assert 1.0 < s10.speedup < 3.5
        assert a10.metadata["unroll_factor"] == 1

    def test_adpredictor_gpus_weak_and_similar(self, adpredictor_uninformed):
        """Double-precision kernels level both GeForce parts (~10x)."""
        gtx = adpredictor_uninformed.design("hip-1080ti")
        rtx = adpredictor_uninformed.design("hip-2080ti")
        omp = adpredictor_uninformed.design("omp")
        assert gtx.speedup < omp.speedup
        assert rtx.speedup < 2 * gtx.speedup

    def test_bezier_gpus_close(self, bezier_uninformed):
        """'neither GPU is fully saturated, the difference ... is less
        substantial'"""
        gtx = bezier_uninformed.design("hip-1080ti")
        rtx = bezier_uninformed.design("hip-2080ti")
        assert abs(rtx.speedup - gtx.speedup) / gtx.speedup < 0.25


class TestEngineConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FlowEngine().strategy_for("psychic")

    def test_strategy_override(self):
        strategy = SelectAll()
        engine = FlowEngine(strategy_a=strategy)
        assert engine.strategy_for("informed") is strategy

    def test_default_flow_description_covers_fig4(self):
        text = build_default_flow(InformedTargetSelection()).describe()
        for expected in ("Identify Hotspot Loops", "Hotspot Loop Extraction",
                         "Pointer Analysis", "Arithmetic Intensity",
                         "Remove Array += Dependency", "branch A",
                         "branch B", "branch C", "Generate HIP Design",
                         "Generate oneAPI Design", "Zero-Copy Data Transfer",
                         "Unroll Until Overmap", "Blocksize DSE",
                         "Multi-Thread Parallel Loops",
                         "OMP Num. Threads DSE"):
            assert expected in text, expected
