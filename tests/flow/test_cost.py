"""Cost evaluation / budget feedback tests (Fig. 3 bottom, Fig. 6)."""

import pytest

from repro.flow.cost import BudgetedStrategy, CloudPriceTable, CostEvaluator
from repro.flow.psa import InformedTargetSelection, PSAStrategy, PSADecision

from tests.flow.test_psa import FakeContext, FakeIntensity, make_profile

PATHS = ["gpu", "fpga", "omp"]


class TestCostEvaluator:
    def test_execution_cost_scales_with_time_and_price(self):
        ev = CostEvaluator()
        base = ev.execution_cost(3600.0, "epyc7543")
        assert base == pytest.approx(ev.prices.price("epyc7543"))
        assert ev.execution_cost(7200.0, "epyc7543") == pytest.approx(2 * base)

    def test_relative_cost(self):
        ev = CostEvaluator(CloudPriceTable({"a": 2.0, "b": 1.0}))
        # same time, A twice the price
        assert ev.relative_cost(10.0, "a", 10.0, "b") == pytest.approx(2.0)

    def test_crossover_matches_speed_ratio(self):
        ev = CostEvaluator()
        # A 3.2x faster than B -> A stays cheaper until priced 3.2x higher
        assert ev.crossover_price_ratio(1.0, 3.2) == pytest.approx(3.2)

    def test_with_price_is_functional(self):
        table = CloudPriceTable({"x": 1.0})
        updated = table.with_price("x", 9.0)
        assert table.price("x") == 1.0
        assert updated.price("x") == 9.0

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            CloudPriceTable({}).price("ghost")


class AlwaysGPU(PSAStrategy):
    def select(self, ctx, name, paths):
        return PSADecision(name, ["gpu"], ["fixed"])


class TestBudgetFeedback:
    def make_ctx(self, reference_time=10.0):
        return FakeContext(make_profile(), FakeIntensity(2.0),
                           reference_time=reference_time)

    def test_within_budget_keeps_selection(self):
        strategy = BudgetedStrategy(AlwaysGPU(), budget_per_run=1e9)
        decision = strategy.select(self.make_ctx(), "A", PATHS)
        assert decision.selected == ["gpu"]
        assert any("within" in r for r in decision.reasons)

    def test_over_budget_revises_to_cheaper_branch(self):
        # hotspot of ~3 hours: the GPU branch costs real money
        strategy = BudgetedStrategy(AlwaysGPU(), budget_per_run=1e-7)
        decision = strategy.select(self.make_ctx(reference_time=1e4),
                                   "A", PATHS)
        assert any("EXCEEDS" in r for r in decision.reasons)
        assert any("revis" in r.lower() for r in decision.reasons)

    def test_nothing_fits_keeps_original_with_warning(self):
        strategy = BudgetedStrategy(AlwaysGPU(), budget_per_run=0.0)
        decision = strategy.select(self.make_ctx(reference_time=1e6),
                                   "A", PATHS)
        assert decision.selected == ["gpu"]
        assert any("no branch fits" in r for r in decision.reasons)

    def test_empty_selection_passes_through(self):
        class NoneStrategy(PSAStrategy):
            def select(self, ctx, name, paths):
                return PSADecision(name, [], ["terminated"])

        strategy = BudgetedStrategy(NoneStrategy(), budget_per_run=1.0)
        assert strategy.select(self.make_ctx(), "A", PATHS).selected == []

    def test_wraps_informed_strategy(self):
        strategy = BudgetedStrategy(InformedTargetSelection(),
                                    budget_per_run=1e9)
        decision = strategy.select(self.make_ctx(), "A", PATHS)
        assert decision.selected == ["gpu"]
