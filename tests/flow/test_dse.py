"""DSE engine tests: unroll-until-overmap (Fig. 2), blocksize, threads."""

import pytest

from repro.flow.dse import BlocksizeDSE, OmpThreadsDSE, UnrollUntilOvermapDSE
from repro.flow.task import FlowError
from repro.flow.context import FlowContext
from repro.apps import get_app


class TestUnrollUntilOvermap:
    def test_requires_design(self):
        ctx = FlowContext(get_app("kmeans"))
        with pytest.raises(FlowError):
            UnrollUntilOvermapDSE("arria10").run(ctx)

    def test_kmeans_unrolls_until_near_capacity(self, kmeans_uninformed):
        """Fig. 2 behaviour: factor doubles until the next step overmaps."""
        for label, device in (("oneapi-a10", "arria10"),
                              ("oneapi-s10", "stratix10")):
            design = kmeans_uninformed.design(label)
            factor = design.metadata["unroll_factor"]
            report = design.metadata["hls_report"]
            assert factor >= 2
            assert report.fitted
            # doubling once more would overmap (otherwise the DSE
            # would have kept going)
            assert report.utilization > 0.45

    def test_power_of_two_factors(self, all_uninformed):
        for result in all_uninformed.values():
            for label in ("oneapi-a10", "oneapi-s10"):
                design = result.design(label)
                if design.synthesizable:
                    factor = design.metadata["unroll_factor"]
                    assert factor & (factor - 1) == 0  # power of two

    def test_overmap_at_one_marks_unsynthesizable(self, rush_larsen_uninformed):
        design = rush_larsen_uninformed.design("oneapi-a10")
        assert not design.synthesizable
        assert design.metadata["unroll_factor"] == 1

    def test_variable_inner_keeps_factor_one(self, nbody_uninformed):
        design = nbody_uninformed.design("oneapi-s10")
        assert design.metadata["unroll_factor"] == 1
        assert design.metadata["hls_report"].variable_inner_loop


class TestBlocksizeDSE:
    def test_requires_design(self):
        ctx = FlowContext(get_app("kmeans"))
        with pytest.raises(FlowError):
            BlocksizeDSE("gtx1080ti").run(ctx)

    def test_selects_candidate_and_records_occupancy(self, all_uninformed):
        for result in all_uninformed.values():
            for label in ("hip-1080ti", "hip-2080ti"):
                design = result.design(label)
                assert design.metadata["blocksize"] in BlocksizeDSE.CANDIDATES
                assert 0 < design.metadata["occupancy"] <= 1.0
                assert design.metadata["occupancy_limited_by"] in (
                    "threads", "registers", "blocks", "shared")

    def test_register_pressure_limits_rush_larsen_blocks(
            self, rush_larsen_uninformed):
        design = rush_larsen_uninformed.design("hip-1080ti")
        # 255 regs/thread: blocks above 256 threads are infeasible
        assert design.metadata["blocksize"] <= 256
        assert design.metadata["occupancy_limited_by"] == "registers"


class TestOmpThreadsDSE:
    def test_embarrassingly_parallel_selects_all_cores(self, all_uninformed):
        """'selects the maximum number of threads available
        automatically for each of the five benchmarks'"""
        for name, result in all_uninformed.items():
            design = result.design("omp")
            assert design.metadata["num_threads"] == 32, name

    def test_pragma_carries_thread_count(self, kmeans_uninformed):
        design = kmeans_uninformed.design("omp")
        assert "num_threads(32)" in design.render()

    def test_requires_design(self):
        ctx = FlowContext(get_app("kmeans"))
        with pytest.raises(FlowError):
            OmpThreadsDSE().run(ctx)
