"""Evaluation harness tests: the paper's tables and figures hold in
shape on the regenerated data."""

import pytest

from repro.evalharness.fig5 import (
    PAPER_FIG5, PAPER_SELECTION, render_fig5, run_fig5,
)
from repro.evalharness.fig6 import (
    FIG6_APPS, PAPER_FIG6_CROSSOVERS, render_fig6, run_fig6,
)
from repro.evalharness.render import bars, format_pct, format_speedup, table
from repro.evalharness.runner import DESIGN_LABELS
from repro.evalharness.table1 import (
    PAPER_AVERAGE, averages, render_table1, run_table1,
)
from repro.evalharness.table2 import TABLE2_ROWS, render_table2


@pytest.fixture(scope="module")
def fig5_rows(runner):
    return run_fig5(runner)


@pytest.fixture(scope="module")
def table1_rows(runner):
    return run_table1(runner)


@pytest.fixture(scope="module")
def fig6_rows(runner):
    return run_fig6(runner)


class TestFig5:
    def test_all_apps_present(self, fig5_rows):
        assert [r.app for r in fig5_rows] == [
            "rush_larsen", "nbody", "bezier", "adpredictor", "kmeans"]

    def test_informed_selects_paper_target(self, fig5_rows):
        for row in fig5_rows:
            assert row.selected_target == PAPER_SELECTION[row.app], row.app

    def test_informed_picks_best(self, fig5_rows):
        """'the informed PSA-flow selects the best target for all of
        the five benchmarks'"""
        for row in fig5_rows:
            assert row.informed_picks_best, row.app

    def test_availability_matches_paper(self, fig5_rows):
        """Exactly the paper's n/a cells (Rush Larsen FPGA) are n/a."""
        for row in fig5_rows:
            for label in DESIGN_LABELS:
                paper_na = PAPER_FIG5[row.app][label] is None
                ours_na = row.speedups[label] is None
                assert paper_na == ours_na, (row.app, label)

    def test_speedups_within_2x_of_paper(self, fig5_rows):
        """Shape claim: every measured bar is within 2x of the paper's."""
        for row in fig5_rows:
            for label in DESIGN_LABELS:
                want = PAPER_FIG5[row.app][label]
                got = row.speedups[label]
                if want is None:
                    continue
                assert want / 2 <= got <= want * 2, (row.app, label, got)

    def test_winner_per_app_matches_paper(self, fig5_rows):
        for row in fig5_rows:
            paper = {l: v for l, v in PAPER_FIG5[row.app].items()
                     if l in DESIGN_LABELS and v is not None}
            ours = {l: v for l, v in row.speedups.items() if v is not None}
            assert max(ours, key=ours.get) == max(paper, key=paper.get), row.app

    def test_render(self, fig5_rows):
        text = render_fig5(fig5_rows)
        assert "Auto-Selected" in text
        assert "N-Body" in text
        assert "n/a" in text  # Rush Larsen FPGA bars


class TestTable1:
    def test_rush_larsen_fpga_excluded(self, table1_rows):
        row = [r for r in table1_rows if r.app == "rush_larsen"][0]
        assert row.deltas_pct["oneapi-a10"] is None
        assert row.total_pct is None

    def test_all_synthesizable_deltas_positive(self, table1_rows):
        for row in table1_rows:
            for label, value in row.deltas_pct.items():
                if value is not None:
                    assert value > 0, (row.app, label)

    def test_column_ordering_matches_paper(self, table1_rows):
        """OMP cheapest, then HIP, then oneAPI A10, then oneAPI S10."""
        avg = averages(table1_rows)
        assert avg["omp"] < avg["hip-1080ti"]
        assert avg["hip-1080ti"] < avg["oneapi-a10"]
        assert avg["oneapi-a10"] < avg["oneapi-s10"]

    def test_hip_columns_identical(self, table1_rows):
        """Both HIP designs differ only in DSE'd launch parameters."""
        for row in table1_rows:
            assert row.deltas_pct["hip-1080ti"] == row.deltas_pct["hip-2080ti"]

    def test_kmeans_has_largest_relative_cost(self, table1_rows):
        """The smallest reference pays the largest relative additions."""
        totals = {r.app: r.total_pct for r in table1_rows
                  if r.total_pct is not None}
        assert max(totals, key=totals.get) == "kmeans"

    def test_averages_within_3x_of_paper(self, table1_rows):
        avg = averages(table1_rows)
        for label in DESIGN_LABELS:
            assert PAPER_AVERAGE[label] / 3 <= avg[label] \
                <= PAPER_AVERAGE[label] * 3, label

    def test_render(self, table1_rows):
        text = render_table1(table1_rows)
        assert "Table I" in text and "Average" in text


class TestFig6:
    def test_three_apps(self, fig6_rows):
        assert [r.app for r in fig6_rows] == list(FIG6_APPS)

    def test_adpredictor_crossover_near_paper(self, fig6_rows):
        """FPGA cheaper until priced ~3.2x the GPU (paper's headline)."""
        row = [r for r in fig6_rows if r.app == "adpredictor"][0]
        assert 1.5 <= row.crossover <= 5.0
        assert row.fpga_cheaper_at(1.0)
        assert not row.fpga_cheaper_at(4.0)

    def test_bezier_crossover_below_one(self, fig6_rows):
        """GPU faster on Bezier: FPGA only wins when much cheaper."""
        row = [r for r in fig6_rows if r.app == "bezier"][0]
        assert row.crossover < 1.0
        assert not row.fpga_cheaper_at(1.0)
        assert row.fpga_cheaper_at(0.25)

    def test_crossover_equals_time_ratio(self, fig6_rows):
        for row in fig6_rows:
            assert row.crossover == pytest.approx(row.t_gpu_s / row.t_fpga_s)

    def test_relative_cost_monotonic_in_price(self, fig6_rows):
        for row in fig6_rows:
            ratios = sorted(row.relative_costs)
            values = [row.relative_costs[r] for r in ratios]
            assert values == sorted(values)

    def test_render(self, fig6_rows):
        text = render_fig6(fig6_rows)
        assert "Fig. 6" in text and "crossover" in text


class TestTable2:
    def test_this_work_has_all_capabilities(self):
        this_work = [r for r in TABLE2_ROWS if r.approach == "This Work"][0]
        assert this_work.partition and this_work.mapping \
            and this_work.optimise and this_work.multiple_targets
        assert this_work.scope == "Full App."

    def test_no_other_approach_has_all_four(self):
        for row in TABLE2_ROWS:
            if row.approach == "This Work":
                continue
            assert not (row.partition and row.mapping and row.optimise
                        and row.multiple_targets), row.approach

    def test_render(self):
        text = render_table2()
        assert "This Work" in text and "HeteroCL" in text


class TestRenderHelpers:
    def test_table_alignment(self):
        text = table(["a", "bb"], [["x", "1"], ["yy", "22"]])
        lines = text.splitlines()
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_bars_handles_none(self):
        text = bars(["a", "b"], [10.0, None])
        assert "n/a" in text and "#" in text

    def test_format_helpers(self):
        assert format_speedup(None) == "n/a"
        assert format_speedup(123.4) == "123x"
        assert format_speedup(9.96) == "10.0x"
        assert format_pct(12.3) == "+12%"
