"""Fixtures: real runner servers plus an in-process fleet router.

Runners reuse :class:`tests.server.conftest.LiveServer` (a real
:class:`ReproServer` on a live socket); :class:`LiveRouter` gives the
:class:`~repro.fleet.router.FleetRouter` the same treatment.  Probing
defaults to a long interval so tests drive state transitions
explicitly (via ``probe_now`` or forward failures), never a timer.
"""

import asyncio
import threading

import pytest

from repro.fleet.router import FleetRouter
from tests.server.conftest import LiveServer


class LiveRouter:
    """Runs one :class:`FleetRouter` on its own event-loop thread."""

    def __init__(self, runners, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("probe_interval_s", 60.0)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        self.router = FleetRouter(runners, **kwargs)
        self.call(self.router.start())
        self.url = f"http://127.0.0.1:{self.router.port}"
        self._stopped = False

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def call(self, coro, timeout=60.0):
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def probe_now(self):
        """One synchronous probe pass (the tests' stand-in for the
        timer-driven loop)."""
        self.call(self.router._probe_all())

    def stop(self):
        if self._stopped:
            return
        self._stopped = True
        self.call(self.router.shutdown())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def live_server_factory():
    servers = []

    def factory(**kwargs):
        kwargs.setdefault("port", 0)
        server = LiveServer(**kwargs)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        try:
            server.stop()
        except Exception:              # noqa: BLE001 - chaos tests kill
            pass


@pytest.fixture
def live_router_factory():
    routers = []

    def factory(runners, **kwargs):
        router = LiveRouter(runners, **kwargs)
        routers.append(router)
        return router

    yield factory
    for router in routers:
        router.stop()
