"""FleetRouter durability: journal, restart recovery, warm standby.

Everything here runs against real runners through live routers -- the
same wire a chaos run exercises, minus the SIGKILLs (those live in
``scripts/chaos_fleet.py``; the byte-level crash points live in
``test_journal.py``).
"""

import os
import time

import pytest

from repro.client import ReproClient
from repro.server.protocol import JobNotFound
from repro.config import ReproConfig
from repro.fleet.durable import LeaseFile
from tests.fleet.conftest import LiveRouter


def wait_until(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError("condition not met within "
                         f"{timeout_s:.0f}s: {predicate}")


def finished(client, key, timeout_s=120.0):
    """Poll the job until its terminal record lands; returns it."""

    def poll():
        record = client.status(key)
        return record if record.get("done") else None

    return wait_until(poll, timeout_s)


@pytest.fixture
def durable_fleet(tmp_path, live_server_factory, live_router_factory):
    a = live_server_factory(config=ReproConfig(workers=1))
    b = live_server_factory(config=ReproConfig(workers=1))
    journal_dir = str(tmp_path / "journal")
    router = live_router_factory([a.url, b.url],
                                 journal_dir=journal_dir)
    client = ReproClient(router.url, backoff_s=0.05,
                         poll_interval_s=0.05)
    return a, b, router, client, journal_dir


# ----------------------------------------------------------------------
# Journal writes on the placement path
# ----------------------------------------------------------------------

def test_placements_and_settlement_are_journaled(durable_fleet):
    _, _, router, client, _ = durable_fleet
    key = client.submit("kmeans", "informed", scale=1.03)["id"]
    table = router.router.journal.table
    assert key in table and table[key]["runner"]
    assert table[key]["payload"]["app"] == "kmeans"
    assert finished(client, key)["status"] == "succeeded"
    entry = wait_until(lambda: (router.router.journal.table[key]
                                if router.router.journal
                                .table[key]["done"] else None))
    assert entry["status"] == "succeeded"


def test_journal_endpoint_serves_the_tail(durable_fleet):
    _, _, router, client, _ = durable_fleet
    key = client.submit("kmeans", "informed", scale=1.05)["id"]
    status, data, _ = client._request_once("GET", "/v1/journal?since=0")
    assert status == 200 and data["role"] == "primary"
    if data["reset"]:
        assert key in data["placements"]
    else:
        assert any(r["key"] == key for r in data["records"])
    # a cursor at the head sees nothing new
    status, ahead, _ = client._request_once(
        "GET", f"/v1/journal?since={data['next']}")
    assert status == 200 and ahead["records"] == []


# ----------------------------------------------------------------------
# Restart recovery
# ----------------------------------------------------------------------

def test_restarted_router_serves_journaled_jobs(
        durable_fleet, live_router_factory):
    a, b, router, client, journal_dir = durable_fleet
    key = client.submit("kmeans", "informed", scale=1.07)["id"]
    assert finished(client, key)["status"] == "succeeded"
    router.stop()                      # the primary dies

    reborn = live_router_factory([a.url, b.url],
                                 journal_dir=journal_dir)
    client2 = ReproClient(reborn.url, backoff_s=0.05,
                          poll_interval_s=0.05)
    # replay + reconciliation restored the placement: the read
    # forwards straight to the runner that still holds the result
    assert finished(client2, key, 60)["status"] == "succeeded"
    assert reborn.router._placements[key].runner in (a.url, b.url)


# ----------------------------------------------------------------------
# Warm standby: tail, shed, takeover
# ----------------------------------------------------------------------

def test_standby_mirrors_and_sheds_until_takeover(
        durable_fleet, live_router_factory):
    a, b, router, client, _ = durable_fleet
    standby = live_router_factory([a.url, b.url],
                                  standby_of=router.url,
                                  tail_interval_s=0.05)
    key = client.submit("kmeans", "informed", scale=1.09)["id"]
    finished(client, key)
    mirror = wait_until(
        lambda: (standby.router._mirror.get(key) or {}).get("done")
        and standby.router._mirror[key])
    assert mirror["status"] == "succeeded"
    # job traffic sheds with a retryable 503 while tailing
    shed = ReproClient(standby.url, max_retries=0)
    status, data, _ = shed._request_once("GET", f"/v1/jobs/{key}")
    assert status == 503 and data["error"]["code"] == "unavailable"
    assert "standby" in data["error"]["message"]


def test_standby_takes_over_and_serves_journaled_jobs(
        durable_fleet, live_router_factory, tmp_path):
    a, b, router, client, journal_dir = durable_fleet
    standby = live_router_factory([a.url, b.url],
                                  standby_of=router.url,
                                  journal_dir=journal_dir,
                                  tail_interval_s=0.05,
                                  takeover_after=2)
    key = client.submit("kmeans", "informed", scale=1.11)["id"]
    finished(client, key)
    wait_until(lambda: (standby.router.journal.table.get(key)
                        or {}).get("done"))
    old_term = router.router.journal.term
    router.stop()                      # primary goes dark mid-flight

    wait_until(lambda: standby.router.role == "primary")
    assert standby.router.journal.term > old_term
    # the promoted standby serves the job it only ever mirrored
    client2 = ReproClient(standby.url, backoff_s=0.05,
                          poll_interval_s=0.05)
    assert finished(client2, key, 60)["status"] == "succeeded"


def test_client_endpoint_list_fails_over_to_the_serving_node(
        durable_fleet, live_router_factory):
    a, b, router, client, journal_dir = durable_fleet
    standby = live_router_factory([a.url, b.url],
                                  standby_of=router.url,
                                  journal_dir=journal_dir,
                                  tail_interval_s=0.05,
                                  takeover_after=2)
    key = client.submit("kmeans", "informed", scale=1.13)["id"]
    finished(client, key)
    wait_until(lambda: (standby.router.journal.table.get(key)
                        or {}).get("done"))
    router.stop()
    wait_until(lambda: standby.router.role == "primary")
    # one client, both endpoints: rotation lands on the survivor
    both = ReproClient([router.url, standby.url], backoff_s=0.05,
                       poll_interval_s=0.05)
    assert finished(both, key, 60)["status"] == "succeeded"


# ----------------------------------------------------------------------
# Fencing on the live append path
# ----------------------------------------------------------------------

def test_fenced_primary_sheds_job_traffic(durable_fleet):
    _, _, router, client, journal_dir = durable_fleet
    # a newer writer takes the lease behind the router's back
    LeaseFile(os.path.join(journal_dir, "lease.json")).acquire("usurper")
    # the next journaled mutation trips FencedOut and latches `fenced`
    client.submit("kmeans", "informed", scale=1.17)
    wait_until(lambda: router.router.fenced)
    shed = ReproClient(router.url, max_retries=0)
    status, data, _ = shed._request_once("POST", "/v1/jobs",
                                         {"app": "kmeans"})
    assert status == 503 and data["error"]["code"] == "unavailable"
    assert "fenced" in data["error"]["message"]
    health = shed.health()
    assert health["fenced"] is True and health["status"] == "degraded"


# ----------------------------------------------------------------------
# Scatter-adopt: healing a placement the journal never recorded
# ----------------------------------------------------------------------

def test_scatter_adopt_heals_a_forgotten_placement(durable_fleet):
    a, _, router, client, _ = durable_fleet
    direct = ReproClient(a.url, backoff_s=0.05, poll_interval_s=0.05)
    key = direct.submit("kmeans", "informed", scale=1.19)["id"]
    finished(direct, key)
    assert key not in router.router._placements
    before = router.router._m_readopts.get()
    # the router has never seen this job (torn `place` record after a
    # crash looks the same) -- the read path asks every runner
    record = client.status(key)
    assert record["done"] and record["status"] == "succeeded"
    assert router.router._m_readopts.get() == before + 1
    adopted = router.router._placements[key]
    assert adopted.runner == a.url and adopted.payload is None
    # payload-less placements cannot be resubmitted when their runner
    # dies -- they surface as a 404 telling the client to resubmit
    a.stop(drain=False)
    router.probe_now()                 # first missed probe is a blip
    router.probe_now()                 # the second marks it unhealthy
    with pytest.raises(JobNotFound, match="resubmit"):
        client.status(key)
