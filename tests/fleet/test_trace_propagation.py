"""Fleet-wide trace propagation: one job, one stitched trace.

The contract under test: a job submitted through the router yields
exactly ONE trace -- root at the router, child spans from the runner
that executed it -- and that trace id survives everything the fleet
does to the job (sticky resubmission, node loss, re-routing).
"""

import importlib.util
import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.client import ReproClient
from repro.config import ReproConfig
from repro.fleet.runner import RunnerHandle
from repro.obs.collect import parse_traceparent

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

_spec = importlib.util.spec_from_file_location(
    "validate_trace", REPO_ROOT / "scripts" / "validate_trace.py")
validate_trace = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_trace)


@pytest.fixture
def fleet(live_server_factory, live_router_factory):
    a = live_server_factory(config=ReproConfig(workers=1))
    b = live_server_factory(config=ReproConfig(workers=1))
    router = live_router_factory([a.url, b.url])
    client = ReproClient(router.url, backoff_s=0.05,
                         poll_interval_s=0.05)
    return a, b, router, client


def submit_raw(url, payload, headers=None):
    request = urllib.request.Request(
        url + "/v1/jobs", data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode() or "{}")


# ----------------------------------------------------------------------
# The stitched trace
# ----------------------------------------------------------------------

def test_routed_job_yields_one_stitched_trace(tmp_path,
                                              live_router_factory):
    # real `python -m repro serve` children: the trace must cross an
    # actual process boundary, which in-process LiveServers cannot do
    from repro.fleet.runner import RunnerProcess

    runners = [RunnerProcess(cache_dir=str(tmp_path / f"cache-{i}"),
                             env={"REPRO_OBS_BUFFER": "2048"})
               for i in range(2)]
    try:
        for runner in runners:
            runner.wait_ready()
        router = live_router_factory([r.url for r in runners])
        client = ReproClient(router.url, backoff_s=0.1,
                             poll_interval_s=0.1)
        job_id = client.submit("kmeans", "informed", scale=1.61)["id"]
        client.run_flow("kmeans", "informed", scale=1.61, timeout=120)
        trace = client.obs_trace(job_id)
    finally:
        for runner in runners:
            runner.stop()

    placement = router.router._placements[job_id]
    assert trace["traceId"] == placement.trace["trace_id"]
    assert trace["jobId"] == job_id
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in events}
    assert {"fleet.job", "fleet.route", "service.job"} <= names

    # exactly one trace id, one root (fleet.job, at the router)
    assert {e["args"]["trace_id"] for e in events} == \
        {trace["traceId"]}
    roots = [e for e in events if e["args"]["parent_id"] is None]
    assert [e["name"] for e in roots] == ["fleet.job"]

    # the runner's service.job span is parent-linked across the wire
    # to the router's fleet.route span, in a different process
    by_id = {e["args"]["span_id"]: e for e in events}
    service = next(e for e in events if e["name"] == "service.job")
    assert by_id[service["args"]["parent_id"]]["name"] == "fleet.route"
    assert service["pid"] != by_id[service["args"]["parent_id"]]["pid"]
    assert service["args"]["runner"] in {
        h.url for h in router.router.handles.values()}

    # the full CI gate accepts it as a stitched whole-fleet trace
    path = tmp_path / "stitched.json"
    path.write_text(json.dumps(trace))
    validate_trace.validate_trace(str(path), min_depth=3)
    validate_trace.validate_stitched(str(path))


def test_trace_read_for_unknown_job_is_404(fleet):
    _, _, _, client = fleet
    status, data, _ = client._request_once(
        "GET", f"/v1/obs/traces/{'e' * 64}")
    assert status == 404 and data["error"]["code"] == "not_found"


# ----------------------------------------------------------------------
# Propagation edge cases
# ----------------------------------------------------------------------

def test_client_traceparent_becomes_the_fleet_root_parent(
        fleet, tmp_path):
    _, _, router, client = fleet
    sink = obs.add_sink(obs.SpanCollector())
    try:
        with obs.span("cli.batch") as caller:
            job_id = client.submit("kmeans", scale=1.62)["id"]
    finally:
        obs.remove_sink(sink)
    placement = router.router._placements[job_id]
    # the router's root joined the CALLER's trace instead of minting
    assert placement.trace["trace_id"] == caller.trace_id


def test_malformed_traceparent_falls_back_to_a_fresh_root(fleet):
    _, _, router, _ = fleet
    status, data = submit_raw(
        router.url, {"app": "kmeans", "scale": 1.63},
        headers={"traceparent": "00-not hex at all-??-zz"})
    assert status == 201
    placement = router.router._placements[data["id"]]
    assert placement.trace is not None
    assert len(placement.trace["trace_id"]) == 16   # a minted root


def test_resubmit_dedup_attaches_to_the_original_trace(fleet):
    _, _, router, _ = fleet
    payload = {"app": "kmeans", "scale": 1.64}
    first_status, first = submit_raw(router.url, payload)
    assert first_status == 201
    original = dict(router.router._placements[first["id"]].trace)
    # a second submitter with its OWN live trace joins the job's
    # existing trace instead of splitting it
    again_status, again = submit_raw(
        router.url, payload,
        headers={"traceparent": f"00-{'cd' * 8}-9.9-01"})
    assert again_status == 200 and again["id"] == first["id"]
    assert router.router._placements[first["id"]].trace == original


def test_node_loss_reroute_keeps_the_original_trace_id(fleet):
    import repro.service.core as service_core

    a, b, router, client = fleet
    started = threading.Event()
    release = threading.Event()
    real = service_core.execute_job

    def slow(job, engine=None, observer=None):
        started.set()
        assert release.wait(60), "test never released the worker"
        return real(job, engine=engine, observer=observer)

    # both runners are in-process (LiveServer), so one patch covers
    # whichever node the job lands on
    service_core.execute_job = slow
    try:
        job_id = client.submit("kmeans", scale=1.65)["id"]
        assert started.wait(30), "job never reached a worker"
        original = dict(router.router._placements[job_id].trace)
        victim = a if router.router._placements[job_id].runner == a.url \
            else b
        release.set()
        victim.stop(drain=False)       # node dies mid-flight
        status, data, _ = client._request_once(
            "GET", f"/v1/jobs/{job_id}")
        assert status == 202 and "re-routed" in data["error"]["message"]
        # the resubmission rides the ORIGINAL trace: one job, one trace
        assert router.router._placements[job_id].trace == original
        record = client.run_flow("kmeans", scale=1.65, timeout=120)
        assert record.app_name == "kmeans"
    finally:
        service_core.execute_job = real
        release.set()

    # after collection, the re-routed run's spans join the same trace
    router.probe_now()
    spans = router.router.trace_store.spans(original["trace_id"])
    rerouted = [s for s in spans if s["name"] == "fleet.route"
                and s["attrs"].get("rerouted") == "node_loss"]
    assert rerouted, "re-routed forward span missing from the trace"


# ----------------------------------------------------------------------
# Clock alignment
# ----------------------------------------------------------------------

def test_probe_measures_a_skewed_runner_clock():
    handle = RunnerHandle("http://fake:1")
    skew = 120.0                        # runner clock 2 minutes ahead

    def fake_request(method, path, payload=None, headers=None,
                     timeout_s=None):
        return 200, {"status": "ok", "version": None,
                     "now": obs.now() + skew}, {}

    handle.request = fake_request
    handle.probe()
    assert handle.state == "healthy"
    # offset maps runner time back onto the local clock
    assert handle.clock_offset_s == pytest.approx(-skew, abs=0.05)
    assert handle.snapshot()["clock_offset_s"] == pytest.approx(
        -skew, abs=0.05)


def test_skewed_spans_stitch_monotonically_after_alignment(tmp_path):
    """Regression: without the offset, a child on a fast clock starts
    'before' its parent and the stitched validator rejects the file."""
    from repro.obs.collect import TraceStore
    from repro.obs.span import Span, new_trace_id

    skew = 300.0                       # runner clock 5 minutes BEHIND
    trace_id = new_trace_id()
    parent = Span("fleet.route", trace_id, "1.1", None, t0=1000.0,
                  end=1002.0)
    # the child really started at 1000.5 router-time, but the runner's
    # clock recorded it 300s earlier
    child = Span("service.job", trace_id, "2.1", "1.1",
                 t0=1000.5 - skew, end=1001.5 - skew)
    child.pid = parent.pid + 1
    store = TraceStore()
    store.ingest([parent.to_dict()], offset_s=0.0, runner="router")
    store.ingest([child.to_dict()], offset_s=skew, runner="http://n1")
    trace = obs.chrome_trace(store.spans(trace_id))
    path = tmp_path / "aligned.json"
    path.write_text(json.dumps(trace))
    validate_trace.validate_stitched(str(path))

    # and the negative: ingesting WITHOUT the offset must fail the gate
    broken = TraceStore()
    broken.ingest([parent.to_dict()], offset_s=0.0)
    broken.ingest([child.to_dict()], offset_s=0.0)
    bad_path = tmp_path / "skewed.json"
    bad_path.write_text(json.dumps(obs.chrome_trace(
        broken.spans(trace_id))))
    with pytest.raises(SystemExit):
        validate_trace.validate_stitched(str(bad_path))
