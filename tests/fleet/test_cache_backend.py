"""CacheBackend: concurrent writers, adoption hygiene, peer fetch.

The peer-fetch tests run against a *real* runner serving
``GET /v1/cache/{key}`` so the wire format, the one-hop rule and the
CRC re-verification on adoption are all exercised end to end.
"""

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.client import ReproClient
from repro.config import ReproConfig
from repro.fleet.peers import PeerFetchCache
from repro.service.cache import (CACHE_FORMAT_VERSION, CacheBackend,
                                 ResultCache, entry_crc32)

KEY = "ab" * 32
SPEC = {"app": "kmeans", "mode": "informed"}
RESULT = {"app": "kmeans", "mode": "informed", "reference_time_s": 1.0,
          "designs": [], "selected_target": None}


def test_backends_satisfy_the_protocol(tmp_path):
    local = ResultCache(str(tmp_path))
    assert isinstance(local, CacheBackend)
    assert isinstance(PeerFetchCache(local, []), CacheBackend)


# ----------------------------------------------------------------------
# Concurrent access
# ----------------------------------------------------------------------

def test_concurrent_same_key_puts_converge(tmp_path):
    cache = ResultCache(str(tmp_path))

    def write(_):
        return cache.put(KEY, SPEC, RESULT)

    with ThreadPoolExecutor(max_workers=8) as pool:
        paths = list(pool.map(write, range(32)))
    assert len(set(paths)) == 1         # everyone lands on one file
    assert len(cache) == 1
    entry = cache.get_entry(KEY)
    assert entry is not None and entry["crc32"] == entry_crc32(entry)
    assert cache.stats.writes == 32 and cache.stats.corrupt == 0
    # atomic replace leaves no temp droppings behind
    shard = os.path.dirname(cache._path(KEY))
    assert not [n for n in os.listdir(shard) if n.startswith(".tmp-")]


def test_concurrent_readers_never_see_partial_entries(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(KEY, SPEC, RESULT)

    def churn(i):
        if i % 2:
            cache.put(KEY, SPEC, RESULT)
            return None
        return cache.get_entry(KEY)

    with ThreadPoolExecutor(max_workers=8) as pool:
        reads = [r for r in pool.map(churn, range(64)) if r is not None]
    assert reads and all(r["key"] == KEY for r in reads)
    assert cache.stats.corrupt == 0


# ----------------------------------------------------------------------
# Adoption (put_entry) hygiene
# ----------------------------------------------------------------------

def test_put_entry_round_trips_and_is_idempotent(tmp_path):
    src = ResultCache(str(tmp_path / "a"))
    dst = ResultCache(str(tmp_path / "b"))
    src.put(KEY, SPEC, RESULT)
    entry = src.get_entry(KEY)
    dst.put_entry(entry)
    dst.put_entry(entry)                # re-adoption is a no-op rewrite
    assert dst.get_entry(KEY) == entry


def test_put_entry_rejects_tampered_payloads(tmp_path):
    src = ResultCache(str(tmp_path / "a"))
    dst = ResultCache(str(tmp_path / "b"))
    src.put(KEY, SPEC, RESULT)
    entry = src.get_entry(KEY)

    flipped = dict(entry, result=dict(RESULT, reference_time_s=9.9))
    with pytest.raises(ValueError, match="crc32"):
        dst.put_entry(flipped)
    stale = dict(entry, format=CACHE_FORMAT_VERSION - 1)
    with pytest.raises(ValueError, match="format"):
        dst.put_entry(stale)
    with pytest.raises(ValueError):
        dst.put_entry({"format": CACHE_FORMAT_VERSION})   # no key
    with pytest.raises(ValueError):
        dst.put_entry("not a dict")
    assert dst.get_entry(KEY) is None   # nothing ever touched disk
    assert len(dst) == 0


# ----------------------------------------------------------------------
# Peer fetch over the wire
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def warm_runner(tmp_path_factory):
    """A live runner whose cache holds one finished kmeans flow."""
    from tests.fleet.conftest import LiveServer

    root = str(tmp_path_factory.mktemp("warm-cache"))
    server = LiveServer(port=0,
                        config=ReproConfig(cache_dir=root, workers=1))
    client = ReproClient(server.url, backoff_s=0.05)
    key = client.submit("kmeans", "informed")["id"]
    client.run_flow("kmeans", "informed")
    yield server, key, root
    server.stop()


def test_cache_endpoint_serves_local_entries(warm_runner):
    server, key, _ = warm_runner
    handle_client = ReproClient(server.url)
    status, entry, _ = handle_client._request_once(
        "GET", f"/v1/cache/{key}")
    assert status == 200
    assert entry["key"] == key
    assert entry["crc32"] == entry_crc32(entry)
    status, data, _ = handle_client._request_once(
        "GET", f"/v1/cache/{'f' * 64}")
    assert status == 404
    assert data["error"]["code"] == "not_found"


def test_healthz_reports_cache_stats_and_version(warm_runner):
    import repro

    server, _, _ = warm_runner
    health = ReproClient(server.url).health()
    assert health["version"] == repro.__version__
    cache = health["cache"]
    assert cache["entries"] >= 1 and cache["bytes"] > 0
    assert cache["quarantined"] == 0


def test_local_miss_fetches_and_adopts_from_peer(tmp_path, warm_runner):
    server, key, _ = warm_runner
    local = ResultCache(str(tmp_path))
    tier = PeerFetchCache(local, [server.url])
    entry = tier.get_entry(key)
    assert entry is not None and entry["key"] == key
    # adopted: now answerable strictly locally (the one-hop surface)
    assert local.get_entry(key) is not None
    assert tier.get_local_entry(key) is not None
    record = tier.get(key)
    assert record.app_name == "kmeans"


def test_peer_miss_returns_none_without_recursion(tmp_path, warm_runner):
    server, _, _ = warm_runner
    tier = PeerFetchCache(ResultCache(str(tmp_path)), [server.url])
    assert tier.get_entry("f" * 64) is None
    assert tier.get("f" * 64) is None


def test_corrupt_local_entry_quarantined_then_healed_by_peer(
        tmp_path, warm_runner):
    server, key, _ = warm_runner
    local = ResultCache(str(tmp_path))
    tier = PeerFetchCache(local, [server.url])
    # plant a bit-flipped copy of the entry locally
    good = tier.get_entry(key)
    bad = dict(good, result=dict(good["result"], reference_time_s=66.6))
    path = local._path(key)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bad, fh)              # crc32 now wrong for the body
    # the read detects the damage, quarantines, then heals from the peer
    entry = tier.get_entry(key)
    assert entry == good
    assert local.stats.corrupt == 1
    assert len(list(local.quarantined())) == 1
    assert local.get_entry(key) == good


def test_corrupt_peer_payload_is_never_adopted(tmp_path, warm_runner):
    server, key, root = warm_runner
    # corrupt the *peer's* on-disk entry out from under its server;
    # bypass its verified read path by rewriting the file directly
    peer_path = os.path.join(root, key[:2], f"{key}.json")
    with open(peer_path, "r", encoding="utf-8") as fh:
        good = json.load(fh)
    with open(peer_path, "w", encoding="utf-8") as fh:
        json.dump(dict(good, crc32=(good["crc32"] + 1) & 0xFFFFFFFF), fh)
    try:
        local = ResultCache(str(tmp_path))
        tier = PeerFetchCache(local, [server.url])
        # the peer's own read path quarantines before serving, so the
        # fetch is a miss -- and the local store stays empty either way
        assert tier.get_entry(key) is None
        assert local.get_entry(key) is None
        assert len(local) == 0
    finally:
        os.makedirs(os.path.dirname(peer_path), exist_ok=True)
        with open(peer_path, "w", encoding="utf-8") as fh:
            json.dump(good, fh)
