"""RouterJournal: replay, CRC, crash points, compaction, fencing.

The property-style tests drive the journal the way a crash does --
truncating the file at arbitrary byte offsets, tearing live appends
with the seeded ``journal.write`` fault -- and assert replay always
converges to the reduction of the records that survived intact.
"""

import json
import os
import random

import pytest

from repro.fleet.durable import (
    FencedOut, LeaseFile, RouterJournal, apply_record, record_crc32,
)
from repro.resilience import FaultPlan, InjectedFault, active_plan


def place(journal, i, runner="http://r1", done=False):
    return journal.append(
        "place", f"k{i:02d}",
        runner=runner, payload={"app": "kmeans", "scale": 1.0 + i},
        trace=None, done=done)


def fold(records):
    table = {}
    for record in records:
        apply_record(table, record)
    return table


# ----------------------------------------------------------------------
# Append / replay round trip
# ----------------------------------------------------------------------

class TestRoundTrip:
    def test_replay_reconstructs_the_table(self, tmp_path):
        journal = RouterJournal(str(tmp_path), compact_every=10_000)
        assert journal.open() == {}
        for i in range(5):
            place(journal, i)
        journal.append("done", "k02", status="succeeded")
        journal.append("reroute", "k03", runner="http://r2",
                       payload={"app": "kmeans", "scale": 4.0},
                       done=False)
        expected = dict(journal.table)
        journal.close()

        fresh = RouterJournal(str(tmp_path), compact_every=10_000)
        table = fresh.open(acquire_lease=False)
        assert table == expected
        assert table["k02"]["done"] is True
        assert table["k02"]["status"] == "succeeded"
        assert table["k03"]["runner"] == "http://r2"
        assert table["k03"]["done"] is False
        assert fresh.seq == journal.seq
        assert fresh.torn_tail == fresh.torn_mid == 0

    def test_records_and_snapshot_carry_valid_crcs(self, tmp_path):
        journal = RouterJournal(str(tmp_path), compact_every=10_000)
        journal.open()
        record = place(journal, 0)
        assert record_crc32(record) == record["crc32"]
        journal.close()
        # compact-on-open folds it into a snapshot that is CRC-checked
        # with the same discipline
        RouterJournal(str(tmp_path)).open(acquire_lease=False)
        snap = json.load(open(journal.snapshot_path))
        assert record_crc32(snap) == snap["crc32"]
        assert "k00" in snap["placements"]

    def test_unknown_op_is_rejected_at_append(self, tmp_path):
        journal = RouterJournal(str(tmp_path))
        journal.open()
        with pytest.raises(ValueError):
            journal.append("upsert", "k")
        with pytest.raises(RuntimeError):
            RouterJournal(str(tmp_path), name="x").append("place", "k")

    def test_reducer_ignores_done_for_unplaced_keys(self):
        table = {}
        apply_record(table, {"op": "done", "key": "ghost"})
        apply_record(table, {"op": "nonsense", "key": "k"})
        apply_record(table, {"op": "place", "key": ""})
        assert table == {}


# ----------------------------------------------------------------------
# Torn records: CRC failures, random crash points
# ----------------------------------------------------------------------

class TestTornRecords:
    def test_corrupt_mid_record_is_skipped_and_counted(self, tmp_path):
        journal = RouterJournal(str(tmp_path), compact_every=10_000)
        journal.open()
        for i in range(4):
            place(journal, i)
        journal.close()
        lines = open(journal.path).read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]       # torn mid-file
        lines[3] = lines[3][:-5]                        # torn tail
        with open(journal.path, "w") as fh:
            fh.write("\n".join(lines) + "\n")

        fresh = RouterJournal(str(tmp_path), compact_every=10_000)
        table = fresh.open(acquire_lease=False)
        assert set(table) == {"k00", "k02"}
        assert fresh.torn_mid == 1 and fresh.torn_tail == 1

    def test_crc_mismatch_drops_the_record(self, tmp_path):
        journal = RouterJournal(str(tmp_path), compact_every=10_000)
        journal.open()
        record = place(journal, 0)
        journal.close()
        # flip a payload byte but keep the line well-formed JSON
        tampered = dict(record)
        tampered["runner"] = "http://evil"
        with open(journal.path, "w") as fh:
            fh.write(json.dumps(tampered, separators=(",", ":")) + "\n")
        fresh = RouterJournal(str(tmp_path), compact_every=10_000)
        assert fresh.open(acquire_lease=False) == {}
        assert fresh.torn_tail == 1

    def test_random_crash_points_always_converge(self, tmp_path):
        """Truncate the journal at 40 seeded byte offsets: replay must
        equal the fold of exactly the records whose bytes survived."""
        journal = RouterJournal(str(tmp_path / "full"),
                                compact_every=10_000)
        journal.open()
        records = [place(journal, i) for i in range(12)]
        records.append(journal.append("done", "k04", status="succeeded"))
        records.append(journal.append("done", "k09", status="failed"))
        journal.close()
        blob = open(journal.path, "rb").read()
        rng = random.Random(1234)
        offsets = [len(blob)] + [rng.randrange(1, len(blob))
                                 for _ in range(39)]
        for cut in offsets:
            root = tmp_path / f"crash-{cut}"
            os.makedirs(root)
            with open(root / "primary.journal.jsonl", "wb") as fh:
                fh.write(blob[:cut])
            replayed = RouterJournal(str(root), compact_every=10_000)
            table = replayed.open(acquire_lease=False)
            survived = blob[:cut].count(b"\n")
            expected = fold(records[:survived])
            assert table == expected, f"crash at byte {cut}"
            assert replayed.torn_mid == 0      # prefix cuts only tails
            assert replayed.torn_tail <= 1


# ----------------------------------------------------------------------
# Seeded journal.write storm: deterministic recovery
# ----------------------------------------------------------------------

class TestFaultStorm:
    def run_storm(self, root, seed):
        journal = RouterJournal(str(root), compact_every=10_000)
        journal.open()
        torn = []
        with active_plan(FaultPlan(seed=seed, rate=0.3,
                                   sites=("journal.write",))):
            for i in range(20):
                try:
                    place(journal, i)
                except InjectedFault:
                    torn.append(i)
        journal.close()
        replayed = RouterJournal(str(root), compact_every=10_000)
        return torn, replayed.open(acquire_lease=False), replayed

    def test_same_seed_same_recovered_table(self, tmp_path):
        torn_a, table_a, journal_a = self.run_storm(tmp_path / "a", 7)
        torn_b, table_b, journal_b = self.run_storm(tmp_path / "b", 7)
        assert torn_a and torn_a == torn_b        # the storm fired
        assert table_a == table_b                 # ... identically
        assert journal_a.torn_mid + journal_a.torn_tail == len(torn_a)
        assert set(table_a) == {f"k{i:02d}" for i in range(20)
                                if i not in torn_a}

    def test_different_seed_different_storm(self, tmp_path):
        torn_a, _, _ = self.run_storm(tmp_path / "a", 7)
        torn_b, _, _ = self.run_storm(tmp_path / "b", 8)
        assert torn_a != torn_b

    def test_torn_append_burns_the_seq_but_not_neighbours(self, tmp_path):
        journal = RouterJournal(str(tmp_path), compact_every=10_000)
        journal.open()
        place(journal, 0)
        with active_plan(FaultPlan(seed=0, rate=1.0,
                                   sites=("journal.write",))):
            with pytest.raises(InjectedFault):
                place(journal, 1)
        record = place(journal, 2)
        assert record["seq"] == 3          # seq 2 burnt by the tear
        journal.close()
        fresh = RouterJournal(str(tmp_path), compact_every=10_000)
        assert set(fresh.open(acquire_lease=False)) == {"k00", "k02"}


# ----------------------------------------------------------------------
# Snapshot + compaction
# ----------------------------------------------------------------------

class TestCompaction:
    def test_compaction_truncates_and_preserves_state(self, tmp_path):
        journal = RouterJournal(str(tmp_path), compact_every=4)
        journal.open()
        for i in range(11):
            place(journal, i)
        # every 4th append compacted: the live journal holds < 4 records
        assert len(open(journal.path).read().splitlines()) < 4
        snap = json.load(open(journal.snapshot_path))
        assert snap["format"] == 1 and len(snap["placements"]) >= 8
        expected = dict(journal.table)
        journal.close()
        fresh = RouterJournal(str(tmp_path), compact_every=4)
        assert fresh.open(acquire_lease=False) == expected
        assert fresh.seq == 11

    def test_corrupt_snapshot_falls_back_to_empty_replay(self, tmp_path):
        journal = RouterJournal(str(tmp_path), compact_every=2)
        journal.open()
        for i in range(4):
            place(journal, i)
        journal.close()
        snap = json.load(open(journal.snapshot_path))
        snap["crc32"] ^= 1
        json.dump(snap, open(journal.snapshot_path, "w"))
        fresh = RouterJournal(str(tmp_path), compact_every=2)
        # snapshot rejected; only post-snapshot journal records remain
        table = fresh.open(acquire_lease=False)
        assert set(table).issubset({f"k{i:02d}" for i in range(4)})

    def test_tail_serves_records_then_resets_past_compaction(
            self, tmp_path):
        journal = RouterJournal(str(tmp_path), compact_every=10_000)
        journal.open()
        for i in range(3):
            place(journal, i)
        tail = journal.tail(1)
        assert tail["reset"] is False
        assert [r["key"] for r in tail["records"]] == ["k01", "k02"]
        assert tail["next"] == journal.seq
        journal.compact()
        reset = journal.tail(1)        # cursor predates the snapshot
        assert reset["reset"] is True
        assert set(reset["placements"]) == {"k00", "k01", "k02"}
        assert journal.tail(journal.seq)["records"] == []

    def test_adopt_snapshot_persists_wholesale(self, tmp_path):
        table = {"kx": {"runner": "http://r9", "payload": {"app": "fft"},
                        "trace": None, "done": False, "status": None}}
        journal = RouterJournal(str(tmp_path), name="standby")
        journal.adopt_snapshot(table, seq=41, term=3)
        journal.close()
        fresh = RouterJournal(str(tmp_path), name="standby")
        assert fresh.open(acquire_lease=False) == table
        assert fresh.seq == 41


# ----------------------------------------------------------------------
# Lease / fencing
# ----------------------------------------------------------------------

class TestFencing:
    def test_acquire_bumps_a_monotonic_term(self, tmp_path):
        lease = LeaseFile(str(tmp_path / "lease.json"))
        assert lease.term() == 0
        assert lease.acquire("primary") == 1
        assert lease.acquire("standby") == 2
        assert lease.term() == 2
        assert lease.read()["owner"] == "standby"

    def test_stale_primary_append_is_rejected_after_takeover(
            self, tmp_path):
        primary = RouterJournal(str(tmp_path), name="primary")
        primary.open()
        place(primary, 0)

        standby = RouterJournal(str(tmp_path), name="standby")
        standby.open(acquire_lease=False)
        term = standby.promote("standby")
        assert term == primary.term + 1

        with pytest.raises(FencedOut) as exc:
            place(primary, 1)
        assert exc.value.own_term == primary.term
        assert exc.value.lease_term == term
        # the fenced append must not have reached the journal
        fresh = RouterJournal(str(tmp_path), name="primary")
        assert set(fresh.open(acquire_lease=False)) == {"k00"}

    def test_mirroring_is_not_fenced(self, tmp_path):
        primary = RouterJournal(str(tmp_path), name="primary")
        primary.open()
        record = place(primary, 0)
        standby = RouterJournal(str(tmp_path), name="standby")
        standby.open(acquire_lease=False)
        standby.append_mirror(record)      # no lease, no FencedOut
        assert standby.table == primary.table
        assert standby.seq == record["seq"]

    def test_reopening_as_primary_fences_the_old_writer(self, tmp_path):
        old = RouterJournal(str(tmp_path), name="primary")
        old.open()
        place(old, 0)
        new = RouterJournal(str(tmp_path), name="primary")
        new.open(acquire_lease=True)       # restart on the same journal
        with pytest.raises(FencedOut):
            place(old, 1)
        assert set(new.table) == {"k00"}


# ----------------------------------------------------------------------
# Durability knob
# ----------------------------------------------------------------------

class TestDurable:
    def test_fsync_follows_the_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_DURABLE", raising=False)
        assert RouterJournal(str(tmp_path)).fsync is False
        monkeypatch.setenv("REPRO_DURABLE", "1")
        assert RouterJournal(str(tmp_path)).fsync is True
        assert RouterJournal(str(tmp_path), fsync=False).fsync is False

    def test_fsync_batches(self, tmp_path):
        journal = RouterJournal(str(tmp_path), fsync=True,
                                fsync_batch=3, compact_every=10_000)
        journal.open()
        for i in range(7):
            place(journal, i)
        assert journal._pending_fsync == 1     # 2 batches of 3 flushed
        journal.close()

    def test_fsync_fault_site_fires(self, tmp_path):
        journal = RouterJournal(str(tmp_path), fsync=True,
                                fsync_batch=1, compact_every=10_000)
        journal.open()
        with active_plan(FaultPlan(seed=0, rate=1.0,
                                   sites=("cache.fsync",))):
            with pytest.raises(InjectedFault):
                place(journal, 0)
        # the record itself was flushed before the fsync failed
        journal.close()
        fresh = RouterJournal(str(tmp_path), compact_every=10_000)
        assert set(fresh.open(acquire_lease=False)) == {"k00"}
