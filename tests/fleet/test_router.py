"""FleetRouter: sharding, stealing, node loss, version fencing.

Placement policy is tested on a bare router (no sockets); everything
wire-shaped runs against real runners through a live router.
"""

import threading

import pytest

import repro
import repro.service.core as service_core
from repro import api
from repro.client import ReproClient
from repro.config import ReproConfig
from repro.fleet.router import FleetRouter, _Placement
from repro.fleet.runner import RunnerHandle, free_port
from repro.server import protocol

URLS = [f"http://10.9.9.{i}:7000" for i in range(1, 4)]
KEY = "ab" * 32


def bare_router(**kwargs):
    router = FleetRouter(URLS, **kwargs)
    router._executor.shutdown(wait=False)
    return router


def all_healthy(router):
    for handle in router.handles.values():
        handle.state = "healthy"


# ----------------------------------------------------------------------
# Placement policy (no sockets)
# ----------------------------------------------------------------------

def test_pick_target_prefers_the_shard_owner():
    router = bare_router()
    all_healthy(router)
    owner = router.ring.owner(KEY)
    assert router._pick_target(KEY).url == owner
    # stable across repeated asks (no load, no churn)
    assert router._pick_target(KEY).url == owner


def test_pick_target_steals_from_an_overloaded_owner():
    router = bare_router(steal_threshold=4)
    all_healthy(router)
    owner = router.handles[router.ring.owner(KEY)]
    owner.inflight = 4
    target = router._pick_target(KEY)
    assert target.url != owner.url and target.load() == 0
    assert router._m_steals.get(runner=target.url) >= 1


def test_pick_target_keeps_owner_below_threshold():
    router = bare_router(steal_threshold=4)
    all_healthy(router)
    owner = router.handles[router.ring.owner(KEY)]
    owner.inflight = 3
    assert router._pick_target(KEY) is owner


def test_pick_target_follows_preference_under_exclusion():
    router = bare_router()
    all_healthy(router)
    order = router.ring.preference(KEY)
    assert router._pick_target(KEY, exclude={order[0]}).url == order[1]
    assert router._pick_target(KEY, exclude=set(URLS)) is None


def test_pick_target_ignores_unroutable_states():
    router = bare_router()
    for state, handle in zip(("unknown", "draining", "rejected"),
                             router.handles.values()):
        handle.state = state
    assert router._pick_target(KEY) is None
    next(iter(router.handles.values())).state = "healthy"
    assert router._pick_target(KEY) is not None


def test_router_requires_at_least_one_runner():
    with pytest.raises(ValueError):
        FleetRouter([])


# ----------------------------------------------------------------------
# RunnerHandle probe state machine (real sockets, no servers)
# ----------------------------------------------------------------------

def test_unknown_runner_evicts_on_first_failed_probe():
    handle = RunnerHandle(f"http://127.0.0.1:{free_port()}")
    handle.probe(timeout_s=1.0)
    assert handle.state == "unhealthy"
    assert handle.last_error


def test_healthy_runner_survives_one_blip_not_two():
    handle = RunnerHandle(f"http://127.0.0.1:{free_port()}")
    handle.state = "healthy"
    handle.probe(timeout_s=1.0)
    assert handle.state == "healthy"       # one lost probe is a blip
    assert handle.consecutive_failures == 1
    handle.probe(timeout_s=1.0)
    assert handle.state == "unhealthy"     # two is a dead node


# ----------------------------------------------------------------------
# Live fleet: two real runners behind a live router
# ----------------------------------------------------------------------

@pytest.fixture
def fleet(live_server_factory, live_router_factory):
    a = live_server_factory(config=ReproConfig(workers=1))
    b = live_server_factory(config=ReproConfig(workers=1))
    router = live_router_factory([a.url, b.url])
    client = ReproClient(router.url, backoff_s=0.05,
                         poll_interval_s=0.05)
    return a, b, router, client


def test_healthz_aggregates_the_fleet(fleet):
    _, _, router, client = fleet
    health = client.health()
    assert health["http_status"] == 200 and health["status"] == "ok"
    assert health["version"] == repro.__version__
    fleet_block = health["fleet"]
    assert fleet_block["healthy"] == 2 and fleet_block["total"] == 2
    assert fleet_block["breaker"]["state"] == "closed"
    states = {r["url"]: r["state"] for r in fleet_block["runners"]}
    assert set(states.values()) == {"healthy"}


def test_catalog_and_flow_round_trip_through_the_router(fleet):
    _, _, router, client = fleet
    assert client.apps() == api.list_apps()
    assert client.modes() == api.list_modes()
    record = client.run_flow("kmeans", "informed", timeout=120)
    assert record.app_name == "kmeans"
    assert record.selected_target is not None


def test_submit_is_sticky_and_jobs_merge(fleet):
    _, _, router, client = fleet
    payload = {"app": "kmeans", "scale": 1.21}
    first_status, first, _ = client._request_once(
        "POST", "/v1/jobs", payload)
    assert first_status == 201
    placed_on = router.router._placements[first["id"]].runner
    again_status, again, _ = client._request_once(
        "POST", "/v1/jobs", payload)
    assert again_status == 200 and again["id"] == first["id"]
    assert router.router._placements[first["id"]].runner == placed_on
    assert any(j["id"] == first["id"] for j in client.jobs())


def test_unplaced_job_is_404(fleet):
    _, _, _, client = fleet
    status, data, _ = client._request_once("GET", f"/v1/jobs/{'f' * 64}")
    assert status == 404 and data["error"]["code"] == "not_found"


def test_sse_events_proxy_through_the_router(fleet):
    _, _, _, client = fleet
    job_id = client.submit("kmeans", "informed")["id"]
    client.run_flow("kmeans", "informed", timeout=120)
    names = [name for name, _ in client.events(job_id)]
    assert names and names[-1] == "done"


def test_metrics_expose_fleet_series(fleet):
    _, _, _, client = fleet
    client.submit("kmeans", "informed")
    text = client.metrics()
    assert "repro_fleet_shard_jobs_total" in text
    assert "repro_fleet_runners_healthy 2" in text
    assert 'repro_http_requests_total{route="fleet.submit"' in text


# ----------------------------------------------------------------------
# Node loss and lost state
# ----------------------------------------------------------------------

@pytest.fixture
def blocked_execution(monkeypatch):
    """execute_job blocks until released (runs in-process for both
    runners, so the fleet tests can hold a job in flight)."""
    started = threading.Event()
    release = threading.Event()
    real = service_core.execute_job

    def slow(job, engine=None, observer=None):
        started.set()
        assert release.wait(60), "test never released the worker"
        return real(job, engine=engine, observer=observer)

    monkeypatch.setattr(service_core, "execute_job", slow)
    yield started, release
    release.set()


def test_node_loss_reroutes_in_flight_jobs(fleet, blocked_execution):
    started, release = blocked_execution
    a, b, router, client = fleet
    key = client.submit("kmeans", scale=1.31)["id"]
    assert started.wait(30), "job never reached a worker"
    victim, survivor = ((a, b)
                        if router.router._placements[key].runner == a.url
                        else (b, a))
    release.set()
    victim.stop(drain=False)           # the node dies mid-flight
    status, data, _ = client._request_once("GET", f"/v1/jobs/{key}")
    assert status == 202
    assert "re-routed" in data["error"]["message"]
    assert router.router._placements[key].runner == survivor.url
    assert router.router.handles[victim.url].state == "unhealthy"
    # resubmission got the job's *full* retry budget on the survivor
    record = client.run_flow("kmeans", scale=1.31, timeout=120)
    assert record.app_name == "kmeans"
    assert router.router._m_reroutes.get(reason="node_loss") >= 1


def test_restarted_runner_losing_state_triggers_resubmission(fleet):
    a, b, router, client = fleet
    payload = {"app": "kmeans", "mode": "informed", "scale": 1.07}
    key = protocol.job_from_payload(payload).key()
    # as if routed before runner `a` restarted and forgot everything
    router.router._placements[key] = _Placement(a.url, payload)
    before = router.router._m_reroutes.get(reason="lost_state")
    status, data, _ = client._request_once("GET", f"/v1/jobs/{key}")
    assert status == 202
    assert "lost_state" in data["error"]["message"]
    assert router.router._placements[key].runner == b.url
    assert router.router._m_reroutes.get(reason="lost_state") == before + 1
    deadline_polls = 600
    while deadline_polls:
        status, data, _ = client._request_once("GET", f"/v1/jobs/{key}")
        if data.get("done"):
            break
        deadline_polls -= 1
        threading.Event().wait(0.1)
    assert data.get("status") == "succeeded"


# ----------------------------------------------------------------------
# Version fencing and re-admission
# ----------------------------------------------------------------------

def test_version_skew_fences_runners_until_they_match(
        live_server_factory, live_router_factory):
    a = live_server_factory(config=ReproConfig(workers=1))
    router = live_router_factory([a.url],
                                 expected_version="v99.incompatible")
    client = ReproClient(router.url, max_retries=0)
    handle = router.router.handles[a.url]
    assert handle.state == "rejected"
    assert "version" in handle.last_error
    health = client.health()
    assert health["http_status"] == 503 and health["status"] == "degraded"
    status, data, _ = client._request_once(
        "POST", "/v1/jobs", {"app": "kmeans"})
    assert status == 503 and data["error"]["code"] == "unavailable"
    # the operator rolls the router to the matching version: the next
    # probe pass re-admits the runner without a restart
    router.router.expected_version = repro.__version__
    router.probe_now()
    assert handle.state == "healthy"
    assert client.health()["http_status"] == 200
