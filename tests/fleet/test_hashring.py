"""HashRing: determinism, stability, and the fail-over preference."""

import hashlib

import pytest

from repro.fleet.hashring import HashRing

NODES = [f"http://10.0.0.{i}:8000" for i in range(1, 5)]


def keys(n):
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


def test_owner_is_deterministic_across_instances():
    a, b = HashRing(NODES), HashRing(list(reversed(NODES)))
    for key in keys(200):
        assert a.owner(key) == b.owner(key)


def test_every_key_has_an_owner_among_members():
    ring = HashRing(NODES)
    assert len(ring) == len(NODES)
    for key in keys(50):
        assert ring.owner(key) in NODES


def test_distribution_is_roughly_even():
    ring = HashRing(NODES)
    counts = {node: 0 for node in NODES}
    for key in keys(2000):
        counts[ring.owner(key)] += 1
    for node, count in counts.items():
        # 64 virtual replicas keep each share within a loose band
        assert 200 < count < 900, (node, counts)


def test_removal_only_moves_the_lost_nodes_keys():
    ring = HashRing(NODES)
    before = {key: ring.owner(key) for key in keys(500)}
    ring.remove(NODES[0])
    for key, owner in before.items():
        if owner != NODES[0]:
            assert ring.owner(key) == owner    # survivors keep shards
        else:
            assert ring.owner(key) in NODES[1:]


def test_add_restores_prior_assignment():
    full = HashRing(NODES)
    shrunk = HashRing(NODES[1:])
    shrunk.add(NODES[0])
    for key in keys(200):
        assert shrunk.owner(key) == full.owner(key)


def test_preference_starts_at_owner_and_covers_everyone():
    ring = HashRing(NODES)
    for key in keys(50):
        order = ring.preference(key)
        assert order[0] == ring.owner(key)
        assert sorted(order) == sorted(NODES)   # all nodes, no dupes


def test_owner_with_exclusions_follows_preference():
    ring = HashRing(NODES)
    for key in keys(50):
        order = ring.preference(key)
        assert ring.owner(key, exclude={order[0]}) == order[1]
        assert ring.owner(key, exclude=set(NODES)) is None


def test_empty_and_invalid_rings():
    assert HashRing().owner("deadbeef") is None
    assert HashRing().preference("deadbeef") == []
    assert "x" not in HashRing()
    with pytest.raises(ValueError):
        HashRing(replicas=0)
