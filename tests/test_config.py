"""ReproConfig: parsing, precedence, apply, and the CLI subcommand."""

import json

import pytest

from repro.__main__ import main
from repro.config import ConfigError, ENV_VARS, ReproConfig


# ----------------------------------------------------------------------
# from_env
# ----------------------------------------------------------------------

def test_defaults():
    cfg = ReproConfig.from_env(environ={})
    assert cfg == ReproConfig()
    assert cfg.workers == 1 and cfg.exec_mode == "compiled"
    assert cfg.fastpath and cfg.profile_cache
    assert cfg.cache_dir is None and cfg.retries == 0


def test_from_env_reads_every_var():
    cfg = ReproConfig.from_env(environ={
        "REPRO_CACHE_DIR": "/tmp/c", "REPRO_WORKERS": "4",
        "REPRO_EXEC": "interp", "REPRO_FASTPATH": "0",
        "REPRO_PROFILE_CACHE": "0", "REPRO_RETRIES": "2",
        "REPRO_TRACE_DIR": "/tmp/t", "REPRO_FAULTS": "worker.exec:0.5",
    })
    assert cfg.cache_dir == "/tmp/c" and cfg.workers == 4
    assert cfg.exec_mode == "interp"
    assert not cfg.fastpath and not cfg.profile_cache
    assert cfg.retries == 2 and cfg.trace_dir == "/tmp/t"
    assert cfg.faults == "worker.exec:0.5"


def test_bool_parsing_only_zero_disables():
    # matches the historical readers of REPRO_FASTPATH and friends
    for raw, expected in [("0", False), ("1", True), ("false", True),
                          ("", True), ("no", True)]:
        cfg = ReproConfig.from_env(environ={"REPRO_FASTPATH": raw})
        assert cfg.fastpath is expected, raw


def test_unknown_exec_mode_falls_back_like_the_engine():
    cfg = ReproConfig.from_env(environ={"REPRO_EXEC": "quantum"})
    assert cfg.exec_mode == "compiled"


def test_bad_values_raise_config_error():
    with pytest.raises(ConfigError):
        ReproConfig.from_env(environ={"REPRO_WORKERS": "many"})
    with pytest.raises(ConfigError):
        ReproConfig.from_env(environ={"REPRO_WORKERS": "0"})
    with pytest.raises(ConfigError):
        ReproConfig.from_env(environ={"REPRO_RETRIES": "-1"})
    with pytest.raises(ConfigError):
        ReproConfig(workers=0)
    with pytest.raises(ConfigError):
        ReproConfig(exec_mode="quantum")


# ----------------------------------------------------------------------
# precedence: env < cli < kwarg
# ----------------------------------------------------------------------

def test_resolve_precedence_chain():
    env = {"REPRO_WORKERS": "2", "REPRO_CACHE_DIR": "/env",
           "REPRO_RETRIES": "1"}
    cfg = ReproConfig.resolve(environ=env,
                              cli={"workers": 4, "cache_dir": "/cli"},
                              workers=8)
    assert cfg.workers == 8            # kwarg beats cli beats env
    assert cfg.cache_dir == "/cli"     # cli beats env
    assert cfg.retries == 1            # env survives when nobody overrides


def test_resolve_none_means_not_given():
    env = {"REPRO_WORKERS": "3"}
    cfg = ReproConfig.resolve(environ=env,
                              cli={"workers": None, "cache_dir": None},
                              workers=None)
    assert cfg.workers == 3 and cfg.cache_dir is None


def test_resolve_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown config field"):
        ReproConfig.resolve(environ={}, cli={"worker_count": 3})


def test_replace_filters_none():
    cfg = ReproConfig(workers=5)
    assert cfg.replace(workers=None) is cfg
    assert cfg.replace(workers=2).workers == 2


# ----------------------------------------------------------------------
# apply / env round trip
# ----------------------------------------------------------------------

def test_apply_round_trips_through_environ():
    cfg = ReproConfig(cache_dir="/tmp/c", workers=3, exec_mode="interp",
                      fastpath=False, retries=2)
    env = {"REPRO_TRACE_DIR": "/stale"}     # must be cleared by apply
    cfg.apply(environ=env)
    assert "REPRO_TRACE_DIR" not in env     # unset field removes the var
    assert env["REPRO_WORKERS"] == "3" and env["REPRO_EXEC"] == "interp"
    assert env["REPRO_FASTPATH"] == "0"
    assert ReproConfig.from_env(environ=env) == cfg


def test_env_dict_names_every_documented_var():
    values = ReproConfig(cache_dir="/c", trace_dir="/t", faults="x:1",
                         fleet_runners="http://a:1",
                         fleet_peers="http://b:2",
                         journal_dir="/j",
                         fleet_standby_of="http://p:3").env_dict()
    assert set(values) == {var for _, var in ENV_VARS}


# ----------------------------------------------------------------------
# REPRO_FLEET_* family (PR 6)
# ----------------------------------------------------------------------

def test_fleet_vars_parse_from_env():
    cfg = ReproConfig.from_env(environ={
        "REPRO_FLEET_RUNNERS":
            "http://10.0.0.1:8001, http://10.0.0.2:8002/,",
        "REPRO_FLEET_PEERS": "http://10.0.0.3:8003",
        "REPRO_FLEET_STEAL_THRESHOLD": "9",
        "REPRO_FLEET_PROBE_INTERVAL": "0.5",
        "REPRO_SIM_LATENCY_S": "0.25",
    })
    # whitespace trimmed, trailing slash and empty items dropped
    assert cfg.runner_list() == ["http://10.0.0.1:8001",
                                 "http://10.0.0.2:8002"]
    assert cfg.peer_list() == ["http://10.0.0.3:8003"]
    assert cfg.fleet_steal_threshold == 9
    assert cfg.fleet_probe_interval_s == 0.5
    assert cfg.sim_latency_s == 0.25


def test_fleet_defaults_are_single_node():
    cfg = ReproConfig()
    assert cfg.runner_list() == [] and cfg.peer_list() == []
    assert cfg.fleet_steal_threshold == 4
    assert cfg.fleet_probe_interval_s == 2.0
    assert cfg.sim_latency_s == 0.0


def test_fleet_validation_rejects_bad_values():
    with pytest.raises(ConfigError):
        ReproConfig(fleet_steal_threshold=0)
    with pytest.raises(ConfigError):
        ReproConfig(fleet_probe_interval_s=0.0)
    with pytest.raises(ConfigError):
        ReproConfig(sim_latency_s=-1.0)
    with pytest.raises(ConfigError):
        ReproConfig.from_env(
            environ={"REPRO_FLEET_STEAL_THRESHOLD": "lots"})
    with pytest.raises(ConfigError):
        ReproConfig.from_env(environ={"REPRO_FLEET_PROBE_INTERVAL": "-1"})


def test_fleet_precedence_env_cli_kwarg():
    env = {"REPRO_FLEET_RUNNERS": "http://env:1",
           "REPRO_FLEET_PEERS": "http://env:2",
           "REPRO_FLEET_STEAL_THRESHOLD": "2"}
    cfg = ReproConfig.resolve(
        environ=env,
        cli={"fleet_runners": "http://cli:1,http://cli:2",
             "fleet_steal_threshold": 6},
        fleet_steal_threshold=8)
    assert cfg.runner_list() == ["http://cli:1", "http://cli:2"]
    assert cfg.peer_list() == ["http://env:2"]   # env survives
    assert cfg.fleet_steal_threshold == 8        # kwarg beats cli


def test_fleet_vars_round_trip_through_apply():
    cfg = ReproConfig(fleet_runners="http://a:1,http://b:2",
                      fleet_peers="http://c:3",
                      fleet_steal_threshold=7,
                      fleet_probe_interval_s=1.5, sim_latency_s=0.1)
    env = {}
    cfg.apply(environ=env)
    assert env["REPRO_FLEET_RUNNERS"] == "http://a:1,http://b:2"
    assert env["REPRO_FLEET_STEAL_THRESHOLD"] == "7"
    assert ReproConfig.from_env(environ=env) == cfg


def test_config_subcommand_surfaces_fleet_flags(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_FLEET_PEERS", "http://env-peer:9")
    assert main(["config", "--runners", "http://a:1,http://b:2",
                 "--steal-threshold", "5"]) == 0
    resolved = json.loads(capsys.readouterr().out)
    assert resolved["fleet_runners"] == "http://a:1,http://b:2"
    assert resolved["fleet_steal_threshold"] == 5
    assert resolved["fleet_peers"] == "http://env-peer:9"


# ----------------------------------------------------------------------
# python -m repro config
# ----------------------------------------------------------------------

def test_config_subcommand_prints_resolved_json(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "7")
    monkeypatch.setenv("REPRO_EXEC", "interp")
    assert main(["config"]) == 0
    resolved = json.loads(capsys.readouterr().out)
    assert resolved["workers"] == 7 and resolved["exec_mode"] == "interp"


def test_config_subcommand_flag_beats_env(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "7")
    assert main(["config", "--workers", "2", "--cache-dir", "/x"]) == 0
    resolved = json.loads(capsys.readouterr().out)
    assert resolved["workers"] == 2 and resolved["cache_dir"] == "/x"


def test_config_subcommand_reports_bad_env(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "banana")
    assert main(["config"]) == 2
    assert "config error" in capsys.readouterr().err
