"""ReproConfig: parsing, precedence, apply, and the CLI subcommand."""

import json

import pytest

from repro.__main__ import main
from repro.config import ConfigError, ENV_VARS, ReproConfig


# ----------------------------------------------------------------------
# from_env
# ----------------------------------------------------------------------

def test_defaults():
    cfg = ReproConfig.from_env(environ={})
    assert cfg == ReproConfig()
    assert cfg.workers == 1 and cfg.exec_mode == "compiled"
    assert cfg.fastpath and cfg.profile_cache
    assert cfg.cache_dir is None and cfg.retries == 0


def test_from_env_reads_every_var():
    cfg = ReproConfig.from_env(environ={
        "REPRO_CACHE_DIR": "/tmp/c", "REPRO_WORKERS": "4",
        "REPRO_EXEC": "interp", "REPRO_FASTPATH": "0",
        "REPRO_PROFILE_CACHE": "0", "REPRO_RETRIES": "2",
        "REPRO_TRACE_DIR": "/tmp/t", "REPRO_FAULTS": "worker.exec:0.5",
    })
    assert cfg.cache_dir == "/tmp/c" and cfg.workers == 4
    assert cfg.exec_mode == "interp"
    assert not cfg.fastpath and not cfg.profile_cache
    assert cfg.retries == 2 and cfg.trace_dir == "/tmp/t"
    assert cfg.faults == "worker.exec:0.5"


def test_bool_parsing_only_zero_disables():
    # matches the historical readers of REPRO_FASTPATH and friends
    for raw, expected in [("0", False), ("1", True), ("false", True),
                          ("", True), ("no", True)]:
        cfg = ReproConfig.from_env(environ={"REPRO_FASTPATH": raw})
        assert cfg.fastpath is expected, raw


def test_unknown_exec_mode_falls_back_like_the_engine():
    cfg = ReproConfig.from_env(environ={"REPRO_EXEC": "quantum"})
    assert cfg.exec_mode == "compiled"


def test_bad_values_raise_config_error():
    with pytest.raises(ConfigError):
        ReproConfig.from_env(environ={"REPRO_WORKERS": "many"})
    with pytest.raises(ConfigError):
        ReproConfig.from_env(environ={"REPRO_WORKERS": "0"})
    with pytest.raises(ConfigError):
        ReproConfig.from_env(environ={"REPRO_RETRIES": "-1"})
    with pytest.raises(ConfigError):
        ReproConfig(workers=0)
    with pytest.raises(ConfigError):
        ReproConfig(exec_mode="quantum")


# ----------------------------------------------------------------------
# precedence: env < cli < kwarg
# ----------------------------------------------------------------------

def test_resolve_precedence_chain():
    env = {"REPRO_WORKERS": "2", "REPRO_CACHE_DIR": "/env",
           "REPRO_RETRIES": "1"}
    cfg = ReproConfig.resolve(environ=env,
                              cli={"workers": 4, "cache_dir": "/cli"},
                              workers=8)
    assert cfg.workers == 8            # kwarg beats cli beats env
    assert cfg.cache_dir == "/cli"     # cli beats env
    assert cfg.retries == 1            # env survives when nobody overrides


def test_resolve_none_means_not_given():
    env = {"REPRO_WORKERS": "3"}
    cfg = ReproConfig.resolve(environ=env,
                              cli={"workers": None, "cache_dir": None},
                              workers=None)
    assert cfg.workers == 3 and cfg.cache_dir is None


def test_resolve_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown config field"):
        ReproConfig.resolve(environ={}, cli={"worker_count": 3})


def test_replace_filters_none():
    cfg = ReproConfig(workers=5)
    assert cfg.replace(workers=None) is cfg
    assert cfg.replace(workers=2).workers == 2


# ----------------------------------------------------------------------
# apply / env round trip
# ----------------------------------------------------------------------

def test_apply_round_trips_through_environ():
    cfg = ReproConfig(cache_dir="/tmp/c", workers=3, exec_mode="interp",
                      fastpath=False, retries=2)
    env = {"REPRO_TRACE_DIR": "/stale"}     # must be cleared by apply
    cfg.apply(environ=env)
    assert "REPRO_TRACE_DIR" not in env     # unset field removes the var
    assert env["REPRO_WORKERS"] == "3" and env["REPRO_EXEC"] == "interp"
    assert env["REPRO_FASTPATH"] == "0"
    assert ReproConfig.from_env(environ=env) == cfg


def test_env_dict_names_every_documented_var():
    values = ReproConfig(cache_dir="/c", trace_dir="/t",
                         faults="x:1").env_dict()
    assert set(values) == {var for _, var in ENV_VARS}


# ----------------------------------------------------------------------
# python -m repro config
# ----------------------------------------------------------------------

def test_config_subcommand_prints_resolved_json(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "7")
    monkeypatch.setenv("REPRO_EXEC", "interp")
    assert main(["config"]) == 0
    resolved = json.loads(capsys.readouterr().out)
    assert resolved["workers"] == 7 and resolved["exec_mode"] == "interp"


def test_config_subcommand_flag_beats_env(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "7")
    assert main(["config", "--workers", "2", "--cache-dir", "/x"]) == 0
    resolved = json.loads(capsys.readouterr().out)
    assert resolved["workers"] == 2 and resolved["cache_dir"] == "/x"


def test_config_subcommand_reports_bad_env(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "banana")
    assert main(["config"]) == 2
    assert "config error" in capsys.readouterr().err
