"""Textual loop unrolling tests, including a property-based semantics
check against the original loop."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.meta.ast_api import Ast
from repro.transforms import UnrollError, fully_unroll


def run_return(source):
    return Ast(source).execute().return_value


class TestFullyUnroll:
    def test_basic(self):
        ast = Ast("""
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                s += i;
            }
            return s;
        }
        """)
        fully_unroll(ast.function("main").loops()[0])
        assert "for (" not in ast.source
        assert ast.execute().return_value == 6

    def test_step_and_start(self):
        ast = Ast("""
        int main() {
            int s = 0;
            for (int i = 3; i <= 11; i += 4) {
                s += i;
            }
            return s;
        }
        """)
        fully_unroll(ast.function("main").loops()[0])
        assert ast.execute().return_value == 3 + 7 + 11

    def test_locals_renamed_per_copy(self):
        ast = Ast("""
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i++) {
                int d = i * 2;
                s += d;
            }
            return s;
        }
        """)
        fully_unroll(ast.function("main").loops()[0])
        text = ast.source
        assert "d_u0" in text and "d_u1" in text and "d_u2" in text
        assert ast.execute().return_value == 6

    def test_arrays_and_inner_structures_survive(self):
        source = """
        int main() {
            double a[8];
            double total = 0.0;
            for (int i = 0; i < 8; i++) {
                a[i] = i * 0.5;
            }
            for (int i = 0; i < 8; i++) {
                if (i % 2 == 0) {
                    total += a[i];
                }
            }
            return (int)total;
        }
        """
        reference = run_return(source)
        ast = Ast(source)
        for loop in list(ast.function("main").outermost_loops()):
            fully_unroll(loop)
        assert ast.execute().return_value == reference

    def test_variable_bound_rejected(self):
        ast = Ast("""
        int main() {
            int n = 4;
            int s = 0;
            for (int i = 0; i < n; i++) s += i;
            return s;
        }
        """)
        with pytest.raises(UnrollError):
            fully_unroll(ast.function("main").loops()[0])

    def test_break_rejected(self):
        ast = Ast("""
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                if (i == 2) break;
                s += i;
            }
            return s;
        }
        """)
        with pytest.raises(UnrollError):
            fully_unroll(ast.function("main").loops()[0])

    def test_induction_write_rejected(self):
        ast = Ast("""
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                i = i + 0;
                s += 1;
            }
            return s;
        }
        """)
        with pytest.raises(UnrollError):
            fully_unroll(ast.function("main").loops()[0])

    def test_zero_trip_loop_removed(self):
        ast = Ast("""
        int main() {
            int s = 7;
            for (int i = 5; i < 2; i++) {
                s = 0;
            }
            return s;
        }
        """)
        fully_unroll(ast.function("main").loops()[0])
        assert "for (" not in ast.source
        assert ast.execute().return_value == 7


@settings(max_examples=40, deadline=None)
@given(start=st.integers(0, 5), count=st.integers(1, 8),
       step=st.integers(1, 3), scale=st.integers(-4, 4))
def test_unroll_semantics_property(start, count, step, scale):
    """Unrolled code computes exactly what the loop computed."""
    bound = start + count * step
    source = f"""
    int main() {{
        int s = 0;
        for (int i = {start}; i < {bound}; i += {step}) {{
            s += i * {scale} + 1;
        }}
        return s;
    }}
    """
    reference = run_return(source)
    ast = Ast(source)
    fully_unroll(ast.function("main").loops()[0])
    assert ast.execute().return_value == reference
