"""Transform task tests: extraction, scalarisation, SP, unroll, OpenMP.

Every semantics-affecting transform is validated by executing the
program before and after and comparing outputs.
"""

import pytest

from repro.analysis import identify_hotspot_loops
from repro.analysis.common import LoopPath
from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast
from repro.transforms import (
    employ_sp_literals, employ_sp_math, extract_hotspot,
    insert_parallel_for, remove_array_plus_equals, set_unroll_pragma,
    unroll_factor_of, unroll_fixed_loops,
)
from repro.transforms.extraction import TransformError
from repro.transforms.sp_math import cast_double_loads, demote_local_doubles

APP = """
int main() {
    int n = ws_int("n");
    double* x = ws_array_double("x", n * 4);
    double* out = ws_array_double("out", n);
    for (int i = 0; i < n * 4; i++) {
        x[i] = rand01();
    }
    for (int i = 0; i < n; i++) {
        out[i] = 0.0;
        for (int j = 0; j < 4; j++) {
            out[i] += sqrt(x[i * 4 + j]) * 0.5;
        }
    }
    return 0;
}
"""


def fresh():
    return Ast(APP), Workload(scalars={"n": 64})


def outputs(ast, n=64):
    wl = Workload(scalars={"n": n})
    ast.execute(wl)
    return wl.result("out")


class TestExtraction:
    def extract(self, ast):
        path = LoopPath("main", 1)  # the compute loop
        return extract_hotspot(ast, path, "hot")

    def test_kernel_created_with_call(self):
        ast, _ = fresh()
        result = self.extract(ast)
        assert result.kernel_name == "hot"
        assert ast.has_function("hot")
        assert "hot(" in ast.source

    def test_param_constness(self):
        ast, _ = fresh()
        result = self.extract(ast)
        types = dict(result.params)
        assert types["x"].const          # read-only buffer
        assert not types["out"].const    # written buffer
        assert not types["n"].is_pointer

    def test_semantics_preserved(self):
        reference, _ = fresh()
        transformed, _ = fresh()
        self.extract(transformed)
        assert outputs(transformed) == outputs(reference)

    def test_kernel_inserted_before_host(self):
        ast, _ = fresh()
        self.extract(ast)
        names = [f.name for f in ast.functions()]
        assert names.index("hot") < names.index("main")

    def test_duplicate_name_rejected(self):
        ast, _ = fresh()
        self.extract(ast)
        with pytest.raises(TransformError):
            extract_hotspot(ast, LoopPath("main", 0), "hot")

    def test_written_free_scalar_rejected(self):
        source = """
        int main() {
            double total = 0.0;
            for (int i = 0; i < 10; i++) {
                total += 1.0;
            }
            printf("%g", total);
            return 0;
        }
        """
        ast = Ast(source)
        with pytest.raises(TransformError):
            extract_hotspot(ast, LoopPath("main", 0), "k")


class TestRemoveArrayPlusEquals:
    def make(self):
        ast, _ = fresh()
        extract_hotspot(ast, LoopPath("main", 1), "hot")
        return ast

    def test_scalarises_and_preserves_semantics(self):
        reference, _ = fresh()
        transformed = self.make()
        count = remove_array_plus_equals(transformed, "hot")
        assert count == 1
        assert "__acc_out" in transformed.source
        assert outputs(transformed) == outputs(reference)

    def test_initial_store_folded_into_accumulator(self):
        transformed = self.make()
        remove_array_plus_equals(transformed, "hot")
        kernel_text = transformed.source
        # the plain `out[i] = 0.0;` became the accumulator initialiser
        assert "double __acc_out = 0.0;" in kernel_text

    def test_writeback_at_loop_end(self):
        transformed = self.make()
        remove_array_plus_equals(transformed, "hot")
        assert "out[i] = __acc_out;" in transformed.source

    def test_idempotent(self):
        transformed = self.make()
        remove_array_plus_equals(transformed, "hot")
        assert remove_array_plus_equals(transformed, "hot") == 0

    def test_no_candidates_is_noop(self):
        ast = Ast("""
        void knl(double* a, int n) {
            for (int i = 0; i < n; i++) a[i] = 1.0;
        }
        """)
        assert remove_array_plus_equals(ast, "knl") == 0

    def test_inner_variable_subscript_not_hoisted(self):
        # subscript uses the inner variable: cannot scalarise per-i
        ast = Ast("""
        void knl(double* a, int n) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 4; j++) {
                    a[j] += 1.0;
                }
            }
        }
        """)
        assert remove_array_plus_equals(ast, "knl") == 0


class TestSinglePrecision:
    def make(self):
        ast, _ = fresh()
        extract_hotspot(ast, LoopPath("main", 1), "hot")
        return ast

    def test_sp_math_rewrite(self):
        ast = self.make()
        assert employ_sp_math(ast, "hot") == 1
        assert "sqrtf(" in ast.source

    def test_sp_literals_suffixed(self):
        ast = self.make()
        count = employ_sp_literals(ast, "hot")
        assert count >= 2  # 0.0 and 0.5
        assert "0.5f" in ast.source

    def test_demote_locals(self):
        ast = self.make()
        # out[i] += ... has no locals; scalarise first
        remove_array_plus_equals(ast, "hot")
        assert demote_local_doubles(ast, "hot") >= 1
        assert "float __acc_out" in ast.source

    def test_cast_double_loads(self):
        ast = self.make()
        remove_array_plus_equals(ast, "hot")
        demote_local_doubles(ast, "hot")
        count = cast_double_loads(ast, "hot")
        assert count >= 1
        assert "(float)x[" in ast.source

    def test_full_sp_pipeline_close_to_reference(self):
        reference, _ = fresh()
        ast = self.make()
        remove_array_plus_equals(ast, "hot")
        employ_sp_math(ast, "hot")
        employ_sp_literals(ast, "hot")
        demote_local_doubles(ast, "hot")
        cast_double_loads(ast, "hot")
        got = outputs(ast)
        want = outputs(reference)
        # numerically close (the interpreter models fp64 throughout; the
        # transform must not change the computation structure)
        assert all(abs(g - w) < 1e-6 for g, w in zip(got, want))

    def test_main_untouched(self):
        ast = self.make()
        employ_sp_literals(ast, "hot")
        # literals in main stay double
        assert "rand01()" in ast.source


class TestUnroll:
    def test_unroll_fixed_inner_loops(self):
        ast, _ = fresh()
        extract_hotspot(ast, LoopPath("main", 1), "hot")
        unrolled = unroll_fixed_loops(ast, "hot")
        assert len(unrolled) == 1
        assert "#pragma unroll 4" in ast.source

    def test_limit_respected(self):
        ast = Ast("""
        void knl(double* a) {
            for (int i = 0; i < 2; i++) {
                for (int j = 0; j < 1000; j++) a[j] += 1.0;
            }
        }
        """)
        assert unroll_fixed_loops(ast, "knl", limit=64) == []

    def test_set_and_read_factor(self):
        ast, _ = fresh()
        loop = ast.function("main").loops()[1]
        set_unroll_pragma(loop, 16)
        assert unroll_factor_of(loop) == 16
        set_unroll_pragma(loop, 1)  # removes the pragma
        assert unroll_factor_of(loop) == 1

    def test_bare_unroll_means_full(self):
        from repro.meta.parser import parse_stmt

        loop = parse_stmt("#pragma unroll\nfor (int j = 0; j < 8; j++) ;")
        assert unroll_factor_of(loop) == 8


class TestOpenMP:
    def test_parallel_for_with_semantics(self):
        reference, _ = fresh()
        ast, _ = fresh()
        extract_hotspot(ast, LoopPath("main", 1), "hot")
        loops = insert_parallel_for(ast, "hot", num_threads=16)
        assert len(loops) == 1
        assert "#pragma omp parallel for num_threads(16)" in ast.source
        assert outputs(ast) == outputs(reference)

    def test_reduction_clause_emitted(self):
        ast = Ast("""
        void knl(double* partial, const double* a, int n) {
            for (int i = 0; i < n; i++) {
                s += a[i];
            }
            partial[0] = s;
        }
        """.replace("for (int i", "double s_unused = 0.0; for (int i"))
        # build a clean reduction kernel instead
        ast = Ast("""
        double knl(const double* a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                s += a[i];
            }
            return s;
        }
        """)
        insert_parallel_for(ast, "knl")
        assert "reduction(+:s)" in ast.source

    def test_no_parallel_loop_raises(self):
        ast = Ast("""
        void knl(double* a, int n) {
            for (int i = 1; i < n; i++) {
                a[i] = a[i - 1] * 0.5;
            }
        }
        """)
        with pytest.raises(ValueError):
            insert_parallel_for(ast, "knl")
