"""Benchmark application tests: oracles, spec sanity, scaling."""

import pytest

from repro.apps import ALL_APPS, get_app
from repro.apps.registry import PAPER_ORDER


class TestRegistry:
    def test_five_apps(self):
        assert set(ALL_APPS) == {"nbody", "kmeans", "adpredictor",
                                 "rush_larsen", "bezier"}

    def test_paper_order_complete(self):
        assert sorted(PAPER_ORDER) == sorted(ALL_APPS)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_app("tsp")


@pytest.mark.parametrize("name", sorted(ALL_APPS))
class TestEveryApp:
    def test_source_parses_and_runs(self, name):
        app = get_app(name)
        workload = app.workload()
        report = app.ast().execute(workload)
        assert report.return_value == 0

    def test_outputs_match_numpy_oracle(self, name):
        app = get_app(name)
        workload = app.workload()
        app.ast().execute(workload)
        app.check_outputs(workload)  # raises on mismatch

    def test_oracle_catches_corruption(self, name):
        app = get_app(name)
        workload = app.workload()
        app.ast().execute(workload)
        buf = workload._buffers[app.output_buffers[0]]
        buf.data[0] = buf.data[0] + 1.0e6
        with pytest.raises(AssertionError):
            app.check_outputs(workload)

    def test_scaled_workload_runs(self, name):
        app = get_app(name)
        workload = app.workload(scale=0.25)
        report = app.ast().execute(workload)
        assert report.return_value == 0
        app.check_outputs(workload)

    def test_spec_fields_sane(self, name):
        app = get_app(name)
        assert app.reference_loc > 20
        assert app.eval_scale >= 1
        assert app.hotspot_invocations >= 1
        assert app.output_buffers

    def test_workloads_deterministic(self, name):
        app = get_app(name)
        a, b = app.workload(), app.workload()
        assert a.scalars == b.scalars
        assert a._initial_arrays.keys() == b._initial_arrays.keys()
        for key in a._initial_arrays:
            assert a._initial_arrays[key] == b._initial_arrays[key]


class TestAppProperties:
    def test_adpredictor_requires_double(self):
        assert not get_app("adpredictor").sp_tolerant

    def test_others_tolerate_single(self):
        for name in ("nbody", "kmeans", "rush_larsen", "bezier"):
            assert get_app(name).sp_tolerant, name

    def test_fixed_buffers_declared_for_table_apps(self):
        assert "centroids" in get_app("kmeans").fixed_buffers
        assert "wmean" in get_app("adpredictor").fixed_buffers
        assert "ctrl" in get_app("bezier").fixed_buffers

    def test_rush_larsen_is_elementary_function_heavy(self):
        source = get_app("rush_larsen").source
        assert source.count("exp(") >= 40
        assert "pow(" in source

    def test_kmeans_constants_fixed(self):
        # fixed K and D make the distance loops fully unrollable
        source = get_app("kmeans").source
        assert "j < 8" in source and "m < 4" in source
