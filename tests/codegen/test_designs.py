"""Design artifact and code-generation tests.

Built from a real mini-app pushed through extraction + analyses so the
rendered designs carry genuine buffer metadata.
"""

import pytest

from repro.analysis import analyze_data_movement
from repro.analysis.common import LoopPath
from repro.codegen import (
    Design, generate_hip_design, generate_oneapi_design,
    generate_openmp_design,
)
from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast
from repro.meta.unparse import count_loc
from repro.transforms import extract_hotspot, insert_parallel_for
from repro.transforms.fpga_mem import UnsupportedDeviceError, zero_copy_data_transfer
from repro.transforms.gpu_mem import (
    employ_pinned_memory, employ_specialised_math, introduce_shared_mem_buffer,
)

APP = """
int main() {
    int n = ws_int("n");
    double* x = ws_array_double("x", n * 4);
    double* w = ws_array_double("w", 4);
    double* out = ws_array_double("out", n);
    for (int i = 0; i < n * 4; i++) {
        x[i] = rand01();
    }
    for (int i = 0; i < n; i++) {
        double s = 0.0;
        for (int j = 0; j < 4; j++) {
            s += sqrtf(x[i * 4 + j]) * w[j];
        }
        out[i] = s;
    }
    return 0;
}
"""

REF_LOC = count_loc(APP)


@pytest.fixture
def prepared():
    ast = Ast(APP)
    extraction = extract_hotspot(ast, LoopPath("main", 1), "hot")
    movement = analyze_data_movement(ast, Workload(scalars={"n": 32}), "hot")
    return ast, extraction, movement


def test_openmp_design_render(prepared):
    ast, extraction, movement = prepared
    design = generate_openmp_design("toy", ast.clone(), extraction,
                                    movement, REF_LOC)
    insert_parallel_for(design.ast, "hot")
    text = design.render()
    assert "#include <omp.h>" in text
    assert "#pragma omp parallel for" in text
    assert design.loc_delta > 0
    assert design.loc_delta < 12  # OpenMP designs stay lean


class TestHIPDesign:
    @pytest.fixture
    def design(self, prepared):
        ast, extraction, movement = prepared
        return generate_hip_design("toy", ast.clone(), extraction,
                                   movement, REF_LOC)

    def test_kernel_thread_mapping(self, design):
        text = design.render()
        assert "__global__ void hot_gpu(" in text
        assert "blockIdx.x * blockDim.x + threadIdx.x" in text
        assert "if (!(i < n)) return;" in text

    def test_host_wrapper_transfers_by_direction(self, design):
        text = design.render()
        assert "hipMalloc" in text
        assert "hipMemcpy(d_x, x" in text            # input copied in
        assert "hipMemcpy(out, d_out" in text        # output copied back
        assert "hipMemcpy(d_out, out" not in text    # pure output not copied in
        assert "hipLaunchKernelGGL" in text
        assert "hipFree" in text

    def test_buffer_size_macros(self, design):
        text = design.render()
        assert "#define N_X 128" in text     # n*4 elements at n=32
        assert "#define N_OUT 32" in text

    def test_pinned_memory_section(self, design):
        employ_pinned_memory(design)
        text = design.render()
        assert "hipHostRegister" in text
        assert "hipHostUnregister" in text

    def test_intrinsics_rewrite(self, design):
        count = employ_specialised_math(design)
        assert count == 1
        assert "__fsqrt_rn(" in design.render()
        assert design.metadata["intrinsics"]

    def test_shared_buffering_detects_candidate(self, design):
        # w[j] is indexed only by the inner variable: stageable
        assert introduce_shared_mem_buffer(design)
        assert design.metadata["shared_tile"] == "tile_w"
        assert "__shared__" in design.render()

    def test_plain_kernel_stays_in_design(self, design):
        # the original app's main survives; the plain kernel is replaced
        text = design.render()
        assert "int main()" in text
        assert text.count("void hot(") == 1

    def test_clone_is_independent(self, design):
        dup = design.clone()
        dup.metadata["blocksize"] = 999
        assert design.metadata["blocksize"] != 999
        dup.ast.function("hot").name = "renamed"
        assert design.ast.has_function("hot")


class TestOneAPIDesign:
    @pytest.fixture
    def design(self, prepared):
        ast, extraction, movement = prepared
        return generate_oneapi_design("toy", ast.clone(), extraction,
                                      movement, REF_LOC)

    def test_buffer_style_render(self, design):
        text = design.render()
        assert "sycl::queue" in text
        assert "sycl::buffer<double, 1> buf_x" in text
        assert "single_task<class HotKernel>" in text
        assert "sycl::access::mode::read" in text
        assert "sycl::access::mode::write" in text

    def test_zero_copy_render(self, design):
        design.device = "stratix10"
        zero_copy_data_transfer(design)
        text = design.render()
        assert "malloc_host" in text
        assert "usm_host_allocations" in text
        assert "sycl::free" in text

    def test_zero_copy_rejected_on_arria10(self, design):
        design.device = "arria10"
        with pytest.raises(UnsupportedDeviceError):
            zero_copy_data_transfer(design)

    def test_usm_style_longer_than_buffer_style(self, design):
        buffer_loc = design.loc
        usm = design.clone()
        usm.device = "stratix10"
        zero_copy_data_transfer(usm)
        assert usm.loc > buffer_loc

    def test_unknown_kind_rejected(self, prepared):
        ast, extraction, movement = prepared
        design = generate_oneapi_design("toy", ast.clone(), extraction,
                                        movement, REF_LOC)
        design.kind = "weird"
        with pytest.raises(ValueError):
            design.render()


def test_loc_delta_pct(prepared):
    ast, extraction, movement = prepared
    design = generate_hip_design("toy", ast.clone(), extraction,
                                 movement, REF_LOC)
    assert design.loc_delta_pct == pytest.approx(
        100.0 * design.loc_delta / REF_LOC)
