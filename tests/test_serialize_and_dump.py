"""Flow-result serialization and AST dumper tests."""

import json

import pytest

from repro.flow.serialize import (
    design_to_dict, dump_result, dumps_result, result_to_dict,
)
from repro.meta import Ast
from repro.meta.dump import dump


class TestSerialize:
    def test_round_trips_through_json(self, kmeans_uninformed):
        text = dumps_result(kmeans_uninformed)
        data = json.loads(text)
        assert data["app"] == "kmeans"
        assert data["mode"] == "uninformed"
        assert len(data["designs"]) == 5

    def test_design_fields(self, kmeans_uninformed):
        data = result_to_dict(kmeans_uninformed)
        omp = [d for d in data["designs"]
               if d["metadata"]["device_label"] == "omp"][0]
        assert omp["synthesizable"] is True
        assert omp["speedup"] > 1
        assert omp["loc_delta_pct"] > 0
        assert any(b["name"] == "points" for b in omp["buffers"])

    def test_hls_report_serialized(self, kmeans_uninformed):
        data = result_to_dict(kmeans_uninformed)
        s10 = [d for d in data["designs"]
               if d["metadata"]["device_label"] == "oneapi-s10"][0]
        report = s10["metadata"]["hls_report"]
        assert report["device"] == "stratix10"
        assert report["fitted"] is True
        assert 0 < report["alm_utilization"] < 1

    def test_decisions_and_profile(self, kmeans_informed):
        data = result_to_dict(kmeans_informed)
        assert data["decisions"]["psa:A"]["selected"] == ["omp"]
        assert data["kernel_profile"]["outer_parallel"] is True
        assert data["selected_target"] == "omp"

    def test_sources_optional(self, kmeans_informed):
        without = result_to_dict(kmeans_informed)
        with_src = result_to_dict(kmeans_informed, include_sources=True)
        assert "source" not in without["designs"][0]
        assert "#pragma omp parallel for" in with_src["designs"][0]["source"]

    def test_dump_to_file(self, tmp_path, kmeans_informed):
        path = str(tmp_path / "result.json")
        dump_result(kmeans_informed, path)
        data = json.loads(open(path).read())
        assert data["app"] == "kmeans"


class TestDump:
    SOURCE = """
    int main() {
        double s = 0.0;
        #pragma unroll 4
        for (int i = 0; i < 4; i++) {
            s += sqrt(1.0 * i);
        }
        return (int)s;
    }
    """

    def test_structure(self):
        text = dump(Ast(self.SOURCE).unit)
        lines = text.splitlines()
        assert lines[0] == "TranslationUnit"
        assert any("FunctionDecl main() -> int" in l for l in lines)
        assert any("ForStmt var=i" in l for l in lines)
        assert any("Call sqrt(...)" in l for l in lines)
        assert any("#pragma unroll 4" in l for l in lines)

    def test_indentation_reflects_nesting(self):
        text = dump(Ast(self.SOURCE).unit)
        fn_line = [l for l in text.splitlines() if "FunctionDecl" in l][0]
        for_line = [l for l in text.splitlines() if "ForStmt" in l][0]
        assert len(for_line) - len(for_line.lstrip()) \
            > len(fn_line) - len(fn_line.lstrip())

    def test_max_depth_elides(self):
        text = dump(Ast(self.SOURCE).unit, max_depth=1)
        assert "..." in text
        assert "ForStmt" not in text

    def test_expression_annotations(self):
        text = dump(Ast("int main() { return 1 + 2 * 3; }").unit)
        assert "BinaryOp +" in text
        assert "BinaryOp *" in text
        assert "IntLit 3" in text
