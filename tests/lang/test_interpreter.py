"""Interpreter semantics tests: the UHL subset must behave like C."""

import math
import threading

import pytest

from repro.lang.interpreter import (
    ExecLimitExceeded, Interpreter, RuntimeFault, Workload,
)
from repro.meta.ast_api import Ast


def run(source, workload=None, entry="main", max_steps=None):
    return Ast(source).execute(workload, entry=entry, max_steps=max_steps)


def returns(expr_text, prelude="", workload=None):
    source = f"double main() {{ {prelude} return {expr_text}; }}"
    return run(source, workload).return_value


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        assert returns("7 / 2") == 3
        assert returns("(0 - 7) / 2") == -3
        assert returns("7 / (0 - 2)") == -3

    def test_integer_modulo_c_semantics(self):
        assert returns("7 % 3") == 1
        assert returns("(0 - 7) % 3") == -1  # C: sign follows dividend

    def test_division_by_zero_int_faults(self):
        with pytest.raises(RuntimeFault):
            returns("1 / 0")

    def test_float_division_by_zero_gives_inf(self):
        assert returns("1.0 / 0.0") == math.inf
        assert returns("(0.0 - 1.0) / 0.0") == -math.inf

    def test_mixed_int_float_promotes(self):
        assert returns("3 / 2.0") == 1.5

    def test_comparison_yields_int(self):
        assert returns("2 < 3") == 1
        assert returns("2 > 3") == 0

    def test_short_circuit_and(self):
        # RHS would fault (div by zero) if evaluated
        assert returns("0 && (1 / 0)") == 0

    def test_short_circuit_or(self):
        assert returns("1 || (1 / 0)") == 1

    def test_ternary(self):
        assert returns("5 > 2 ? 10 : 20") == 10

    def test_unary_not(self):
        assert returns("!0") == 1
        assert returns("!3") == 0

    def test_cast_truncates(self):
        assert returns("(int)2.9") == 2
        assert returns("(int)(0.0 - 2.9)") == -2

    def test_cast_to_float(self):
        assert returns("(double)3") == 3.0


class TestVariablesAndScope:
    def test_declaration_default_zero(self):
        assert returns("x", prelude="double x;") == 0.0
        assert returns("y", prelude="int y;") == 0

    def test_assignment_preserves_int_storage(self):
        # int variable assigned a float truncates like C
        assert returns("i", prelude="int i = 0; i = 2.7;") == 2

    def test_block_scoping_shadows(self):
        source = """
        int main() {
            int x = 1;
            {
                int x = 2;
                x = x + 1;
            }
            return x;
        }
        """
        assert run(source).return_value == 1

    def test_compound_assignment(self):
        assert returns("x", prelude="double x = 2.0; x *= 3.0; x += 1.0;") == 7.0

    def test_incr_decr(self):
        source = """
        int main() {
            int i = 5;
            int a = i++;
            int b = ++i;
            return a * 100 + b * 10 + i;
        }
        """
        assert run(source).return_value == 5 * 100 + 7 * 10 + 7

    def test_undefined_variable_faults(self):
        with pytest.raises(RuntimeFault):
            returns("nope")

    def test_global_variables(self):
        source = """
        int counter = 10;
        int bump() { counter = counter + 1; return counter; }
        int main() { bump(); bump(); return counter; }
        """
        assert run(source).return_value == 12


class TestControlFlow:
    def test_for_loop_sum(self):
        source = """
        int main() {
            int s = 0;
            for (int i = 1; i <= 10; i++) s += i;
            return s;
        }
        """
        assert run(source).return_value == 55

    def test_while_and_break(self):
        source = """
        int main() {
            int i = 0;
            while (1) {
                i++;
                if (i == 7) break;
            }
            return i;
        }
        """
        assert run(source).return_value == 7

    def test_continue_skips(self):
        source = """
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 2 == 1) continue;
                s += i;
            }
            return s;
        }
        """
        assert run(source).return_value == 0 + 2 + 4 + 6 + 8

    def test_do_while_runs_once(self):
        source = """
        int main() {
            int i = 100;
            do { i++; } while (i < 5);
            return i;
        }
        """
        assert run(source).return_value == 101

    def test_nested_break_only_inner(self):
        source = """
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 100; j++) {
                    if (j == 2) break;
                    s++;
                }
            }
            return s;
        }
        """
        assert run(source).return_value == 6

    def test_step_limit(self):
        with pytest.raises(ExecLimitExceeded):
            run("int main() { while (1) { } return 0; }", max_steps=10_000)


class TestConcurrency:
    def test_concurrent_runs_keep_return_values_isolated(self):
        # regression: the control-flow signal exceptions were once
        # module-level singletons, so two interpreter runs on different
        # threads (the service's thread-pool scheduler does this) raced
        # on _Return.value and could return the wrong function's value
        source = """
        int ident(int x) { return x; }
        int main() {
            int k = ws_int("k");
            int acc = 0;
            for (int i = 0; i < 2000; i++) {
                acc = ident(k);
            }
            return acc;
        }
        """
        unit = Ast(source).unit
        results = {}
        errors = []

        def worker(k):
            try:
                report = Interpreter(
                    unit, Workload(scalars={"k": k})).run("main")
                results[k] = report.return_value
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert results == {k: k for k in range(8)}


class TestPointersAndArrays:
    def test_local_array_store_load(self):
        source = """
        int main() {
            double a[4];
            for (int i = 0; i < 4; i++) a[i] = i * 2.0;
            return (int)(a[3]);
        }
        """
        assert run(source).return_value == 6

    def test_array_decays_to_pointer_argument(self):
        source = """
        void fill(int* a, int n) { for (int i = 0; i < n; i++) a[i] = i; }
        int main() {
            int buf[5];
            fill(buf, 5);
            return buf[4];
        }
        """
        assert run(source).return_value == 4

    def test_pointer_arithmetic(self):
        source = """
        int main() {
            int a[5];
            a[3] = 42;
            int* p = a + 3;
            return *p;
        }
        """
        assert run(source).return_value == 42

    def test_pointer_difference(self):
        source = """
        int main() {
            double a[10];
            double* p = a + 7;
            double* q = a + 2;
            return p - q;
        }
        """
        assert run(source).return_value == 5

    def test_int_array_coerces_stored_floats(self):
        source = """
        int main() {
            int a[1];
            a[0] = 2.9;
            return a[0];
        }
        """
        assert run(source).return_value == 2

    def test_out_of_bounds_read_faults(self):
        with pytest.raises(RuntimeFault):
            run("int main() { int a[2]; return a[5]; }")

    def test_negative_store_faults(self):
        with pytest.raises(RuntimeFault):
            run("int main() { int a[2]; a[0 - 1] = 1; return 0; }")

    def test_aliased_pointers_share_memory(self):
        source = """
        int main() {
            int a[4];
            int* p = a;
            int* q = a + 1;
            p[1] = 9;
            return q[0];
        }
        """
        assert run(source).return_value == 9


class TestFunctions:
    def test_recursion(self):
        source = """
        int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
        int main() { return fact(6); }
        """
        assert run(source).return_value == 720

    def test_scalar_args_by_value(self):
        source = """
        void mutate(int x) { x = 99; }
        int main() { int y = 1; mutate(y); return y; }
        """
        assert run(source).return_value == 1

    def test_arg_count_mismatch_faults(self):
        with pytest.raises(RuntimeFault):
            run("void f(int a) { }\nint main() { f(1, 2); return 0; }")

    def test_param_conversion(self):
        source = """
        int trunc2(int v) { return v; }
        int main() { return trunc2(3.9); }
        """
        assert run(source).return_value == 3

    def test_unknown_function_faults(self):
        with pytest.raises(RuntimeFault):
            run("int main() { return mystery(); }")

    def test_void_return(self):
        source = "void f() { return; }\nint main() { f(); return 1; }"
        assert run(source).return_value == 1


class TestBuiltins:
    def test_math_functions(self):
        assert returns("sqrt(9.0)") == 3.0
        assert abs(returns("exp(0.0)") - 1.0) < 1e-12
        assert abs(returns("erfc(0.0)") - 1.0) < 1e-12

    def test_sqrt_negative_is_nan(self):
        assert math.isnan(returns("sqrt(0.0 - 1.0)"))

    def test_fmin_fmax(self):
        assert returns("fmax(2.0, 5.0)") == 5.0
        assert returns("fmin(2.0, 5.0)") == 2.0

    def test_printf_formats(self):
        source = 'int main() { printf("v=%d f=%g\\n", 3, 0.5); return 0; }'
        assert run(source).output_text() == "v=3 f=0.5\n"

    def test_rand01_deterministic(self):
        source = "double main() { return rand01(); }"
        assert run(source).return_value == run(source).return_value

    def test_workload_scalars_and_arrays(self):
        source = """
        int main() {
            int n = ws_int("n");
            double* buf = ws_array_double("buf", n);
            for (int i = 0; i < n; i++) buf[i] = i + ws_double("bias");
            return n;
        }
        """
        wl = Workload(scalars={"n": 4, "bias": 0.5})
        report = run(source, wl)
        assert report.return_value == 4
        assert wl.result("buf") == [0.5, 1.5, 2.5, 3.5]

    def test_workload_initial_arrays(self):
        source = """
        double main() {
            double* v = ws_array_double("v", 3);
            return v[0] + v[1] + v[2];
        }
        """
        wl = Workload(arrays={"v": [1.0, 2.0, 3.0]})
        assert run(source, wl).return_value == 6.0

    def test_workload_missing_scalar_faults(self):
        with pytest.raises(RuntimeFault):
            run('int main() { return ws_int("missing"); }', Workload())

    def test_workload_size_mismatch_faults(self):
        source = 'int main() { ws_array_double("v", 5); return 0; }'
        with pytest.raises(RuntimeFault):
            run(source, Workload(arrays={"v": [1.0, 2.0]}))

    def test_timer_requires_start(self):
        with pytest.raises(RuntimeFault):
            run('int main() { timer_stop("t"); return 0; }')
