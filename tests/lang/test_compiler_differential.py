"""Differential tests: the closure compiler vs the tree-walking
interpreter must be observationally identical.

Every test executes the same unit under both engines and asserts the
full observable surface matches: virtual clock, event counters, loop
profiles, timers, array-access records, pointer events (modulo the
process-global array-id counter, compared in dense-renumbered form),
stdout, return value and post-run workload buffers.
"""

import pytest

from repro.analysis.profile import normalized_pointer_events
from repro.apps import ALL_APPS, get_app
from repro.lang.compiler import compile_unit
from repro.lang.interpreter import Interpreter, RuntimeFault, Workload
from repro.meta.ast_api import Ast


def counter_dict(report):
    return report.global_counter.as_dict()


def loop_dict(report):
    return {nid: (p.entries, tuple(p.trip_counts), p.inclusive.as_dict())
            for nid, p in report.loop_profiles.items()}


def access_dict(report):
    return {fn: {name: (r.nbytes, r.elem_size, r.reads, r.writes,
                        r.read_before_write)
                 for name, r in recs.items()}
            for fn, recs in report.fn_array_access.items()}


def run_both(source, workload_factory=Workload, entry="main"):
    """One parse, two engines, full observable comparison."""
    unit = Ast(source).unit
    wa = workload_factory()
    wb = workload_factory()
    ra = Interpreter(unit, wa).run(entry)
    rb = compile_unit(unit).run(wb, entry)  # raises if not compilable
    assert counter_dict(ra) == counter_dict(rb)
    assert ra.total_cycles() == rb.total_cycles()
    assert loop_dict(ra) == loop_dict(rb)
    assert ra.timers == rb.timers
    assert access_dict(ra) == access_dict(rb)
    assert normalized_pointer_events(ra) == normalized_pointer_events(rb)
    assert ra.stdout == rb.stdout
    assert repr(ra.return_value) == repr(rb.return_value)  # -0.0 vs 0.0
    assert set(wa._buffers) == set(wb._buffers)
    for name in wa._buffers:
        assert wa.result(name) == wb.result(name)
    return ra, rb


class TestScalarAndControlFlow:
    def test_arithmetic_casts_ternary(self):
        run_both("""
            int main() {
                int a = 7;
                double x = 2.5;
                double y = (double)a / x + (a % 3) * 1.5;
                int t = a > 5 ? (int)y : a - 1;
                double z = (a > 0 && x > 2.0) ? y * 2.0 : -y;
                printf("%g %d %g\\n", y, t, z);
                return t;
            }
        """)

    def test_loops_break_continue_return(self):
        run_both("""
            int helper(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 3 == 0) { continue; }
                    if (i > 17) { break; }
                    s += i;
                }
                return s;
            }
            int main() {
                int acc = 0;
                int i = 0;
                while (i < 5) {
                    acc += helper(i * 6);
                    i++;
                }
                do {
                    acc -= 1;
                    i--;
                } while (i > 0);
                printf("acc=%d\\n", acc);
                return acc;
            }
        """)

    def test_float_edge_cases(self):
        ra, rb = run_both("""
            double main() {
                double inf = 1.0 / 0.0;
                double ninf = (0.0 - 1.0) / 0.0;
                double r = sqrt(2.0) + fabs(0.0 - 3.5) + floor(2.9);
                printf("%g %g %g\\n", inf, ninf, r);
                return r;
            }
        """)
        assert ra.return_value == rb.return_value

    def test_runtime_fault_message_parity(self):
        source = "int main() { int x = 5; return x / (x - x); }"
        unit = Ast(source).unit
        with pytest.raises(RuntimeFault) as ei:
            Interpreter(unit, Workload()).run("main")
        with pytest.raises(RuntimeFault) as ec:
            compile_unit(unit).run(Workload(), "main")
        assert str(ei.value) == str(ec.value)


class TestPointersAndArrays:
    def test_pointer_arith_and_local_arrays(self):
        run_both("""
            double sum3(const double* p) {
                return p[0] + p[1] + p[2];
            }
            int main() {
                double buf[9];
                for (int i = 0; i < 9; i++) {
                    buf[i] = (double)i * 1.25;
                }
                double s = 0.0;
                for (int j = 0; j < 3; j++) {
                    s += sum3(buf + j * 3);
                }
                printf("s=%g\\n", s);
                return 0;
            }
        """)

    def test_workload_buffers_and_aliasing(self):
        def wl():
            return Workload(scalars={"n": 12},
                            arrays={"x": [float(i) for i in range(12)]})
        run_both("""
            void axpy(int n, const double* x, double* y) {
                for (int i = 0; i < n; i++) {
                    y[i] = y[i] + 2.0 * x[i];
                }
            }
            int main() {
                int n = ws_int("n");
                double* x = ws_array_double("x", n);
                double* y = ws_array_double("y", n);
                axpy(n, x, y);
                axpy(n, x, x);
                return 0;
            }
        """, wl)

    def test_rand01_sequences_match(self):
        run_both("""
            int main() {
                double s = 0.0;
                for (int i = 0; i < 50; i++) {
                    s = s + rand01();
                }
                printf("%g\\n", s);
                return 0;
            }
        """)


class TestTimers:
    def test_timer_wrapped_loops(self):
        ra, rb = run_both("""
            int main() {
                double acc = 0.0;
                timer_start("outer");
                for (int i = 0; i < 30; i++) {
                    for (int j = 0; j < 10; j++) {
                        acc = acc + (double)(i * j) * 0.5;
                    }
                }
                timer_stop("outer");
                printf("%g\\n", acc);
                return 0;
            }
        """)
        assert ra.timer("outer") > 0

    def test_timer_bearing_call_in_assignment(self):
        # hotspot instrumentation pattern: kernel wrapped with timers,
        # its result assigned in the caller
        run_both("""
            double kernel(int n) {
                timer_start("k");
                double s = 0.0;
                for (int i = 0; i < n; i++) {
                    s = s + sqrt((double)i);
                }
                timer_stop("k");
                return s;
            }
            int main() {
                double total = 0.0;
                for (int r = 0; r < 4; r++) {
                    int n = 25 + r;
                    double part = kernel(n);
                    total = total + part;
                }
                printf("%g\\n", total);
                return 0;
            }
        """)


class TestFastpath:
    SOURCE = """
        int main() {
            int n = ws_int("n");
            double* a = ws_array_double("a", n);
            double* b = ws_array_double("b", n);
            for (int i = 0; i < n; i++) {
                a[i] = (double)i * 0.5 + 1.0;
            }
            for (int i = 0; i < n; i++) {
                b[i] = a[i] * 2.0 + sqrt(a[i]);
            }
            double last = b[n - 1];
            printf("%g\\n", last);
            return 0;
        }
    """

    def wl(self):
        return Workload(scalars={"n": 200})

    def test_fastpath_on_matches_interpreter(self):
        run_both(self.SOURCE, self.wl)

    def test_fastpath_off_matches_interpreter(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        run_both(self.SOURCE, self.wl)


class TestApps:
    """Every benchmark app, plain and hotspot-instrumented."""

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_app_identical(self, name):
        app = get_app(name)
        run_both(app.source, app.workload_factory)

    def test_instrumented_app_identical(self):
        from repro.analysis.common import loop_path
        from repro.meta.instrument import wrap_around

        app = get_app("bezier")
        ast = Ast(app.source)
        instrumented = ast.clone()
        for loop in instrumented.outermost_loops("main"):
            timer = str(loop_path(loop))
            wrap_around(loop, prologue=[f'timer_start("{timer}");'],
                        epilogue=[f'timer_stop("{timer}");'])
        ra, rb = run_both(instrumented.source, app.workload_factory)
        assert ra.timers and ra.timers == rb.timers


class TestFlowResultsIdentical:
    """The inputs of Fig. 5 / Table I / Fig. 6 -- informed and
    uninformed flow results at evaluation scale -- are identical under
    both engines.  The three figures are deterministic functions of
    these results, so their rendered outputs match too."""

    _interp_runner = None

    @classmethod
    def interp_runner(cls):
        if cls._interp_runner is None:
            from repro.evalharness.runner import EvaluationRunner
            cls._interp_runner = EvaluationRunner()
        return cls._interp_runner

    def _design_view(self, result):
        return [(d.label, d.synthesizable, d.predicted_time_s, d.speedup,
                 d.loc_delta_pct, d.failure_reason)
                for d in result.designs]

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_flows_identical(self, app, runner, monkeypatch):
        # compute (or fetch memoized) compiled-engine results first,
        # under the default engine ...
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        compiled = {mode: getattr(runner, mode)(app)
                    for mode in ("informed", "uninformed")}
        # ... then the same flows under the interpreter
        monkeypatch.setenv("REPRO_EXEC", "interp")
        for mode in ("informed", "uninformed"):
            interp = getattr(self.interp_runner(), mode)(app)
            assert (self._design_view(compiled[mode])
                    == self._design_view(interp)), (app, mode)
