"""ArrayValue / PointerValue unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.lang.values import ArrayValue, PointerValue, truthy
from repro.meta.ast_nodes import CType


class TestArrayValue:
    def test_float_fill(self):
        arr = ArrayValue(4, CType("double"))
        assert arr.data == [0.0, 0.0, 0.0, 0.0]
        assert isinstance(arr.data[0], float)

    def test_int_fill(self):
        arr = ArrayValue(3, CType("int"))
        assert arr.data == [0, 0, 0]

    def test_nbytes(self):
        assert ArrayValue(10, CType("double")).nbytes == 80
        assert ArrayValue(10, CType("float")).nbytes == 40
        assert ArrayValue(10, CType("int")).nbytes == 40

    def test_coerce(self):
        assert ArrayValue(1, CType("int")).coerce(2.9) == 2
        assert ArrayValue(1, CType("double")).coerce(3) == 3.0

    def test_from_values(self):
        arr = ArrayValue.from_values([1, 2, 3], CType("double"))
        assert arr.data == [1.0, 2.0, 3.0]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ArrayValue(-1, CType("int"))

    def test_unique_ids(self):
        a = ArrayValue(1, CType("int"))
        b = ArrayValue(1, CType("int"))
        assert a.array_id != b.array_id

    def test_local_flag_default(self):
        assert not ArrayValue(1, CType("int")).is_local
        assert ArrayValue(1, CType("int"), is_local=True).is_local


class TestPointerValue:
    def test_load_store_with_offset(self):
        arr = ArrayValue(5, CType("double"))
        ptr = PointerValue(arr, 2)
        ptr.store(1, 7.5)
        assert arr.data[3] == 7.5
        assert ptr.load(1) == 7.5

    def test_add(self):
        arr = ArrayValue(5, CType("int"))
        assert PointerValue(arr, 1).add(2).offset == 3

    def test_extent(self):
        arr = ArrayValue(8, CType("int"))
        assert PointerValue(arr, 3).extent() == 5

    @given(st.integers(0, 9), st.integers(0, 9))
    def test_overlap_symmetry(self, off_a, off_b):
        arr = ArrayValue(10, CType("int"))
        pa, pb = PointerValue(arr, off_a), PointerValue(arr, off_b)
        assert pa.overlaps(pb) == pb.overlaps(pa)
        assert pa.overlaps(pa)  # any in-bounds pointer overlaps itself

    def test_no_overlap_between_arrays(self):
        a = PointerValue(ArrayValue(10, CType("int")))
        b = PointerValue(ArrayValue(10, CType("int")))
        assert not a.overlaps(b)

    def test_end_pointer_overlaps_nothing(self):
        arr = ArrayValue(4, CType("int"))
        end = PointerValue(arr, 4)
        assert not end.overlaps(PointerValue(arr, 0))


class TestTruthy:
    def test_scalars(self):
        assert truthy(1) and truthy(0.5) and not truthy(0) and not truthy(0.0)

    def test_pointer_truthy_none_falsy(self):
        assert truthy(PointerValue(ArrayValue(1, CType("int"))))
        assert not truthy(None)

    def test_bad_value(self):
        with pytest.raises(TypeError):
            truthy(object())
