"""Unit tests for :mod:`repro.lang.batch` -- grids, plans, results."""

import numpy as np
import pytest

from repro.lang import batch
from repro.lang.batch import BatchPlan, ParamGrid, SweepResult


class TestParamGrid:
    def test_geometry(self):
        grid = ParamGrid(factor=(2, 4, 8), device=("a10", "s10"))
        assert grid.names == ("factor", "device")
        assert grid.shape == (3, 2)
        assert grid.size == 6
        assert grid.values("factor") == (2, 4, 8)
        assert grid.axis_index("device") == 1

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ParamGrid(factor=())
        with pytest.raises(ValueError):
            ParamGrid()

    def test_mesh_broadcasts_along_own_axis(self):
        grid = ParamGrid(a=(1, 2, 3), b=(10, 20))
        assert batch._np is not None
        assert grid.mesh("a").shape == (3, 1)
        assert grid.mesh("b").shape == (1, 2)
        full = grid.mesh("a") + grid.mesh("b")
        assert full.shape == (3, 2)
        assert full[2, 1] == 23

    def test_points_iterate_c_order(self):
        grid = ParamGrid(a=(1, 2), b=("x", "y"))
        points = list(grid.points())
        assert [idx for idx, _ in points] == [
            (0, 0), (0, 1), (1, 0), (1, 1)]
        assert points[2][1] == {"a": 2, "b": "x"}
        assert grid.point((1, 1)) == {"a": 2, "b": "y"}

    def test_space_hash_deterministic_and_sensitive(self):
        g1 = ParamGrid(factor=(2, 4, 8))
        g2 = ParamGrid(factor=(2, 4, 8))
        g3 = ParamGrid(factor=(2, 4, 16))
        assert g1.space_hash() == g2.space_hash()
        assert g1.space_hash() != g3.space_hash()
        assert g1.space_hash(extra="a") != g1.space_hash(extra="b")


class TestSweepResult:
    def grid(self):
        return ParamGrid(f=(1, 2, 3, 4))

    def test_set_broadcasts_scalars(self):
        result = SweepResult(self.grid())
        result.set("x", 5.0)
        assert result.tensor("x").shape == (4,)
        assert "x" in result

    def test_point_extraction(self):
        grid = self.grid()
        result = SweepResult(grid, {"t": np.array([4.0, 3.0, 2.0, 1.0])})
        point = result.point((2,))
        assert point == {"f": 3, "t": 2.0}
        assert isinstance(point["t"], float)

    def test_argmin_first_occurrence(self):
        result = SweepResult(self.grid(),
                             {"t": np.array([2.0, 1.0, 1.0, 3.0])})
        assert result.argmin("t") == (1,)

    def test_argmin_masked(self):
        result = SweepResult(self.grid(),
                             {"t": np.array([2.0, 1.0, 1.0, 3.0])})
        mask = np.array([True, False, False, True])
        assert result.argmin("t", where=mask) == (0,)
        assert result.argmin("t", where=np.zeros(4, dtype=bool)) is None

    def test_argmax(self):
        result = SweepResult(self.grid(),
                             {"t": np.array([2.0, 3.0, 3.0, 1.0])})
        assert result.argmax("t") == (1,)

    def test_first_true(self):
        result = SweepResult(self.grid())
        assert result.first_true(
            np.array([False, False, True, True])) == (2,)
        assert result.first_true(np.zeros(4, dtype=bool)) is None


class TestBatchPlan:
    def test_affine_core(self):
        grid = ParamGrid(f=(2.0, 4.0, 8.0))
        plan = BatchPlan(grid)
        plan.affine("alms", 100.0, f=2.5)
        result = plan.evaluate()
        assert list(result.tensor("alms")) == [105.0, 110.0, 120.0]

    def test_affine_rejects_inexact_coefficients(self):
        plan = BatchPlan(ParamGrid(f=(1, 2)))
        with pytest.raises(ValueError):
            plan.affine("x", float(1 << 53), f=1.0)
        with pytest.raises(ValueError):
            plan.affine("x", float("nan"), f=1.0)

    def test_affine_rejects_unknown_axis(self):
        plan = BatchPlan(ParamGrid(f=(1, 2)))
        with pytest.raises(KeyError):
            plan.affine("x", 0.0, g=1.0)

    def test_vector_metric(self):
        grid = ParamGrid(t=(1, 2, 4))
        plan = BatchPlan(grid)
        plan.vector("inv", lambda g: 1.0 / g.mesh("t"))
        result = plan.evaluate()
        assert list(result.tensor("inv")) == [1.0, 0.5, 0.25]

    def test_residue_numeric_and_mask(self):
        grid = ParamGrid(f=(1, 2, 3))
        plan = BatchPlan(grid, space_key="t1")
        plan.residue("sq", lambda f: float(f * f),
                     where=np.array([True, False, True]))
        result = plan.evaluate()
        out = result.tensor("sq")
        assert out[0] == 1.0 and out[2] == 9.0
        assert out[1] == 0.0          # masked out -> fill value
        assert plan.residue_points == 2

    def test_residue_object_values(self):
        """Residues may return non-numeric values (limiter names)."""
        BatchPlan.clear_residue_cache()
        grid = ParamGrid(f=(1, 2))
        plan = BatchPlan(grid, space_key="t2")
        plan.residue("name", lambda f: f"point-{f}")
        result = plan.evaluate()
        out = result.tensor("name")
        assert out.dtype == object
        assert list(out) == ["point-1", "point-2"]

    def test_residue_cache_hits_across_plans(self):
        BatchPlan.clear_residue_cache()
        calls = []

        def fn(f):
            calls.append(f)
            return float(f)

        grid = ParamGrid(f=(1, 2, 3))
        for _ in range(2):
            plan = BatchPlan(grid, space_key="shared")
            plan.residue("v", fn)
            plan.evaluate()
        assert calls == [1, 2, 3]     # second plan served from cache

    def test_residue_cache_keyed_by_space(self):
        BatchPlan.clear_residue_cache()
        grid = ParamGrid(f=(1,))
        p1 = BatchPlan(grid, space_key="s1")
        p1.residue("v", lambda f: 10.0)
        assert p1.evaluate().tensor("v")[0] == 10.0
        p2 = BatchPlan(grid, space_key="s2")
        p2.residue("v", lambda f: 20.0)
        assert p2.evaluate().tensor("v")[0] == 20.0

    def test_multi_axis_affine(self):
        grid = ParamGrid(f=(1.0, 2.0), g=(10.0, 20.0))
        plan = BatchPlan(grid)
        plan.affine("x", 1.0, f=1.0, g=0.5)
        out = plan.evaluate().tensor("x")
        assert out.shape == (2, 2)
        assert out[1, 1] == 1.0 + 2.0 + 10.0


class TestNativePath:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        assert not batch.native_enabled()
        monkeypatch.setenv("REPRO_NATIVE", "1")
        assert batch.native_enabled()

    def test_native_matches_numpy_or_falls_back(self, monkeypatch):
        """Under REPRO_NATIVE=1 the generated-C core either compiles
        and reproduces the numpy result exactly, or degrades to the
        numpy path -- never an error."""
        monkeypatch.setenv("REPRO_NATIVE", "1")
        grid = ParamGrid(f=tuple(float(2 ** k) for k in range(1, 11)))
        plan = BatchPlan(grid)
        plan.affine("alms", 1234.5, f=17.5)
        native_out = plan.evaluate().tensor("alms")

        monkeypatch.setenv("REPRO_NATIVE", "0")
        plain = BatchPlan(grid)
        plain.affine("alms", 1234.5, f=17.5)
        numpy_out = plain.evaluate().tensor("alms")
        assert np.array_equal(native_out, numpy_out)

    def test_failure_is_permanent_fallback(self, monkeypatch):
        monkeypatch.setattr(batch, "_native_fn", False)
        assert not batch.native_available()
        monkeypatch.setenv("REPRO_NATIVE", "1")
        grid = ParamGrid(f=(2.0, 4.0))
        plan = BatchPlan(grid)
        plan.affine("x", 0.0, f=1.0)
        assert list(plan.evaluate().tensor("x")) == [2.0, 4.0]
