"""Profiler / virtual clock tests."""

import pytest

from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast


def run(source, workload=None):
    ast = Ast(source)
    return ast, ast.execute(workload)


SAXPY = """
void saxpy(double* y, const double* x, double a, int n) {
    for (int i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}

int main() {
    int n = ws_int("n");
    double* x = ws_array_double("x", n);
    double* y = ws_array_double("y", n);
    timer_start("hot");
    saxpy(y, x, 2.0, n);
    timer_stop("hot");
    return 0;
}
"""


class TestCounters:
    def test_flop_count_exact(self):
        # saxpy: 2 FP ops per element (mul + add)
        _, report = run(SAXPY, Workload(scalars={"n": 50}))
        assert report.global_counter.flops == 100

    def test_byte_count_exact(self):
        # per element: load x, load y, store y = 3 * 8 bytes
        _, report = run(SAXPY, Workload(scalars={"n": 50}))
        assert report.global_counter.total_bytes == 50 * 24

    def test_local_arrays_do_not_count_bytes(self):
        source = """
        int main() {
            double tmp[64];
            for (int i = 0; i < 64; i++) tmp[i] = 1.0;
            return 0;
        }
        """
        _, report = run(source)
        assert report.global_counter.total_bytes == 0
        assert report.global_counter.mem_writes == 64  # accesses counted

    def test_builtin_flops_separate(self):
        source = "double main() { return exp(1.0) + 1.0; }"
        _, report = run(source)
        assert report.global_counter.builtin_flops == 16  # exp cost table
        assert report.global_counter.flops == 1

    def test_div_weighted(self):
        source = "double main() { return 1.0 / 3.0; }"
        _, report = run(source)
        assert report.global_counter.flops == 4


class TestLoopProfiles:
    def test_trip_counts_and_nesting(self):
        source = """
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 5; j++) {
                    s += 1;
                }
            }
            return s;
        }
        """
        ast, report = run(source)
        outer, inner = ast.function("main").loops()
        outer_prof = report.loop_profiles[outer.node_id]
        inner_prof = report.loop_profiles[inner.node_id]
        assert outer_prof.entries == 1
        assert outer_prof.trip_counts == [3]
        assert inner_prof.entries == 3
        assert inner_prof.trip_counts == [5, 5, 5]
        assert inner_prof.constant_trips

    def test_inclusive_attribution(self):
        source = """
        int main() {
            double s = 0.0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) {
                    s = s + 1.0;
                }
            }
            return 0;
        }
        """
        ast, report = run(source)
        outer, inner = ast.function("main").loops()
        outer_f = report.loop_profiles[outer.node_id].inclusive.flops
        inner_f = report.loop_profiles[inner.node_id].inclusive.flops
        assert inner_f == 16
        assert outer_f >= inner_f  # inclusive of the nested loop

    def test_callee_work_rolls_into_caller_loop(self):
        source = """
        double work() { return 1.0 + 2.0; }
        int main() {
            for (int i = 0; i < 10; i++) {
                work();
            }
            return 0;
        }
        """
        ast, report = run(source)
        loop = ast.function("main").loops()[0]
        assert report.loop_profiles[loop.node_id].inclusive.flops == 10


class TestTimers:
    def test_timer_measures_region(self):
        _, report = run(SAXPY, Workload(scalars={"n": 30}))
        assert 0 < report.timer("hot") <= report.total_cycles()

    def test_timer_accumulates_across_entries(self):
        source = """
        int main() {
            for (int r = 0; r < 3; r++) {
                timer_start("t");
                double x = 1.0 + 2.0;
                timer_stop("t");
            }
            return 0;
        }
        """
        _, report = run(source)
        assert report.timer("t") > 0

    def test_unknown_timer_is_zero(self):
        _, report = run("int main() { return 0; }")
        assert report.timer("nothing") == 0.0


class TestDataMovementRecords:
    def test_in_out_classification(self):
        _, report = run(SAXPY, Workload(scalars={"n": 10}))
        records = report.arrays_touched_by("saxpy")
        assert records["x"].is_input and not records["x"].is_output
        assert records["y"].is_input and records["y"].is_output

    def test_write_only_buffer(self):
        source = """
        void fill(double* out, int n) {
            for (int i = 0; i < n; i++) out[i] = 1.0;
        }
        int main() {
            double* o = ws_array_double("o", 8);
            fill(o, 8);
            return 0;
        }
        """
        _, report = run(source)
        rec = report.arrays_touched_by("fill")["out"]
        assert rec.is_output and not rec.is_input

    def test_pointer_events_recorded(self):
        _, report = run(SAXPY, Workload(scalars={"n": 10}))
        events = report.calls_of("saxpy")
        assert len(events) == 1
        names = [name for name, *_ in events[0].args]
        assert names == ["y", "x"]
