"""Top-level CLI and report-writer tests."""

import os

import pytest

from repro.__main__ import build_parser, main as cli_main
from repro.evalharness.report import build_report, write_report


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("nbody", "kmeans", "adpredictor", "rush_larsen",
                     "bezier"):
            assert name in out

    def test_run_informed_with_export(self, tmp_path, capsys):
        export = str(tmp_path / "designs")
        assert cli_main(["run", "kmeans", "--mode", "informed",
                         "--export-dir", export, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "informed selection: omp" in out
        assert "[PSA] branch A" in out
        files = os.listdir(export)
        assert files == ["kmeans_omp.cpp"]
        text = open(os.path.join(export, files[0])).read()
        assert "#pragma omp parallel for" in text

    def test_run_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_eval_table2(self, capsys):
        assert cli_main(["eval", "table2"]) == 0
        assert "This Work" in capsys.readouterr().out


class TestReport:
    def test_build_report_contains_all_sections(self, runner):
        text = build_report(runner)
        for heading in ("Fig. 5", "Table I", "Fig. 6", "Energy",
                        "Table II", "Decision traces"):
            assert heading in text
        # per-app traces present
        assert "K-Means (informed)" in text
        assert "branch A" in text

    def test_write_report(self, tmp_path, runner):
        path = str(tmp_path / "report.md")
        write_report(path, runner)
        assert os.path.exists(path)
        assert open(path).read().startswith("# PSA-flow reproduction")


def test_cli_run_json_output(tmp_path, capsys):
    import json

    path = str(tmp_path / "out.json")
    assert cli_main(["run", "kmeans", "--json", path]) == 0
    data = json.loads(open(path).read())
    assert data["selected_target"] == "omp"
    assert data["designs"][0]["speedup"] > 1
