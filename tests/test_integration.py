"""Cross-cutting integration tests: the paper's headline claims, and
functional correctness of every generated design.

The strongest check in the suite: every synthesizable design's kernel
(after extraction, scalarisation, SP demotion, intrinsic rewriting,
unroll pragmas...) is *executed* under the interpreter against the
application workload and compared with the numpy oracle.  The whole
transform pipeline must preserve semantics, per application, per
target, per device.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.registry import PAPER_ORDER


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_every_generated_design_is_functionally_correct(
        app_name, all_uninformed):
    app = get_app(app_name)
    expected = app.oracle(app.workload())
    for design in all_uninformed[app_name].designs:
        workload = app.workload()
        design.ast.execute(workload)
        for buffer_name in app.output_buffers:
            got = np.asarray(workload.result(buffer_name), dtype=float)
            want = np.asarray(expected[buffer_name], dtype=float)
            assert np.allclose(got, want, rtol=1e-9, atol=1e-9), \
                (design.label, buffer_name)


def test_single_source_many_designs(all_uninformed):
    """The abstract's claim: one high-level source, five implementations
    per app, 25 designs total (two unsynthesizable)."""
    designs = [d for result in all_uninformed.values()
               for d in result.designs]
    assert len(designs) == 25
    unsynthesizable = [d for d in designs if not d.synthesizable]
    assert len(unsynthesizable) == 2
    assert all(d.app_name == "rush_larsen" for d in unsynthesizable)


def test_abstract_speedup_bands(all_uninformed):
    """'speedups of up to 30x for OpenMP, 32x for oneAPI CPU+FPGA, and
    779x for HIP CPU+GPU' -- our bands land in the same regime."""
    omp_best = max(r.design("omp").speedup
                   for r in all_uninformed.values())
    fpga_best = max(d.speedup for r in all_uninformed.values()
                    for d in r.designs
                    if d.kind == "fpga-oneapi" and d.synthesizable)
    gpu_best = max(d.speedup for r in all_uninformed.values()
                   for d in r.designs if d.kind == "gpu-hip")
    assert 25 <= omp_best <= 35          # paper: up to 30x
    assert 20 <= fpga_best <= 45         # paper: up to 32x
    assert 400 <= gpu_best <= 1100       # paper: up to 751x/779x

    # the GPU headline comes from N-Body on the 2080 Ti
    nbody = all_uninformed["nbody"]
    assert nbody.design("hip-2080ti").speedup == pytest.approx(gpu_best)


def test_designs_are_human_readable(all_uninformed):
    """§III: 'output implementations are human-readable and can be
    further hand-tuned'.  The kernel-side code of every design must
    re-parse under the same front end (RawStmt host code excluded by
    construction: kernels stay in the UHL subset)."""
    from repro.meta.ast_api import Ast
    from repro.meta.unparse import unparse

    for result in all_uninformed.values():
        for design in result.designs:
            kernel = design.ast.function(design.kernel_name)
            text = unparse(kernel)
            reparsed = Ast(text)
            assert reparsed.has_function(design.kernel_name)


def test_informed_flow_is_strict_subset_of_uninformed(
        all_informed, all_uninformed):
    """Informed mode runs the same flow; its designs must agree exactly
    with the corresponding uninformed designs (same metadata, same
    predicted performance)."""
    for name, informed in all_informed.items():
        for design in informed.designs:
            label = design.metadata.get("device_label")
            twin = all_uninformed[name].design(label)
            assert twin is not None
            if design.synthesizable:
                assert design.speedup == pytest.approx(twin.speedup,
                                                       rel=1e-9)
                assert design.metadata.get("blocksize") == \
                    twin.metadata.get("blocksize")
                assert design.metadata.get("unroll_factor") == \
                    twin.metadata.get("unroll_factor")


def test_flow_runs_are_deterministic():
    """Two independent engine runs produce identical numbers."""
    from repro.flow.engine import FlowEngine

    app = get_app("adpredictor")
    first = FlowEngine().run(app, mode="informed")
    second = FlowEngine().run(app, mode="informed")
    assert first.selected_target == second.selected_target
    assert first.reference_time_s == second.reference_time_s
    assert [d.speedup for d in first.designs] == \
        [d.speedup for d in second.designs]


def test_reference_source_never_mutated(all_uninformed):
    """Flows work on clones; the registered app sources stay pristine."""
    for name in PAPER_ORDER:
        app = get_app(name)
        assert "hotspot_kernel" not in app.source
        assert "#pragma omp" not in app.source
        assert "__acc_" not in app.source
