"""repro.api: the unified facade, its shims, and the shared CLI flags."""

import warnings

import pytest

from repro import api
from repro.__main__ import build_parser
from repro.apps.registry import PAPER_ORDER
from repro.config import ReproConfig
from repro.flow.engine import FlowResult
from repro.flow.serialize import result_to_dict
from repro.service import DesignService


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------

def test_list_apps_paper_order_first():
    names = [app["name"] for app in api.list_apps()]
    assert names[:len(PAPER_ORDER)] == list(PAPER_ORDER)
    assert all({"name", "display_name", "reference_loc",
                "summary"} <= set(app) for app in api.list_apps())


def test_list_modes():
    assert set(api.list_modes()) == {"informed", "uninformed"}


# ----------------------------------------------------------------------
# run_flow / open_service / submit / gather
# ----------------------------------------------------------------------

def test_run_flow_default_config_runs_on_engine(kmeans_informed):
    result = api.run_flow("kmeans", "informed")
    assert isinstance(result, FlowResult)
    assert result_to_dict(result) == result_to_dict(kmeans_informed)


def test_run_flow_through_service_matches_engine(tmp_path,
                                                 kmeans_informed):
    cfg = ReproConfig(cache_dir=str(tmp_path / "cache"))
    via_service = api.run_flow("kmeans", "informed", config=cfg)
    assert result_to_dict(via_service) == result_to_dict(kmeans_informed)
    # and the cache now serves it: a fresh service reads, not runs
    with api.open_service(cfg) as service:
        submission = api.submit(service, "kmeans", "informed")
        assert submission.source == "cache-disk"


def test_open_service_overrides_beat_config(tmp_path):
    cfg = ReproConfig(workers=1)
    with api.open_service(cfg, cache_dir=str(tmp_path)) as service:
        assert service.cache is not None


def test_submit_accepts_jobs_and_names():
    with api.open_service() as service:
        by_name = api.submit(service, "kmeans", "informed")
        by_job = api.submit(service, service.job_for("kmeans", "informed"))
        assert by_name.job.key() == by_job.job.key()
        results = api.gather([by_name, by_job])
        assert result_to_dict(results[0]) == result_to_dict(results[1])


def test_gather_return_exceptions():
    class Boom:
        def result(self, timeout=None):
            raise RuntimeError("boom")

    class Fine:
        def result(self, timeout=None):
            return 42

    with pytest.raises(RuntimeError):
        api.gather([Boom()])
    out = api.gather([Fine(), Boom()], return_exceptions=True)
    assert out[0] == 42 and isinstance(out[1], RuntimeError)


# ----------------------------------------------------------------------
# Deprecation shims: the old import paths still work, but warn
# ----------------------------------------------------------------------

def test_runner_module_shims_warn_and_forward():
    from repro.evalharness import runner as runner_module

    with pytest.warns(DeprecationWarning, match="moved to repro.api"):
        shim = runner_module.shared_runner
    assert shim is api.shared_runner
    with pytest.warns(DeprecationWarning):
        assert runner_module.set_shared_runner is api.set_shared_runner
    with pytest.raises(AttributeError):
        runner_module.does_not_exist


def test_shared_runner_is_process_wide():
    sentinel = object()
    previous = api.set_shared_runner(sentinel)
    try:
        assert api.shared_runner() is sentinel
    finally:
        api.set_shared_runner(previous)


def test_experiment_modules_import_cleanly():
    # the migrated internal callers must not hit the shim
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.evalharness import energy, fig5, fig6, report, table1
        assert all((energy, fig5, fig6, report, table1))


# ----------------------------------------------------------------------
# Uniform CLI flags: one vocabulary across every flow subcommand
# ----------------------------------------------------------------------

SHARED = ["--cache-dir", "/x", "--workers", "3", "--exec", "interp",
          "--retries", "2", "--trace-out", "/t.json",
          "--metrics-out", "/m.prom"]


@pytest.mark.parametrize("argv", [
    ["run", "kmeans"] + SHARED,
    ["eval", "fig5"] + SHARED,
    ["batch", "--all"] + SHARED,
    ["serve"] + SHARED,
    ["config"] + SHARED,
])
def test_every_flow_subcommand_takes_the_shared_flags(argv):
    args = build_parser().parse_args(argv)
    assert args.cache_dir == "/x"
    assert args.workers == 3
    assert args.exec_mode == "interp"
    assert args.retries == 2
    assert args.trace_out == "/t.json"
    assert args.metrics_out == "/m.prom"


def test_batch_jobs_is_an_alias_for_workers():
    args = build_parser().parse_args(["batch", "--all", "--jobs", "4"])
    assert args.workers == 4


def test_eval_and_batch_take_server_url():
    args = build_parser().parse_args(
        ["eval", "fig5", "--server", "http://h:1"])
    assert args.server == "http://h:1"
    args = build_parser().parse_args(
        ["batch", "--all", "--server", "http://h:1"])
    assert args.server == "http://h:1"
