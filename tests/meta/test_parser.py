"""Parser unit tests."""

import pytest

from repro.meta.ast_nodes import (
    Assign, BinaryOp, Call, Cast, CompoundStmt, DeclStmt, DoWhileStmt,
    ExprStmt, FloatLit, ForStmt, FunctionDecl, Ident, IfStmt, Index, IntLit,
    ReturnStmt, Ternary, UnaryOp, WhileStmt,
)
from repro.meta.parser import ParseError, parse, parse_expr, parse_stmt
from repro.meta.unparse import unparse_expr


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.rhs, BinaryOp) and expr.rhs.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.lhs, BinaryOp) and expr.lhs.op == "-"
        assert expr.rhs.name == "c"

    def test_comparison_below_arith(self):
        expr = parse_expr("a + 1 < b * 2")
        assert expr.op == "<"

    def test_logical_precedence(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"
        assert expr.lhs.op == "&&"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = c")
        assert isinstance(expr, Assign)
        assert isinstance(expr.value, Assign)

    def test_compound_assignment(self):
        expr = parse_expr("x += y * 2")
        assert isinstance(expr, Assign) and expr.op == "+="

    def test_ternary(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, Ternary)

    def test_nested_ternary_right(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr.els, Ternary)

    def test_unary_minus(self):
        expr = parse_expr("-x * y")
        assert expr.op == "*"
        assert isinstance(expr.lhs, UnaryOp)

    def test_unary_plus_dropped(self):
        expr = parse_expr("+x")
        assert isinstance(expr, Ident)

    def test_prefix_and_postfix_incr(self):
        pre = parse_expr("++i")
        post = parse_expr("i++")
        assert isinstance(pre, UnaryOp) and pre.prefix
        assert isinstance(post, UnaryOp) and not post.prefix

    def test_call_with_args(self):
        expr = parse_expr("f(a, b + 1, g(c))")
        assert isinstance(expr, Call) and len(expr.args) == 3
        assert isinstance(expr.args[2], Call)

    def test_index_chain(self):
        expr = parse_expr("a[i][j]")
        assert isinstance(expr, Index)
        assert isinstance(expr.base, Index)

    def test_cast(self):
        expr = parse_expr("(double)x + 1.0")
        assert expr.op == "+"
        assert isinstance(expr.lhs, Cast)
        assert expr.lhs.ctype.base == "double"

    def test_cast_of_pointer(self):
        expr = parse_expr("(float*)p")
        assert isinstance(expr, Cast) and expr.ctype.pointers == 1

    def test_float_literal_suffix(self):
        expr = parse_expr("1.5f")
        assert isinstance(expr, FloatLit) and expr.is_single

    def test_double_literal(self):
        expr = parse_expr("1.5")
        assert isinstance(expr, FloatLit) and not expr.is_single

    def test_deref_and_address(self):
        expr = parse_expr("*p + 1")
        assert expr.op == "+"
        assert isinstance(expr.lhs, UnaryOp) and expr.lhs.op == "*"

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_expr("a + b c")


class TestStatements:
    def test_decl_multiple(self):
        stmt = parse_stmt("int a = 1, b = 2;")
        assert isinstance(stmt, DeclStmt) and len(stmt.decls) == 2

    def test_array_decl(self):
        stmt = parse_stmt("double buf[16];")
        assert stmt.decls[0].is_array

    def test_for_loop_clauses(self):
        stmt = parse_stmt("for (int i = 0; i < n; i++) x += i;")
        assert isinstance(stmt, ForStmt)
        assert stmt.loop_var() == "i"
        assert isinstance(stmt.body, ExprStmt)

    def test_for_empty_clauses(self):
        stmt = parse_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.inc is None

    def test_while(self):
        stmt = parse_stmt("while (x > 0) x = x - 1;")
        assert isinstance(stmt, WhileStmt)

    def test_do_while(self):
        stmt = parse_stmt("do { x++; } while (x < 10);")
        assert isinstance(stmt, DoWhileStmt)

    def test_if_else(self):
        stmt = parse_stmt("if (a) b = 1; else b = 2;")
        assert isinstance(stmt, IfStmt) and stmt.els is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.els is None
        assert isinstance(stmt.then, IfStmt)
        assert stmt.then.els is not None

    def test_pragma_attaches_to_statement(self):
        stmt = parse_stmt("#pragma unroll 8\nfor (int i = 0; i < 4; i++) ;")
        assert len(stmt.pragmas) == 1
        assert stmt.pragmas[0].text == "unroll 8"
        assert stmt.pragmas[0].keyword == "unroll"

    def test_multiple_pragmas_stack(self):
        stmt = parse_stmt("#pragma unroll\n#pragma ii 1\nwhile (1) break;")
        assert [p.keyword for p in stmt.pragmas] == ["unroll", "ii"]

    def test_return_value(self):
        stmt = parse_stmt("return a + b;")
        assert isinstance(stmt, ReturnStmt) and stmt.expr is not None

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmt("int x = 1")


class TestTopLevel:
    def test_function_and_params(self):
        unit = parse("""
            double f(const double* x, int n) { return x[n]; }
        """)
        fn = unit.function("f")
        assert fn.return_type.base == "double"
        assert fn.params[0].ctype.is_pointer and fn.params[0].ctype.const
        assert fn.params[1].ctype.base == "int"

    def test_prototype(self):
        unit = parse("void f(int x);")
        assert unit.function("f").body is None

    def test_void_param_list(self):
        unit = parse("int main(void) { return 0; }")
        assert unit.function("main").params == []

    def test_array_param_decays(self):
        unit = parse("void f(double a[]) { a[0] = 1.0; }")
        assert unit.function("f").params[0].ctype.is_pointer

    def test_preamble_preserved(self):
        unit = parse("#include <math.h>\nint main() { return 0; }")
        assert unit.preamble == ["#include <math.h>"]

    def test_global_decl(self):
        unit = parse("int counter = 0;\nint main() { return counter; }")
        assert isinstance(unit.decls[0], DeclStmt)

    def test_parent_links_established(self):
        unit = parse("int main() { int x = 1; return x; }")
        for node in unit.walk():
            for child in node.children():
                assert child.parent is node

    def test_unknown_function_lookup(self):
        unit = parse("int main() { return 0; }")
        with pytest.raises(KeyError):
            unit.function("nope")
