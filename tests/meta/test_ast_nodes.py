"""AST node / CType structural tests."""

import pytest

from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    CType, ForStmt, FunctionDecl, Ident, IntLit,
)

SOURCE = """
void knl(double* out, const double* x, int n) {
    for (int i = 0; i < n; i++) {
        double s = 0.0;
        for (int j = 0; j < 4; j++) {
            s += x[i * 4 + j];
        }
        out[i] = s;
    }
}

int main() {
    return 0;
}
"""


@pytest.fixture
def ast():
    return Ast(SOURCE)


class TestCType:
    def test_str(self):
        assert str(CType("double", 1, const=True)) == "const double*"

    def test_sizeof(self):
        assert CType("double").sizeof() == 8
        assert CType("float").sizeof() == 4
        assert CType("int").sizeof() == 4
        assert CType("int", 1).sizeof() == 8  # pointer

    def test_element_type(self):
        assert CType("float", 2).element_type() == CType("float", 1)
        with pytest.raises(ValueError):
            CType("float").element_type()

    def test_classification(self):
        assert CType("double").is_floating
        assert not CType("double", 1).is_floating
        assert CType("int").is_integral
        assert CType("int", 1).is_pointer

    def test_equality_ignores_const(self):
        assert CType("int", 0, const=True) == CType("int")

    def test_unknown_base_rejected(self):
        with pytest.raises(ValueError):
            CType("short")


class TestNavigation:
    def test_walk_visits_all_loops(self, ast):
        loops = [n for n in ast.unit.walk() if isinstance(n, ForStmt)]
        assert len(loops) == 2

    def test_encloses(self, ast):
        fn = ast.function("knl")
        outer, inner = fn.loops()
        assert fn.encloses(outer)
        assert outer.encloses(inner)
        assert not inner.encloses(outer)
        assert not outer.encloses(outer)  # strict

    def test_is_outermost(self, ast):
        outer, inner = ast.function("knl").loops()
        assert outer.is_outermost
        assert not inner.is_outermost

    def test_loop_depth(self, ast):
        outer, inner = ast.function("knl").loops()
        assert outer.depth() == 0
        assert inner.depth() == 1

    def test_loop_var(self, ast):
        outer, inner = ast.function("knl").loops()
        assert outer.loop_var() == "i"
        assert inner.loop_var() == "j"

    def test_enclosing(self, ast):
        _, inner = ast.function("knl").loops()
        assert inner.enclosing(FunctionDecl).name == "knl"

    def test_ancestors_order(self, ast):
        _, inner = ast.function("knl").loops()
        chain = list(inner.ancestors())
        assert isinstance(chain[-1], type(ast.unit))

    def test_outermost_loops_helper(self, ast):
        assert len(ast.function("knl").outermost_loops()) == 1


class TestMutation:
    def test_clone_is_deep_and_reparented(self, ast):
        dup = ast.clone()
        assert dup.source == ast.source
        original_ids = {n.node_id for n in ast.unit.walk()}
        clone_ids = {n.node_id for n in dup.unit.walk()}
        assert original_ids.isdisjoint(clone_ids)
        for node in dup.unit.walk():
            for child in node.children():
                assert child.parent is node

    def test_clone_mutation_isolated(self, ast):
        dup = ast.clone()
        dup.function("knl").name = "other"
        assert ast.has_function("knl")
        assert not ast.has_function("other")

    def test_clone_copies_nodes_inside_containers(self):
        # no current node type keeps child nodes in tuples/dicts/nested
        # lists, but clone() must not silently alias them if one ever
        # does (copy.deepcopy, which clone() replaced, handled any shape)
        root = IntLit(1)
        held = IntLit(2)
        root.extras = (held, {"k": held}, [[held]])
        dup = root.clone()
        in_tuple, mapping, nested = dup.extras
        for copied in (in_tuple, mapping["k"], nested[0][0]):
            assert isinstance(copied, IntLit)
            assert copied.value == 2
            assert copied is not held
            assert copied.node_id != held.node_id

    def test_replace_child(self, ast):
        fn = ast.function("knl")
        outer = fn.loops()[0]
        cond = outer.cond
        new = IntLit(1)
        outer.replace_child(cond, new)
        assert outer.cond is new
        assert new.parent is outer

    def test_replace_child_missing_raises(self, ast):
        fn = ast.function("knl")
        with pytest.raises(ValueError):
            fn.replace_child(IntLit(5), IntLit(6))
