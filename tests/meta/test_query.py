"""Query engine tests, including the Fig. 2 query shape."""

import pytest

from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import Assign, Call, ForStmt, FunctionDecl
from repro.meta.query import (
    Query, calls_in, free_variables, loops_in, outermost_loops, query,
    written_arrays,
)

SOURCE = """
void knl(double* out, const double* x, int n) {
    for (int i = 0; i < n; i++) {
        double s = 0.0;
        for (int j = 0; j < 4; j++) {
            s += sqrt(x[i * 4 + j]);
        }
        out[i] = s;
    }
}

int main() {
    int n = 8;
    double out[8];
    double x[32];
    for (int i = 0; i < 32; i++) {
        x[i] = 1.0;
    }
    knl(out, x, n);
    return 0;
}
"""


@pytest.fixture
def ast():
    return Ast(SOURCE)


def test_fig2_query_outermost_kernel_loops(ast):
    """The exact query of Fig. 2: outermost for-loops in the kernel."""
    matches = (ast.query()
               .row("loop", ForStmt)
               .row("fn", FunctionDecl)
               .where(lambda loop, fn: fn.name == "knl"
                      and fn.encloses(loop)
                      and loop.is_outermost)
               .all())
    assert len(matches) == 1
    assert matches[0].loop.loop_var() == "i"
    assert matches[0].fn.name == "knl"


def test_query_excludes_nested_and_other_functions(ast):
    # nested j-loop and main's loop must not match
    loops = ast.outermost_loops("knl")
    assert len(loops) == 1


def test_query_first_and_count(ast):
    q = Query(ast.unit).row("fn", FunctionDecl)
    assert q.count() == 2
    assert q.first() is not None


def test_query_no_match(ast):
    q = (Query(ast.unit).row("fn", FunctionDecl)
         .where(lambda fn: fn.name == "missing"))
    assert q.all() == []
    assert q.first() is None


def test_one_shot_query_helper(ast):
    matches = query(ast.unit, ("call", Call),
                    where=lambda c: c.name == "knl")
    assert len(matches) == 1


def test_match_attribute_access(ast):
    match = (Query(ast.unit).row("fn", FunctionDecl).first())
    assert match.fn is match["fn"]
    with pytest.raises(AttributeError):
        match.nope


def test_loops_in_and_calls_in(ast):
    fn = ast.function("knl")
    assert len(loops_in(fn)) == 2
    assert [c.name for c in calls_in(fn)] == ["sqrt"]
    assert calls_in(ast.unit, "knl")[0].name == "knl"


def test_free_variables_of_kernel_loop(ast):
    loop = ast.outermost_loops("knl")[0]
    free = free_variables(loop)
    # i, j, s are declared inside the loop; out, x, n come from outside
    assert free == ["n", "x", "out"]


def test_free_variables_respects_declared_param(ast):
    loop = ast.outermost_loops("knl")[0]
    free = free_variables(loop, declared=("n",))
    assert "n" not in free


def test_written_arrays(ast):
    fn = ast.function("knl")
    assert written_arrays(fn) == ["out"]


def test_outermost_loops_helper(ast):
    assert len(outermost_loops(ast.function("main"))) == 1
