"""Unparser tests: readability, round-trip stability, precedence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.meta.ast_api import Ast
from repro.meta.parser import parse_expr, parse_stmt
from repro.meta.unparse import count_loc, unparse, unparse_expr

ROUND_TRIP_SOURCES = [
    "int main() { return 0; }",
    """
    double f(const double* a, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) {
            s += a[i] * a[i];
        }
        return sqrt(s);
    }
    """,
    """
    int main() {
        int x = 3;
        if (x > 2) {
            x = x - 1;
        } else if (x > 1) {
            x = 0;
        } else {
            x = 10;
        }
        while (x < 5)
            x++;
        do {
            x--;
        } while (x > 0);
        return x;
    }
    """,
    """
    void k(float* y, const float* x, int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            y[i] = x[i] > 0.0f ? x[i] : -x[i];
        }
    }
    """,
]


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip_fixed_point(source):
    """unparse(parse(unparse(parse(s)))) == unparse(parse(s))."""
    once = Ast(source).source
    twice = Ast(once).source
    assert once == twice


EXPRESSIONS = [
    "a + b * c",
    "(a + b) * c",
    "a - (b - c)",
    "-(a + b)",
    "a / b / c",
    "a / (b / c)",
    "x = y = z",
    "a < b && c > d || e == f",
    "!(a && b)",
    "f(a, b + 1)[2]",
    "p[i * 4 + j]",
    "a ? b : c ? d : e",
    "(a ? b : c) * 2",
    "(double)(x + 1)",
    "x += y * (z - 1)",
]


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_expression_semantics_preserved(text):
    """Re-parsing the rendered expression yields the same rendering."""
    rendered = unparse_expr(parse_expr(text))
    assert unparse_expr(parse_expr(rendered)) == rendered


def test_minimal_parentheses():
    assert unparse_expr(parse_expr("a + b * c")) == "a + b * c"
    assert unparse_expr(parse_expr("(a + b) * c")) == "(a + b) * c"
    assert unparse_expr(parse_expr("a - (b + c)")) == "a - (b + c)"


def test_float_spelling_preserved():
    assert unparse_expr(parse_expr("1.5e-3")) == "1.5e-3"
    assert unparse_expr(parse_expr("2.0f")) == "2.0f"


def test_knr_brace_style():
    text = unparse(parse_stmt("for (int i = 0; i < 4; i++) { x += i; }"))
    assert text.splitlines()[0] == "for (int i = 0; i < 4; i++) {"


def test_pragma_printed_before_loop():
    stmt = parse_stmt("#pragma unroll 4\nfor (int i = 0; i < 4; i++) ;")
    lines = unparse(stmt).splitlines()
    assert lines[0] == "#pragma unroll 4"
    assert lines[1].startswith("for")


def test_else_if_chain_stays_flat():
    source = """
    int f(int x) {
        if (x > 2) {
            return 2;
        } else if (x > 1) {
            return 1;
        } else {
            return 0;
        }
    }
    """
    text = Ast(source).source
    assert "} else if (x > 1) {" not in text  # our style: else on own line
    assert "else if (x > 1) {" in text


class TestCountLoc:
    def test_skips_blanks_and_comments(self):
        text = "int x;\n\n// comment\n  // another\ny = 1;\n"
        assert count_loc(text) == 2

    def test_counts_pragmas(self):
        assert count_loc("#pragma omp parallel for\nfor(;;) ;") == 2

    def test_empty(self):
        assert count_loc("") == 0


# -- property-based round trip over generated arithmetic expressions ----

names = st.sampled_from(["a", "b", "c", "x1", "tmp"])
ints = st.integers(min_value=0, max_value=999)


def exprs(depth):
    if depth == 0:
        return st.one_of(names, ints.map(str))
    sub = exprs(depth - 1)
    return st.one_of(
        names,
        ints.map(str),
        st.tuples(sub, st.sampled_from(["+", "-", "*", "/"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"),
        sub.map(lambda e: f"-({e})"),
        st.tuples(sub, sub, sub).map(
            lambda t: f"(({t[0]}) ? ({t[1]}) : ({t[2]}))"),
    )


@settings(max_examples=80, deadline=None)
@given(exprs(3))
def test_expression_round_trip_property(text):
    """Any generated expression re-renders to a fixed point."""
    rendered = unparse_expr(parse_expr(text))
    again = unparse_expr(parse_expr(rendered))
    assert rendered == again
