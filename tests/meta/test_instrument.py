"""Instrumentation primitive tests (the Fig. 2 mechanisms)."""

import pytest

from repro.meta.ast_api import Ast
from repro.meta.instrument import (
    InstrumentError, ensure_braced, get_pragma, insert_after, insert_before,
    insert_pragma, remove_pragma, replace, wrap_around,
)

SOURCE = """
int main() {
    int x = 0;
    for (int i = 0; i < 8; i++) {
        x = x + i;
    }
    return x;
}
"""


@pytest.fixture
def ast():
    return Ast(SOURCE)


def loop_of(ast):
    return ast.outermost_loops("main")[0]


class TestPragmas:
    def test_insert_with_substitution(self, ast):
        insert_pragma(loop_of(ast), "unroll $n", {"n": 4})
        assert "#pragma unroll 4" in ast.source

    def test_same_keyword_replaces(self, ast):
        loop = loop_of(ast)
        insert_pragma(loop, "unroll 2")
        insert_pragma(loop, "unroll 16")
        assert ast.source.count("#pragma unroll") == 1
        assert "#pragma unroll 16" in ast.source

    def test_different_keywords_accumulate(self, ast):
        loop = loop_of(ast)
        insert_pragma(loop, "unroll 2")
        insert_pragma(loop, "ii 1")
        assert len(loop.pragmas) == 2

    def test_get_and_remove(self, ast):
        loop = loop_of(ast)
        insert_pragma(loop, "unroll 8")
        assert get_pragma(loop, "unroll").text == "unroll 8"
        assert remove_pragma(loop, "unroll") == 1
        assert get_pragma(loop, "unroll") is None


class TestInsertion:
    def test_insert_before_and_after(self, ast):
        loop = loop_of(ast)
        insert_before(loop, 'timer_start("t");')
        insert_after(loop, 'timer_stop("t");')
        lines = [l.strip() for l in ast.source.splitlines()]
        start = lines.index('timer_start("t");')
        stop = lines.index('timer_stop("t");')
        assert start < stop
        # the loop header sits between them
        assert any("for (" in l for l in lines[start:stop])

    def test_wrap_around(self, ast):
        loop = loop_of(ast)
        wrap_around(loop, ['timer_start("hot");'], ['timer_stop("hot");'])
        text = ast.source
        assert text.index('timer_start("hot");') < text.index("for (")
        assert text.index("timer_stop") > text.index("for (")
        # still executable
        report = ast.execute()
        assert report.timer("hot") > 0

    def test_replace_keeps_pragmas(self, ast):
        loop = loop_of(ast)
        insert_pragma(loop, "unroll 4")
        new = replace(loop, "x = 42;")
        assert [p.text for p in new.pragmas] == ["unroll 4"]
        assert "for (" not in ast.source

    def test_replace_executes(self, ast):
        replace(loop_of(ast), "x = 42;")
        assert ast.execute().return_value == 42

    def test_insert_into_non_block_raises(self, ast):
        # the loop body's single statement is inside a block, but the
        # loop's init decl is not a block member
        loop = loop_of(ast)
        with pytest.raises(InstrumentError):
            insert_before(loop.init, "int q = 0;")


class TestEnsureBraced:
    def test_wraps_single_statement_body(self):
        ast = Ast("int main() { for (int i = 0; i < 3; i++) i = i; return 0; }")
        loop = ast.outermost_loops("main")[0]
        body = ensure_braced(loop)
        assert loop.body is body
        ast.execute()  # still runs

    def test_noop_for_braced_body(self, ast):
        loop = loop_of(ast)
        body = loop.body
        assert ensure_braced(loop) is body
