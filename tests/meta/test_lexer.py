"""Lexer unit tests."""

import pytest

from repro.meta.lexer import LexError, Lexer, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_keywords_and_idents(self):
        toks = kinds("int foo double bar2 if_x")
        assert toks == [("KEYWORD", "int"), ("IDENT", "foo"),
                        ("KEYWORD", "double"), ("IDENT", "bar2"),
                        ("IDENT", "if_x")]

    def test_underscore_ident(self):
        assert kinds("_tmp __acc") == [("IDENT", "_tmp"), ("IDENT", "__acc")]

    def test_integers(self):
        assert kinds("0 42 100000") == [("INT", "0"), ("INT", "42"),
                                        ("INT", "100000")]

    def test_hex_integer(self):
        assert kinds("0x1F") == [("INT", "0x1F")]

    def test_float_forms(self):
        texts = [t for _, t in kinds("1.0 0.5 1e3 1.5e-2 2E+4 .25")]
        assert texts == ["1.0", "0.5", "1e3", "1.5e-2", "2E+4", ".25"]
        assert all(k == "FLOAT" for k, _ in kinds("1.0 0.5 1e3"))

    def test_float_suffix(self):
        toks = kinds("1.0f 2.5F 3f")
        assert [k for k, _ in toks] == ["FLOAT"] * 3

    def test_int_does_not_become_float(self):
        assert kinds("3")[0][0] == "INT"

    def test_string_literal(self):
        assert kinds('"hello world"') == [("STRING", '"hello world"')]

    def test_string_with_escape(self):
        assert kinds(r'"a\"b"') == [("STRING", r'"a\"b"')]

    def test_eof_token(self):
        toks = tokenize("x")
        assert toks[-1].kind == "EOF"

    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "EOF"

    def test_whitespace_only(self):
        assert tokenize("  \n\t ")[0].kind == "EOF"


class TestOperators:
    @pytest.mark.parametrize("op", [
        "==", "!=", "<=", ">=", "&&", "||", "++", "--",
        "+=", "-=", "*=", "/=", "<<", ">>",
        "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    ])
    def test_each_operator(self, op):
        assert kinds(f"a {op} b")[1] == ("PUNCT", op)

    def test_maximal_munch(self):
        # '++' beats '+' '+'; '<=' beats '<' '='
        assert [t for _, t in kinds("a++ <= b")] == ["a", "++", "<=", "b"]

    def test_arrow_skipped_in_expr_context(self):
        assert ("PUNCT", "->") in kinds("p->x")


class TestTriviaAndDirectives:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [("IDENT", "a"), ("IDENT", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("IDENT", "a"), ("IDENT", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_pragma_token(self):
        toks = tokenize("#pragma unroll 4\nint x;")
        assert toks[0].kind == "PRAGMA"
        assert toks[0].text == "unroll 4"

    def test_pragma_omp(self):
        toks = tokenize("#pragma omp parallel for reduction(+:s)\n")
        assert toks[0].text == "omp parallel for reduction(+:s)"

    def test_include_preproc(self):
        toks = tokenize("#include <math.h>\nint x;")
        assert toks[0].kind == "PREPROC"
        assert toks[0].text == "#include <math.h>"

    def test_pragma_line_continuation(self):
        toks = tokenize("#pragma omp parallel \\\n for\nx")
        assert toks[0].kind == "PRAGMA"
        assert "for" in toks[0].text


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]
        assert toks[2].col == 3

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a ` b")
