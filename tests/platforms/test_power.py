"""Power/energy model tests (SS IV-D extension)."""

import pytest

from repro.platforms.power import (
    DEFAULT_UTILIZATION, POWER_SPECS, PowerSpec, energy_efficiency_ratio,
    energy_joules, power_spec,
)


class TestPowerSpec:
    def test_draw_interpolates(self):
        spec = PowerSpec("x", idle_w=50.0, peak_w=250.0)
        assert spec.draw_w(0.0) == 50.0
        assert spec.draw_w(1.0) == 250.0
        assert spec.draw_w(0.5) == 150.0

    def test_draw_clamps(self):
        spec = PowerSpec("x", idle_w=50.0, peak_w=250.0)
        assert spec.draw_w(-1.0) == 50.0
        assert spec.draw_w(2.0) == 250.0

    def test_all_devices_have_specs(self):
        for device in ("epyc7543", "gtx1080ti", "rtx2080ti",
                       "arria10", "stratix10"):
            spec = power_spec(device)
            assert 0 < spec.idle_w < spec.peak_w

    def test_fpga_envelopes_far_below_gpu(self):
        assert POWER_SPECS["arria10"].peak_w < POWER_SPECS["gtx1080ti"].peak_w / 3
        assert POWER_SPECS["stratix10"].peak_w < POWER_SPECS["rtx2080ti"].peak_w / 2

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            power_spec("asic9000")


class TestEnergy:
    def test_energy_linear_in_time(self):
        one = energy_joules("rtx2080ti", 1.0, utilization=0.5)
        ten = energy_joules("rtx2080ti", 10.0, utilization=0.5)
        assert ten == pytest.approx(10 * one)

    def test_kind_defaults_applied(self):
        assert DEFAULT_UTILIZATION["cpu-omp"] > DEFAULT_UTILIZATION["fpga-oneapi"]
        omp = energy_joules("epyc7543", 1.0, kind="cpu-omp")
        assert omp == pytest.approx(
            power_spec("epyc7543").draw_w(DEFAULT_UTILIZATION["cpu-omp"]))

    def test_slow_fpga_can_still_win_energy(self):
        """An FPGA 2x slower than a GPU still uses less energy."""
        ratio = energy_efficiency_ratio("stratix10", 2.0,
                                        "rtx2080ti", 1.0,
                                        util_a=0.6, util_b=0.75)
        assert ratio < 1.0


class TestEnergyHarness:
    def test_energy_rows(self, runner):
        from repro.evalharness.energy import render_energy, run_energy

        rows = run_energy(runner)
        assert len(rows) == 5
        by_app = {r.app: r for r in rows}
        # Rush Larsen has no FPGA designs: n/a cells
        assert by_app["rush_larsen"].energy_j["oneapi-a10"] is None
        # K-Means: fastest is OMP but the Stratix10 sips power --
        # exactly the SS IV-D "more nuanced mapping" phenomenon
        assert by_app["kmeans"].fastest == "omp"
        assert by_app["kmeans"].most_efficient.startswith("oneapi")
        assert by_app["kmeans"].efficiency_differs_from_speed
        text = render_energy(rows)
        assert "most efficient" in text
