"""Platform model tests: CPU roofline, GPU occupancy/issue model, FPGA
pipeline model, transfer models, profile scaling invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.platforms import (
    ARRIA10, CPUModel, EPYC_7543, FPGAModel, GPUModel, GTX_1080_TI,
    KernelProfile, RTX_2080_TI, STRATIX10, TransferModel, get_platform,
)
from repro.platforms.fpga import FPGADesignPoint
from repro.platforms.gpu import GPUDesignPoint
from repro.platforms.profile import BufferProfile


def make_profile(**overrides):
    base = dict(
        kernel_name="k",
        flops=1e9,
        builtin_flops=0.0,
        int_ops=2e8,
        mem_bytes=4e8,
        outer_iterations=1_000_000,
        bytes_in=4e7,
        bytes_out=4e7,
        working_set_bytes=8e7,
        sp_fraction=1.0,
        transfer_amortization=1,
    )
    base.update(overrides)
    return KernelProfile(**base)


class TestCPUModel:
    def test_reference_time_compute_bound(self):
        cpu = CPUModel()
        profile = make_profile(sp_fraction=0.0, mem_bytes=0.0)
        expected = 1e9 / (EPYC_7543.st_gflops_dp * 1e9) \
            + 2e8 / (2 * EPYC_7543.st_gflops_dp * 1e9)
        assert cpu.reference_time(profile) == pytest.approx(expected)

    def test_memory_bound_reference(self):
        cpu = CPUModel()
        profile = make_profile(flops=1.0, int_ops=0, mem_bytes=1e9)
        expected = 1e9 / (EPYC_7543.st_cache_bw_gbs * 1e9)
        assert cpu.reference_time(profile) == pytest.approx(expected, rel=0.01)

    def test_omp_near_linear_scaling_compute(self):
        cpu = CPUModel()
        profile = make_profile(sp_fraction=0.0, mem_bytes=0.0,
                               flops=1e11, int_ops=0)
        speedup = cpu.omp_speedup(profile, 32)
        assert 25 <= speedup <= 32

    def test_omp_dram_saturation_for_huge_working_sets(self):
        cpu = CPUModel()
        profile = make_profile(flops=1.0, int_ops=0, mem_bytes=1e12,
                               working_set_bytes=2 * EPYC_7543.llc_bytes)
        speedup = cpu.omp_speedup(profile, 32)
        # capped by DRAM/cache bandwidth ratio, far below core count
        assert speedup < 10

    def test_omp_single_thread_is_reference(self):
        cpu = CPUModel()
        profile = make_profile()
        assert cpu.omp_time(profile, 1) == cpu.reference_time(profile)

    def test_more_threads_never_slower_compute_bound(self):
        cpu = CPUModel()
        profile = make_profile(mem_bytes=0.0, flops=1e11)
        times = [cpu.omp_time(profile, t) for t in (2, 4, 8, 16, 32)]
        assert all(a >= b for a, b in zip(times, times[1:]))


class TestGPUOccupancy:
    def test_full_occupancy_small_kernel(self):
        gpu = GPUModel(GTX_1080_TI)
        occ = gpu.occupancy(blocksize=256, registers_per_thread=32)
        assert occ.occupancy == 1.0

    def test_register_limited_rush_larsen_case(self):
        """255 regs/thread: 12.5% on Pascal, 25% on Turing (paper)."""
        pascal = GPUModel(GTX_1080_TI).occupancy(256, 255)
        turing = GPUModel(RTX_2080_TI).occupancy(256, 255)
        assert pascal.occupancy == pytest.approx(0.125)
        assert pascal.limited_by == "registers"
        assert turing.occupancy == pytest.approx(0.25)

    def test_block_limited_tiny_blocks(self):
        occ = GPUModel(GTX_1080_TI).occupancy(32, 16)
        assert occ.limited_by == "blocks"

    def test_shared_memory_limit(self):
        gpu = GPUModel(GTX_1080_TI)
        occ = gpu.occupancy(256, 32, shared_mem_per_block=48 * 1024)
        assert occ.limited_by == "shared"
        assert occ.blocks_per_sm == 2

    def test_oversized_registers_zero_blocks(self):
        occ = GPUModel(RTX_2080_TI).occupancy(512, 255)
        assert occ.blocks_per_sm == 0


class TestGPUModel:
    def test_dp_much_slower_than_sp(self):
        gpu = GPUModel(GTX_1080_TI)
        sp = gpu.kernel_time(make_profile(sp_fraction=1.0, mem_bytes=0.0),
                             GPUDesignPoint())
        dp = gpu.kernel_time(make_profile(sp_fraction=0.0, mem_bytes=0.0),
                             GPUDesignPoint())
        assert dp > 10 * sp  # GeForce DP is 1/32 rate

    def test_turing_coissue_beats_pascal_on_int_heavy(self):
        profile = make_profile(int_ops=1e9)  # int ~ fp
        pascal = GPUModel(GTX_1080_TI)
        turing = GPUModel(RTX_2080_TI)
        ratio = pascal.kernel_time(profile, GPUDesignPoint()) \
            / turing.kernel_time(profile, GPUDesignPoint())
        # co-issue + higher peak: well above the raw peak ratio
        assert ratio > 13450 / 11340

    def test_spill_penalty(self):
        gpu = GPUModel(GTX_1080_TI)
        profile = make_profile(mem_bytes=0.0)
        clean = gpu.kernel_time(profile, GPUDesignPoint())
        spilled = gpu.kernel_time(profile, GPUDesignPoint(spilled=True))
        assert spilled > 2 * clean

    def test_undersaturated_device_slower(self):
        gpu = GPUModel(GTX_1080_TI)
        big = gpu.kernel_time(make_profile(outer_iterations=10_000_000),
                              GPUDesignPoint())
        small_profile = make_profile(outer_iterations=2000)
        small = gpu.kernel_time(small_profile, GPUDesignPoint())
        assert small > big * 0.99  # same work, fewer threads: no faster

    def test_l2_resident_buffer_cheap(self):
        gpu = GPUModel(GTX_1080_TI)
        resident = make_profile(buffer_profiles=(
            BufferProfile("tab", 1e6, 1e10, False, "in"),))
        streaming = make_profile(buffer_profiles=(
            BufferProfile("big", 1e9, 1e10, False, "in"),))
        t_resident = gpu._memory_time(resident, GPUDesignPoint())
        t_streaming = gpu._memory_time(streaming, GPUDesignPoint())
        assert t_resident < t_streaming / 100

    def test_gather_pays_reduced_bandwidth(self):
        gpu = GPUModel(GTX_1080_TI)
        gathered = make_profile(buffer_profiles=(
            BufferProfile("w", 1e9, 1e9, True, "in"),))
        linear = make_profile(buffer_profiles=(
            BufferProfile("w", 1e9, 1e9, False, "in"),))
        assert gpu._memory_time(gathered, GPUDesignPoint()) \
            > 2 * gpu._memory_time(linear, GPUDesignPoint())

    def test_pinned_transfers_faster(self):
        gpu = GPUModel(GTX_1080_TI)
        profile = make_profile(bytes_in=1e9, bytes_out=1e9)
        slow = gpu.transfer_time(profile, GPUDesignPoint(pinned_memory=False))
        fast = gpu.transfer_time(profile, GPUDesignPoint(pinned_memory=True))
        assert fast < slow

    def test_transfer_amortization(self):
        gpu = GPUModel(GTX_1080_TI)
        once = gpu.transfer_time(make_profile(), GPUDesignPoint())
        amortized = gpu.transfer_time(
            make_profile(transfer_amortization=10), GPUDesignPoint())
        assert amortized == pytest.approx(once / 10)

    def test_zero_occupancy_infinite_time(self):
        gpu = GPUModel(RTX_2080_TI)
        time = gpu._compute_time(make_profile(),
                                 GPUDesignPoint(blocksize=512,
                                                registers_per_thread=255))
        assert math.isinf(time)


class TestFPGAModel:
    def test_pipeline_ii1_throughput(self):
        fpga = FPGAModel(STRATIX10)
        profile = make_profile(outer_iterations=33_000_000,
                               bytes_in=0, bytes_out=0, mem_bytes=0)
        point = FPGADesignPoint(unroll_factor=1, ii=1.0)
        # 33M iterations at 330 MHz = ~0.1 s
        assert fpga.pipeline_time(profile, point) == pytest.approx(0.1, rel=0.01)

    def test_unroll_scales_throughput(self):
        fpga = FPGAModel(ARRIA10)
        profile = make_profile()
        t1 = fpga.pipeline_time(profile, FPGADesignPoint(unroll_factor=1))
        t4 = fpga.pipeline_time(profile, FPGADesignPoint(unroll_factor=4))
        assert t4 < t1 / 3

    def test_variable_inner_loop_defeats_unroll(self):
        fpga = FPGAModel(ARRIA10)
        profile = make_profile()
        point = FPGADesignPoint(unroll_factor=8, variable_inner_trips=100)
        serial = fpga.pipeline_time(profile, point)
        clean = fpga.pipeline_time(profile, FPGADesignPoint(unroll_factor=8))
        assert serial > 50 * clean  # paper's N-Body situation

    def test_bram_resident_gather_table_free(self):
        fpga = FPGAModel(STRATIX10)
        small = make_profile(buffer_profiles=(
            BufferProfile("w", 1e5, 1e10, True, "in"),))
        large = make_profile(buffer_profiles=(
            BufferProfile("w", 1e9, 1e10, True, "in"),))
        assert fpga.memory_time(small, FPGADesignPoint()) \
            < fpga.memory_time(large, FPGADesignPoint()) / 10

    def test_zero_copy_requires_usm(self):
        fpga = FPGAModel(ARRIA10)
        with pytest.raises(ValueError):
            fpga.design_time(make_profile(), FPGADesignPoint(zero_copy=True))

    def test_zero_copy_overlaps_transfer(self):
        fpga = FPGAModel(STRATIX10)
        profile = make_profile(bytes_in=1e9, bytes_out=1e5)
        copied = fpga.design_time(profile, FPGADesignPoint())
        zero = fpga.design_time(profile, FPGADesignPoint(zero_copy=True))
        assert zero < copied


class TestTransferModel:
    def test_bandwidth_ordering(self):
        xfer = TransferModel()
        assert xfer.pinned_time(1e9) < xfer.pageable_time(1e9)

    def test_latency_floor(self):
        xfer = TransferModel()
        assert xfer.pageable_time(1, transfers=1) >= xfer.spec.latency_s

    def test_zero_bytes_free(self):
        assert TransferModel().pageable_time(0) == 0.0


class TestRegistry:
    def test_all_platforms_resolve(self):
        for name in ("epyc7543", "gtx1080ti", "rtx2080ti",
                     "arria10", "stratix10"):
            assert get_platform(name) is not None

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_platform("tpu")


class TestProfileScaling:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=2.0, max_value=1e4))
    def test_speedup_ratio_size_stable(self, factor):
        """Speedups are invariant under linear workload scaling once
        fixed overheads are negligible."""
        cpu = CPUModel()
        gpu = GPUModel(RTX_2080_TI)
        base = make_profile(flops=1e12, int_ops=0, mem_bytes=1e10,
                            bytes_in=0, bytes_out=0,
                            outer_iterations=10_000_000)
        scaled = base.scaled(factor)
        s_base = cpu.reference_time(base) / gpu.kernel_time(
            base, GPUDesignPoint())
        s_scaled = cpu.reference_time(scaled) / gpu.kernel_time(
            scaled, GPUDesignPoint())
        assert s_scaled == pytest.approx(s_base, rel=0.05)

    def test_fixed_buffers_keep_size(self):
        profile = make_profile(buffer_profiles=(
            BufferProfile("table", 1e5, 1e7, True, "in"),
            BufferProfile("stream", 1e6, 1e7, False, "in"),
        ))
        scaled = profile.scaled(100.0, fixed_buffers=("table",))
        by_name = {b.name: b for b in scaled.buffer_profiles}
        assert by_name["table"].nbytes == 1e5          # unchanged
        assert by_name["table"].traffic_bytes == 1e9   # traffic scales
        assert by_name["stream"].nbytes == 1e8

    def test_scaled_recomputes_transfer_footprint(self):
        profile = make_profile(buffer_profiles=(
            BufferProfile("a", 1e6, 1e6, False, "in"),
            BufferProfile("b", 2e6, 2e6, False, "out"),
        ))
        scaled = profile.scaled(10.0)
        assert scaled.bytes_in == 1e7
        assert scaled.bytes_out == 2e7
        assert scaled.working_set_bytes == 3e7
