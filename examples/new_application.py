"""Porting a new application through the PSA-flow.

The paper's benchmarks are baked into :mod:`repro.apps`, but the flow is
generic: "Once codified, PSA-flows can be readily applied across
various benchmarks."  This example defines a sixth application from
scratch -- a Black-Scholes-style option pricer -- as an
:class:`AppSpec` (source + workload + numpy oracle) and pushes it
through the unmodified Fig. 4 flow in both modes.

    python examples/new_application.py
"""

import numpy as np
from scipy.special import erfc

from repro import FlowEngine, Workload
from repro.apps.base import AppSpec

SOURCE = """
// European option pricing, Black-Scholes closed form per contract.
#include <math.h>
#include <stdio.h>

int main() {
    int n = ws_int("n");
    double r = ws_double("rate");
    double* spot = ws_array_double("spot", n);
    double* strike = ws_array_double("strike", n);
    double* vol = ws_array_double("vol", n);
    double* tte = ws_array_double("tte", n);
    double* call = ws_array_double("call", n);

    // hotspot: price every contract
    for (int i = 0; i < n; i++) {
        double s = spot[i];
        double k = strike[i];
        double sigma = vol[i];
        double t = tte[i];
        double srt = sigma * sqrt(t);
        double d1 = (log(s / k) + (r + 0.5 * sigma * sigma) * t) / srt;
        double d2 = d1 - srt;
        double nd1 = 0.5 * erfc(0.0 - d1 / 1.4142135623730951);
        double nd2 = 0.5 * erfc(0.0 - d2 / 1.4142135623730951);
        call[i] = s * nd1 - k * exp(0.0 - r * t) * nd2;
    }

    double total = 0.0;
    for (int i = 0; i < n; i++) {
        total = total + call[i];
    }
    printf("book value: %g\\n", total);
    return 0;
}
"""


def make_workload(scale: float = 1.0) -> Workload:
    n = max(64, int(512 * scale))
    rng = np.random.default_rng(23)
    return Workload(
        scalars={"n": n, "rate": 0.03},
        arrays={
            "spot": (80 + 40 * rng.random(n)).tolist(),
            "strike": (80 + 40 * rng.random(n)).tolist(),
            "vol": (0.1 + 0.4 * rng.random(n)).tolist(),
            "tte": (0.1 + 2.0 * rng.random(n)).tolist(),
        },
    )


def oracle(workload):
    n = int(workload.scalar("n"))
    r = float(workload.scalar("rate"))
    s = np.array(workload._initial_arrays["spot"])
    k = np.array(workload._initial_arrays["strike"])
    sigma = np.array(workload._initial_arrays["vol"])
    t = np.array(workload._initial_arrays["tte"])
    srt = sigma * np.sqrt(t)
    d1 = (np.log(s / k) + (r + 0.5 * sigma**2) * t) / srt
    d2 = d1 - srt
    nd1 = 0.5 * erfc(-d1 / np.sqrt(2))
    nd2 = 0.5 * erfc(-d2 / np.sqrt(2))
    return {"call": s * nd1 - k * np.exp(-r * t) * nd2}


BLACK_SCHOLES = AppSpec(
    name="blackscholes",
    display_name="Black-Scholes",
    source=SOURCE,
    workload_factory=make_workload,
    oracle=oracle,
    output_buffers=("call",),
    sp_tolerant=True,
    hotspot_invocations=5,   # books are re-priced as the market moves
    eval_scale=2000.0,
    summary="Closed-form option pricing; elementary-function heavy",
)


def main() -> None:
    # sanity: the interpreter agrees with the numpy oracle
    workload = BLACK_SCHOLES.workload()
    BLACK_SCHOLES.ast().execute(workload)
    BLACK_SCHOLES.check_outputs(workload, rtol=1e-9)
    print("oracle check passed\n")

    engine = FlowEngine()
    informed = engine.run(BLACK_SCHOLES, mode="informed")
    print(informed.explain())
    print(f"\ninformed PSA selected: {informed.selected_target}")

    uninformed = engine.run(BLACK_SCHOLES, mode="uninformed")
    print("\nall generated designs:")
    for design in uninformed.designs:
        status = (f"{design.speedup:7.1f}x" if design.synthesizable
                  else "unsynthesizable")
        print(f"  {design.metadata.get('device_label'):12s} {status}  "
              f"+{design.loc_delta_pct:.0f}% LOC")


if __name__ == "__main__":
    main()
