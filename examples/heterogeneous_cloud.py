"""Heterogeneous-cloud scenario (paper §IV-D).

"With a set of generated diverse designs available for different
targets (e.g. using the uninformed PSA-flow), there is scope for
runtime experimentation beyond just identifying the best performing
resource ... computations can be mapped at runtime to minimise cost."

This example:

1. runs the *uninformed* flow over three applications, generating all
   five designs each (the portfolio a heterogeneous cloud would hold);
2. prices each design on EC2-style on-demand rates;
3. maps each application to the cheapest resource, then re-maps under
   an off-peak FPGA discount -- reproducing the paper's observation
   that "the most performant design ... might not be the most cost
   effective".

    python examples/heterogeneous_cloud.py
"""

from repro import FlowEngine, get_app
from repro.flow.cost import CloudPriceTable, CostEvaluator

APPS = ("adpredictor", "bezier", "kmeans")


def cheapest(designs, evaluator):
    priced = [(evaluator.execution_cost(d.predicted_time_s, d.device), d)
              for d in designs if d.synthesizable]
    priced.sort(key=lambda pair: pair[0])
    return priced


def main() -> None:
    engine = FlowEngine()
    portfolios = {}
    for name in APPS:
        result = engine.run(get_app(name), mode="uninformed")
        portfolios[name] = result
        print(f"generated {len(result.designs)} designs for "
              f"{result.app.display_name}")

    print("\n--- on-demand prices ---")
    evaluator = CostEvaluator()
    for device, price in sorted(
            evaluator.prices.prices_per_hour.items()):
        print(f"  {device:10s} ${price:.2f}/h")

    print("\n--- runtime mapping: minimise cost per execution ---")
    for name, result in portfolios.items():
        priced = cheapest(result.synthesizable_designs, evaluator)
        best_cost, best = priced[0]
        fastest = result.auto_selected
        marker = "" if best is fastest else \
            "   <- cheaper than the fastest design!"
        print(f"  {result.app.display_name:12s} -> {best.device:10s} "
              f"(${best_cost:.3e}/run, {best.speedup:.0f}x){marker}")

    print("\n--- off-peak: Stratix10 instances at 60% discount ---")
    discounted = CostEvaluator(CloudPriceTable(
        {**evaluator.prices.prices_per_hour,
         "stratix10": evaluator.prices.price("stratix10") * 0.4}))
    for name, result in portfolios.items():
        priced = cheapest(result.synthesizable_designs, discounted)
        best_cost, best = priced[0]
        print(f"  {result.app.display_name:12s} -> {best.device:10s} "
              f"(${best_cost:.3e}/run)")

    print("\nThe single technology-agnostic source produced every "
          "implementation;\nthe mapping decision became a price query.")


if __name__ == "__main__":
    main()
