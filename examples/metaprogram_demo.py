"""The Fig. 2 meta-program, written as a user would write it.

Reproduces the paper's ``unroll_until_overmap`` example end to end on a
standalone FPGA kernel: query the outermost loops of the kernel
function, instrument ``#pragma unroll $n``, run a dpcpp partial compile
to get the high-level design report, double ``n`` until the device
overmaps, and export the final readable source.

    python examples/metaprogram_demo.py
"""

from repro import Ast
from repro.meta.ast_nodes import ForStmt, FunctionDecl
from repro.meta.instrument import insert_pragma
from repro.toolchains import DpcppToolchain

SRC = """
// FIR-style kernel: fixed taps, streaming samples
void knl(float* out, const float* x, const float* taps, int n) {
    for (int i = 0; i < n; i++) {
        float acc = 0.0f;
        for (int t = 0; t < 16; t++) {
            acc += x[i + t] * taps[t];
        }
        out[i] = acc;
    }
}
"""


def unroll_until_overmap(src: str, kernel_name: str, device: str,
                         mod_src: str) -> None:
    """NAME: unroll_until_overmap / INPUT: src, kernel_name / OUTPUT:
    mod_src -- the pseudocode of Fig. 2, in the real API."""
    ast = Ast(src)                                   # ast <= Ast(src)
    tool = DpcppToolchain()
    n = 2
    design = None                                    # design <= empty

    # loops <= query(for all loop, fn in ast: loop.isForStmt and
    #                fn.name = kernel_name and fn.encloses(loop) and
    #                loop.is_outermost)
    loops = (ast.query()
             .row("loop", ForStmt)
             .row("fn", FunctionDecl)
             .where(lambda loop, fn: fn.name == kernel_name
                    and fn.encloses(loop)
                    and loop.is_outermost)
             .all())
    print(f"query matched {len(loops)} outermost kernel loop(s)")

    while True:                                      # do ... while
        candidate = ast.clone()
        for match in (candidate.query()
                      .row("loop", ForStmt)
                      .row("fn", FunctionDecl)
                      .where(lambda loop, fn: fn.name == kernel_name
                             and fn.encloses(loop)
                             and loop.is_outermost)
                      .all()):
            # instrument(before, loop, #pragma unroll $n)
            insert_pragma(match.loop, "unroll $n", {"n": n})

        # report <= exec(ast)  (partial compile -> HLS report)
        report = tool.partial_compile(candidate, kernel_name, device)
        overmap = report.overmapped                  # report.LUT >= 0.9
        print(f"  n={n:<5d} ALM {report.alm_utilization:6.1%}  "
              f"DSP {report.dsp_utilization:6.1%}  "
              f"{'OVERMAPPED' if overmap else 'fits'}")
        if not overmap:
            design = candidate                       # n <= n*2; keep design
            n *= 2
        if overmap or n > 4096:
            break

    if design is not None:                           # design.export(mod_src)
        design.export(mod_src)
        print(f"\nfinal design (unroll {n // 2}) exported to {mod_src}")
        print("--- kernel ---")
        from repro.meta.unparse import unparse

        print(unparse(design.function(kernel_name)))


def main() -> None:
    for device in ("arria10", "stratix10"):
        print(f"\n=== unroll_until_overmap on {device} ===")
        unroll_until_overmap(SRC, "knl", device,
                             f"/tmp/fir_{device}.cpp")


if __name__ == "__main__":
    main()
