"""Building a custom PSA-flow (paper §II-B trade-off discussion).

"To construct a design-flow with a predetermined optimization strategy
tailored to specific application domains or targets, a set of codified
design-flow tasks must first be orchestrated."

This example composes the repository's codified tasks into a *custom*
flow that differs from the paper's Fig. 4 flow in three ways:

1. a bespoke PSA strategy at branch A (a GPU-first policy that falls
   back to OpenMP when occupancy would be register-starved);
2. the Fig. 3 cost/budget feedback loop wrapped around it;
3. a custom user task (an extra analysis printed into the trace),
   showing how "target-specific design-flow tasks can be ... seamlessly
   plugged in".

    python examples/custom_flow.py
"""

from repro import FlowEngine, get_app
from repro.flow import BudgetedStrategy, Sequence, Task, TaskKind
from repro.flow.dse import BlocksizeDSE, OmpThreadsDSE
from repro.flow.engine import FinalizeDesign, FlowEngine
from repro.flow.graph import BranchPoint
from repro.flow.psa import PSADecision, PSAStrategy
from repro.flow.repository import (
    ArithmeticIntensityAnalysis, DataInOutAnalysis, EmployHIPPinnedMemory,
    EmploySPMathFns, EmploySPNumericLiterals, EmploySpecialisedMathFns,
    GenerateHIPDesign, HotspotLoopExtraction, IdentifyHotspotLoops,
    IntroduceSharedMemBuf, LoopDependenceAnalysis, LoopTripCountAnalysis,
    MultiThreadParallelLoops, PointerAnalysis, SpecialiseForDevice,
)
from repro.flow.context import FlowContext
from repro.toolchains.hipcc import estimate_registers


class KernelComplexityReport(Task):
    """A user-written analysis task plugged into the flow."""

    name = "Kernel Complexity Report"
    kind = TaskKind.ANALYSIS
    scope = "CUSTOM"

    def run(self, ctx) -> None:
        kernel = ctx.ast.function(ctx.kernel_name)
        regs = estimate_registers(kernel)
        loops = len(kernel.loops())
        ctx.facts["custom:regs"] = regs
        ctx.log(f"    ~{regs} registers/thread, {loops} loop(s)")


class GPUFirstStrategy(PSAStrategy):
    """GPU unless register pressure would starve occupancy."""

    def select(self, ctx, name, paths):
        regs = ctx.facts.get("custom:regs", 32)
        profile = ctx.kernel_profile()
        if not profile.outer_parallel:
            return PSADecision(name, [], ["outer loop not parallel"])
        if regs > 128:
            return PSADecision(name, ["omp"], [
                f"~{regs} regs/thread would cap GPU occupancy: "
                "falling back to multi-thread CPU"])
        return PSADecision(name, ["gpu"],
                           [f"~{regs} regs/thread: GPU-first policy"])


def build_custom_flow():
    gpu_path = Sequence(
        GenerateHIPDesign(),
        EmployHIPPinnedMemory(),
        EmploySPMathFns("GPU"),
        EmploySPNumericLiterals("GPU"),
        IntroduceSharedMemBuf(),
        EmploySpecialisedMathFns(),
        # this custom flow only targets the newer card
        SpecialiseForDevice("rtx2080ti", "hip-2080ti", "GPU-2080"),
        BlocksizeDSE("rtx2080ti"),
        FinalizeDesign("GPU-2080"),
    )
    omp_path = Sequence(
        MultiThreadParallelLoops(),
        OmpThreadsDSE(),
        FinalizeDesign("CPU-OMP"),
    )
    strategy = BudgetedStrategy(GPUFirstStrategy(), budget_per_run=1.0)
    return Sequence(
        IdentifyHotspotLoops(),
        HotspotLoopExtraction(),
        PointerAnalysis(),
        ArithmeticIntensityAnalysis(),
        DataInOutAnalysis(),
        LoopDependenceAnalysis(),
        LoopTripCountAnalysis(),
        KernelComplexityReport(),
        BranchPoint("A", {"gpu": gpu_path, "omp": omp_path},
                    strategy=strategy),
    )


def main() -> None:
    flow = build_custom_flow()
    print("=== custom flow structure ===")
    print(flow.describe())
    print()

    for app_name in ("nbody", "rush_larsen"):
        ctx = FlowContext(get_app(app_name))
        ctx.log(f"=== custom flow on {ctx.app.display_name} ===")
        flow.execute(ctx)
        print("\n".join(ctx.trace))
        for design in ctx.designs:
            print(f"  -> {design.label}: {design.speedup:.1f}x\n")


if __name__ == "__main__":
    main()
