"""Quickstart: run the paper's PSA-flow on one benchmark.

Runs the implemented Fig. 4 flow on K-Means in *informed* mode: the
Fig. 3 strategy analyses the hotspot, decides the target (multi-thread
CPU -- the assignment step is memory-bound), generates the design, and
the harness prints the decision trace plus the generated source.

    python examples/quickstart.py [app]
"""

import sys

from repro import FlowEngine, get_app


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    app = get_app(app_name)

    print(f"=== {app.display_name}: {app.summary}\n")

    engine = FlowEngine()
    result = engine.run(app, mode="informed")

    print(result.explain())
    print()
    print(f"informed PSA selected: {result.selected_target}")
    print(f"reference (1-thread CPU) hotspot time: "
          f"{result.reference_time_s * 1e3:.2f} ms")
    print()

    for design in result.designs:
        status = (f"{design.speedup:.1f}x speedup"
                  if design.synthesizable else
                  f"NOT SYNTHESIZABLE ({design.failure_reason})")
        print(f"  {design.label}: {status}, "
              f"+{design.loc_delta_pct:.0f}% LOC")

    best = result.auto_selected
    if best is not None:
        path = f"/tmp/{app.name}_{best.metadata['device_label']}.cpp"
        best.export(path)
        print(f"\nbest design exported to {path}")
        print("--- first 40 lines ---")
        print("\n".join(best.render().splitlines()[:40]))


if __name__ == "__main__":
    main()
