"""Bench: regenerate Table I (added LOC per generated design)."""

from conftest import run_once

from repro.evalharness.runner import DESIGN_LABELS
from repro.evalharness.table1 import averages, render_table1, run_table1


def test_table1_regeneration(benchmark, runner):
    rows = run_once(benchmark, run_table1, runner)
    print()
    print(render_table1(rows))
    avg = averages(rows)
    # the paper's column ordering: OMP << HIP < oneAPI A10 < oneAPI S10
    assert avg["omp"] < avg["hip-1080ti"] < avg["oneapi-a10"] \
        < avg["oneapi-s10"]
    # Rush Larsen FPGA designs excluded exactly as in the paper
    rush = [r for r in rows if r.app == "rush_larsen"][0]
    assert rush.total_pct is None


def test_design_rendering_loc(benchmark, all_uninformed):
    """Time rendering + LOC accounting over all 25 generated designs."""

    def render_all():
        total = 0
        for result in all_uninformed.values():
            for design in result.designs:
                total += design.loc
        return total

    total = benchmark(render_all)
    assert total > 0
