"""Bench: regenerate Fig. 5 (hotspot speedups of every generated design).

One benchmark per application times the complete informed PSA-flow
(hotspot timing run, extraction, analyses, branch decision, codegen,
device DSE, model evaluation); a final benchmark regenerates the whole
figure and prints it, asserting the paper's shape.
"""

import pytest

from repro.apps.registry import PAPER_ORDER
from repro.evalharness.fig5 import PAPER_FIG5, PAPER_SELECTION, render_fig5, run_fig5
from repro.evalharness.runner import DESIGN_LABELS
from repro.flow.engine import FlowEngine
from repro.apps import get_app

from conftest import run_once


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_informed_flow(benchmark, app_name):
    """Time one end-to-end informed PSA-flow run."""
    engine = FlowEngine()
    result = run_once(benchmark, engine.run, get_app(app_name),
                      mode="informed")
    assert result.selected_target == PAPER_SELECTION[app_name]
    assert result.auto_selected is not None


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_uninformed_flow(benchmark, app_name):
    """Time one uninformed (all-paths) PSA-flow run: five designs."""
    engine = FlowEngine()
    result = run_once(benchmark, engine.run, get_app(app_name),
                      mode="uninformed")
    assert len(result.designs) == 5


def test_fig5_regeneration(benchmark, runner):
    """Regenerate the full figure from the cached runs and check shape."""
    rows = run_once(benchmark, run_fig5, runner)
    print()
    print(render_fig5(rows))
    for row in rows:
        assert row.informed_picks_best, row.app
        for label in DESIGN_LABELS:
            want = PAPER_FIG5[row.app][label]
            got = row.speedups[label]
            if want is None:
                assert got is None
            else:
                assert want / 2 <= got <= want * 2, (row.app, label)
