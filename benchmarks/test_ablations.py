"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one task/mechanism and measures the effect on
the generated designs, quantifying why the flow includes it:

- Remove Array += Dependency: without scalarisation the FPGA pipeline's
  II collapses (memory read-modify-write recurrence);
- Zero-Copy Data Transfer: buffer-copy designs on the Stratix10;
- SP transforms: double-precision GPU designs;
- pinned memory: pageable-rate transfers;
- informed vs uninformed PSA: how much work the strategy saves.
"""

import pytest

from conftest import run_once

from repro.apps import get_app
from repro.flow.context import FlowContext
from repro.flow.engine import FlowEngine
from repro.flow.graph import Sequence
from repro.flow.repository import (
    ArithmeticIntensityAnalysis, DataInOutAnalysis, HotspotLoopExtraction,
    IdentifyHotspotLoops, LoopDependenceAnalysis, LoopTripCountAnalysis,
    PointerAnalysis,
)
from repro.platforms.fpga import FPGADesignPoint, FPGAModel
from repro.platforms.gpu import GPUDesignPoint, GPUModel
from repro.platforms.spec import RTX_2080_TI, STRATIX10
from repro.toolchains.dpcpp import DpcppToolchain


def analysed_context(app_name, scalarise):
    ctx = FlowContext(get_app(app_name))
    tasks = [IdentifyHotspotLoops(), HotspotLoopExtraction(),
             PointerAnalysis(), ArithmeticIntensityAnalysis(),
             DataInOutAnalysis(), LoopDependenceAnalysis(),
             LoopTripCountAnalysis()]
    if scalarise:
        from repro.flow.repository import RemoveArrayPlusEqualsDependency

        tasks.append(RemoveArrayPlusEqualsDependency())
    Sequence(*tasks).execute(ctx)
    return ctx


def test_ablation_remove_array_dep(benchmark):
    """N-Body without scalarisation: the FPGA pipeline II collapses."""

    def build():
        with_t = analysed_context("nbody", scalarise=True)
        without = analysed_context("nbody", scalarise=False)
        return with_t, without

    with_t, without = run_once(benchmark, build)
    tool = DpcppToolchain()
    ii_with = tool.partial_compile(with_t.ast, "hotspot_kernel",
                                   "stratix10").ii
    ii_without = tool.partial_compile(without.ast, "hotspot_kernel",
                                      "stratix10").ii
    assert ii_with == 1.0
    assert ii_without >= 8.0  # memory RMW recurrence

    model = FPGAModel(STRATIX10)
    t_with = model.pipeline_time(
        with_t.kernel_profile(),
        FPGADesignPoint(ii=ii_with, variable_inner_trips=128))
    t_without = model.pipeline_time(
        without.kernel_profile(),
        FPGADesignPoint(ii=ii_without, variable_inner_trips=128 * ii_without))
    assert t_without > 2 * t_with
    print(f"\nablation[remove-array-dep]: II {ii_without:.0f} -> "
          f"{ii_with:.0f}, pipeline {t_without / t_with:.1f}x slower without")


def test_ablation_zero_copy(benchmark, all_uninformed):
    """K-Means on the Stratix10 with and without zero-copy USM."""
    design = all_uninformed["kmeans"].design("oneapi-s10")
    ctx_profile = None  # profile captured through the flow result facts

    def evaluate(zero_copy):
        model = FPGAModel(STRATIX10)
        profile = all_uninformed["kmeans"].facts["kernel_profile"]
        report = design.metadata["hls_report"]
        point = FPGADesignPoint(
            unroll_factor=design.metadata["unroll_factor"],
            ii=report.ii, zero_copy=zero_copy)
        return model.design_time(profile, point)

    t_zero = run_once(benchmark, evaluate, True)
    t_copy = evaluate(False)
    print(f"\nablation[zero-copy]: {t_copy * 1e3:.2f} ms copied vs "
          f"{t_zero * 1e3:.2f} ms zero-copy")
    assert t_zero != t_copy


def test_ablation_sp_transforms(benchmark, all_uninformed):
    """Rush Larsen GPU design forced back to double precision."""
    result = all_uninformed["rush_larsen"]
    design = result.design("hip-2080ti")
    profile = result.facts["kernel_profile"]

    def evaluate(sp_fraction):
        model = GPUModel(RTX_2080_TI)
        point = GPUDesignPoint(
            blocksize=design.metadata["blocksize"],
            registers_per_thread=design.metadata["registers_per_thread"],
            pinned_memory=True,
            uses_intrinsics=True,
            spilled=design.metadata["register_spill"],
            sp_fraction=sp_fraction,
        )
        return model.design_time(profile, point)

    t_sp = run_once(benchmark, evaluate, 0.97)
    t_dp = evaluate(0.0)
    print(f"\nablation[sp-transforms]: DP design {t_dp / t_sp:.1f}x slower")
    assert t_dp > 3 * t_sp  # GeForce DP is crippling


def test_ablation_pinned_memory(benchmark, all_uninformed):
    """K-Means HIP transfers at pageable vs pinned rate."""
    result = all_uninformed["kmeans"]
    design = result.design("hip-2080ti")
    profile = result.facts["kernel_profile"]
    model = GPUModel(RTX_2080_TI)

    def evaluate(pinned):
        point = GPUDesignPoint(
            blocksize=design.metadata["blocksize"],
            registers_per_thread=design.metadata["registers_per_thread"],
            pinned_memory=pinned)
        return model.design_time(profile, point)

    t_pinned = run_once(benchmark, evaluate, True)
    t_pageable = evaluate(False)
    print(f"\nablation[pinned]: {t_pageable / t_pinned:.2f}x slower pageable")
    assert t_pageable > t_pinned


def test_ablation_informed_vs_uninformed_cost(benchmark):
    """The informed strategy avoids generating 3-4 unused designs."""
    engine = FlowEngine()

    def informed():
        return engine.run(get_app("kmeans"), mode="informed")

    result = run_once(benchmark, informed)
    uninformed = engine.run(get_app("kmeans"), mode="uninformed")
    assert len(result.designs) == 1
    assert len(uninformed.designs) == 5
    print(f"\nablation[psa]: informed generated {len(result.designs)} "
          f"design(s) vs {len(uninformed.designs)} uninformed")
