"""Bench: the Fig. 2 mechanism -- unroll-until-overmap DSE.

Times the iterative partial-compile loop on a standalone kernel, plus
the underlying partial compile itself, checking the Fig. 2 invariants
(doubling factors, stop at the overmap threshold).
"""

import pytest

from repro.meta.ast_api import Ast
from repro.toolchains.dpcpp import DpcppToolchain
from repro.transforms.unroll import set_unroll_pragma

KERNEL = """
void knl(float* out, const float* x, int n) {
    for (int i = 0; i < n; i++) {
        float v = x[i];
        float a = sqrtf(v + 1.0f);
        float b = sqrtf(v + 2.0f);
        out[i] = a * b + v;
    }
}
"""


def unroll_until_overmap(ast, device):
    """The Fig. 2 meta-program, standalone."""
    tool = DpcppToolchain()
    factor = 1
    best = tool.partial_compile(ast, "knl", device)
    assert best.fitted
    trail = [(factor, best.utilization)]
    n = 2
    while n <= 4096:
        candidate = ast.clone()
        for loop in candidate.function("knl").outermost_loops():
            set_unroll_pragma(loop, n)
        report = tool.partial_compile(candidate, "knl", device)
        trail.append((n, report.utilization))
        if report.overmapped:
            break
        factor, best = n, report
        n *= 2
    return factor, best, trail


@pytest.mark.parametrize("device", ["arria10", "stratix10"])
def test_unroll_until_overmap_dse(benchmark, device):
    factor, report, trail = benchmark(unroll_until_overmap, Ast(KERNEL),
                                      device)
    # Fig. 2: factors double each iteration; the final design fits
    factors = [f for f, _ in trail]
    assert factors[0] == 1
    assert all(b == 2 * a for a, b in zip(factors[1:], factors[2:]))
    assert report.fitted and factor >= 2
    # utilisation grows monotonically with the factor
    utils = [u for _, u in trail]
    assert all(a <= b + 1e-9 for a, b in zip(utils, utils[1:]))


def test_partial_compile_speed(benchmark):
    """Resource estimation must be fast enough for DSE loops."""
    ast = Ast(KERNEL)
    tool = DpcppToolchain()
    report = benchmark(tool.partial_compile, ast, "knl", "stratix10")
    assert report.fitted
