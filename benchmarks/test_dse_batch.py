"""Bench: batched DSE lowering vs compiled point-at-a-time loops.

A fig6-style dense design space -- the three Fig. 6 apps, a dense
unroll-factor axis on the Stratix 10, a dense blocksize axis on the
2080 Ti and the OMP thread axis -- evaluated twice:

* **point**: the original candidate-at-a-time loop (clone the kernel,
  set the pragma, run a partial compile / score the model, repeat), and
* **batched**: one :class:`repro.lang.batch.BatchPlan` tensor
  evaluation per axis (two probe walks fit the exact FPGA resource
  polynomial; the GPU/CPU rooflines ride vectorized numpy).

The two must agree element-wise (asserted here, and differentially in
``tests/flow/test_dse_batch.py``); the point of this file is the wall
time.  The snapshot lands in ``BENCH_dse.json`` at the repo root with a
headline ``speedup_batched_vs_point``; the CI gate is deliberately
below the >= 10x the tentpole targets (and comfortably exceeds on an
idle machine) because shared runners are noisy.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps import get_app
from repro.flow import sweep
from repro.lang.batch import BatchPlan, ParamGrid
from repro.platforms.gpu import GPUDesignPoint
from repro.platforms.profile import KernelProfile
from repro.platforms.registry import get_platform
from repro.toolchains.dpcpp import DpcppToolchain
from repro.transforms.unroll import set_unroll_pragma

from conftest import run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATH = REPO_ROOT / "BENCH_dse.json"

#: CI bar (the tentpole target is 10x; idle machines measure far more)
MIN_SWEEP_SPEEDUP = 5.0

#: the Fig. 6 apps: the space is swept for each of them
FIG6_APPS = ("adpredictor", "bezier", "kmeans")

#: dense factor axis -- every integer, not just the Fig. 2 doublings
UNROLL_FACTORS = tuple(range(2, 258))

#: dense blocksize axis (the Fig. 4 DSE samples 8 of these)
BLOCKSIZES = tuple(range(64, 1025, 8))

THREADS = tuple(range(1, 33))


def _gpu_profile() -> KernelProfile:
    """A representative hotspot profile for the roofline axes."""
    return KernelProfile(
        kernel_name="bench", flops=6.4e8, builtin_flops=3.2e7,
        int_ops=1.6e8, mem_bytes=2.56e8, outer_iterations=1 << 20,
        bytes_in=6.4e7, bytes_out=1.6e7, working_set_bytes=8.0e7)


# ---------------------------------------------------------------------
# point-at-a-time baselines
# ---------------------------------------------------------------------

def _point_unroll(toolchain, ast, kernel, device):
    out = []
    for factor in UNROLL_FACTORS:
        candidate = ast.clone_function(kernel)
        for loop in candidate.function(kernel).outermost_loops():
            set_unroll_pragma(loop, factor)
        report = toolchain.partial_compile(candidate, kernel, device)
        out.append((report.alm_utilization, report.dsp_utilization))
    return out


def _batched_unroll(toolchain, ast, kernel, device):
    spec = toolchain.DEVICES[device]
    coeffs = toolchain.sweep_coefficients(ast, kernel)
    grid = ParamGrid(factor=UNROLL_FACTORS)
    plan = BatchPlan(grid)
    plan.affine("alms", coeffs.alm_const, factor=coeffs.alm_slope)
    plan.affine("dsps", coeffs.dsp_const, factor=coeffs.dsp_slope)
    result = plan.evaluate()
    infra = spec.alms * spec.infra_alm_fraction
    alm_util = (infra + result.tensor("alms")) / spec.alms
    dsp_util = result.tensor("dsps") / spec.dsps
    return alm_util, dsp_util


def _point_blocksize(model, profile, point):
    out = []
    for blocksize in BLOCKSIZES:
        point.blocksize = blocksize
        t = model.design_time(profile, point)
        occ = model.occupancy(blocksize, point.registers_per_thread,
                              point.shared_mem_per_block)
        out.append((t, occ.occupancy))
    return out


def _point_omp(model, profile):
    return [model.omp_time(profile, t) for t in THREADS]


# ---------------------------------------------------------------------
# the snapshot benchmark
# ---------------------------------------------------------------------

def test_dense_sweep_snapshot(benchmark):
    toolchain = DpcppToolchain()
    gpu = get_platform("rtx2080ti")
    from repro.platforms.cpu import CPUModel
    cpu = CPUModel()
    profile = _gpu_profile()
    design_point = GPUDesignPoint(registers_per_thread=64,
                                  shared_mem_per_block=4096)

    axes = {}

    # dense unroll axis, per Fig. 6 app, on the Stratix 10
    point_wall = batched_wall = 0.0
    points = 0
    for app_name in FIG6_APPS:
        ast = get_app(app_name).ast()
        kernel = ast.functions()[0].name

        t0 = time.perf_counter()
        scalar = _point_unroll(toolchain, ast, kernel, "stratix10")
        point_wall += time.perf_counter() - t0

        t0 = time.perf_counter()
        alm_util, dsp_util = _batched_unroll(toolchain, ast, kernel,
                                             "stratix10")
        batched_wall += time.perf_counter() - t0
        points += len(UNROLL_FACTORS)

        # the lowering claim: element-wise bit-identical utilisations
        assert [a for a, _ in scalar] == list(alm_util)
        assert [d for _, d in scalar] == list(dsp_util)
    axes["unroll_stratix10"] = {
        "apps": list(FIG6_APPS), "points": points,
        "point_wall_s": round(point_wall, 4),
        "batched_wall_s": round(batched_wall, 4),
    }

    # dense blocksize axis on the 2080 Ti roofline
    t0 = time.perf_counter()
    scalar_bs = _point_blocksize(gpu, profile, design_point)
    bs_point = time.perf_counter() - t0
    t0 = time.perf_counter()
    triples, limiters = sweep.blocksize_sweep(gpu, profile, design_point,
                                              BLOCKSIZES)
    bs_batched = time.perf_counter() - t0
    assert [(t, o) for t, _, o in triples] == scalar_bs
    assert len(limiters) == len(BLOCKSIZES)
    axes["blocksize_2080ti"] = {
        "points": len(BLOCKSIZES),
        "point_wall_s": round(bs_point, 4),
        "batched_wall_s": round(bs_batched, 4),
    }

    # OMP thread axis on the CPU roofline
    t0 = time.perf_counter()
    scalar_omp = _point_omp(cpu, profile)
    omp_point = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched_omp = sweep.omp_sweep(cpu, profile, THREADS)
    omp_batched = time.perf_counter() - t0
    assert batched_omp == scalar_omp
    axes["omp_threads"] = {
        "points": len(THREADS),
        "point_wall_s": round(omp_point, 4),
        "batched_wall_s": round(omp_batched, 4),
    }

    # headline: whole space, both lowerings; benchmark table gets the
    # batched side (re-run, so its wall is independently visible)
    run_once(benchmark, lambda: [
        _batched_unroll(toolchain, get_app(a).ast(),
                        get_app(a).ast().functions()[0].name, "stratix10")
        for a in FIG6_APPS])

    total_point = sum(a["point_wall_s"] for a in axes.values())
    total_batched = sum(a["batched_wall_s"] for a in axes.values())
    speedup = total_point / total_batched
    snapshot = {
        "benchmark": "fig6-style dense design-space sweep "
                     "(unroll x blocksize x threads)",
        "axes": axes,
        "points_total": sum(a["points"] for a in axes.values()),
        "point_wall_s": round(total_point, 4),
        "batched_wall_s": round(total_batched, 4),
        "speedup_batched_vs_point": round(speedup, 1),
        "ci_gate": MIN_SWEEP_SPEEDUP,
        "target": 10.0,
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print()
    print(json.dumps(snapshot, indent=2))
    assert speedup >= MIN_SWEEP_SPEEDUP, snapshot
