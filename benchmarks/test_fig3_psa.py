"""Bench: the Fig. 3 mechanism -- branch-point path selection.

Times the target-independent analysis pipeline (the inputs the strategy
consumes) and the strategy decision itself, asserting the paper's
routing table.
"""

import pytest

from conftest import run_once

from repro.apps import get_app
from repro.apps.registry import PAPER_ORDER
from repro.evalharness.fig5 import PAPER_SELECTION
from repro.flow.context import FlowContext
from repro.flow.graph import Sequence
from repro.flow.psa import InformedTargetSelection
from repro.flow.repository import (
    ArithmeticIntensityAnalysis, DataInOutAnalysis, HotspotLoopExtraction,
    IdentifyHotspotLoops, LoopDependenceAnalysis, LoopTripCountAnalysis,
    PointerAnalysis, RemoveArrayPlusEqualsDependency,
)

ANALYSES = Sequence(
    IdentifyHotspotLoops(),
    HotspotLoopExtraction(),
    PointerAnalysis(),
    ArithmeticIntensityAnalysis(),
    DataInOutAnalysis(),
    LoopDependenceAnalysis(),
    LoopTripCountAnalysis(),
    RemoveArrayPlusEqualsDependency(),
)


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_target_independent_analyses(benchmark, app_name):
    """Time the full T-INDEP pipeline (incl. the dynamic runs)."""
    ctx = FlowContext(get_app(app_name))
    run_once(benchmark, ANALYSES.execute, ctx)
    assert "intensity" in ctx.facts
    assert "dependences" in ctx.facts


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_psa_decision(benchmark, app_name):
    """Time the strategy itself on a fully analysed context."""
    ctx = FlowContext(get_app(app_name))
    ANALYSES.execute(ctx)
    ctx.kernel_profile()       # warm the memoised profile
    ctx.reference_time()
    strategy = InformedTargetSelection()
    decision = benchmark(strategy.select, ctx, "A", ["gpu", "fpga", "omp"])
    assert decision.selected == [PAPER_SELECTION[app_name]]
