"""Bench: observability overhead gates, written to BENCH_obs.json.

Boots one real ``python -m repro serve`` child per configuration and
pushes the Fig. 5 workload (every app, informed mode, distinct content
hashes so nothing dedups) through it cold:

- **baseline** -- observability dark (no span buffer, no profiler);
- **traced**   -- ``REPRO_OBS_BUFFER`` on, every client call made
  inside a live span so the ``traceparent`` header is injected and
  adopted, and the span buffer drained after each rep (the collector's
  cost is part of the bill);
- **profiled** -- traced plus the 50 Hz sampling profiler.

Gates (min-of-3 wall per configuration): tracing must stay within
1.05x of baseline, tracing+profiler within 1.10x.  These are the
numbers that let the fleet run with observability ON by default.
"""

import json
import time
from pathlib import Path

from repro import obs
from repro.client import ReproClient
from repro.fleet.runner import RunnerProcess

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATH = REPO_ROOT / "BENCH_obs.json"

REPS = 5
MAX_TRACED_RATIO = 1.05
MAX_PROFILED_RATIO = 1.10

CONFIGS = {
    "baseline": {},
    "traced": {"REPRO_OBS_BUFFER": "8192"},
    "profiled": {"REPRO_OBS_BUFFER": "8192", "REPRO_PROFILE_HZ": "50"},
}


def _sweep(client, apps, salt):
    """One cold fig5-shaped pass: every app x mode, distinct keys."""
    for i, app in enumerate(apps):
        for j, mode in enumerate(("informed", "uninformed")):
            client.run_flow(app, mode, timeout=300,
                            intensity_threshold=round(
                                0.3 + salt + (2 * i + j) * 1e-4, 6))


def _measure(tmp_path, name, env):
    runner = RunnerProcess(cache_dir=str(tmp_path / f"cache-{name}"),
                           workers=1, env=env,
                           extra_args=["--max-queue", "32"])
    collector = obs.add_sink(obs.SpanCollector())
    try:
        runner.wait_ready()
        client = ReproClient(runner.url, backoff_s=0.1,
                             poll_interval_s=0.02)
        apps = [a["name"] for a in client.apps()]
        _sweep(client, apps, salt=0.05)       # warm the app profiles
        walls = []
        for rep in range(REPS):
            start = time.perf_counter()
            # a live caller-side span makes every request carry a
            # traceparent header -- the propagation under test
            with obs.span("bench.fig5", config=name, rep=rep):
                _sweep(client, apps, salt=0.001 * (rep + 1))
            if env.get("REPRO_OBS_BUFFER"):
                drained = client.obs_spans(since=0)
                assert drained["spans"], "traced run produced no spans"
            walls.append(time.perf_counter() - start)
        return {"wall_s": round(min(walls), 3),
                "walls": [round(w, 3) for w in walls],
                "apps": len(apps)}
    finally:
        obs.remove_sink(collector)
        runner.stop()


def test_observability_overhead_is_bounded(tmp_path):
    results = {name: _measure(tmp_path, name, env)
               for name, env in CONFIGS.items()}
    base = results["baseline"]["wall_s"]
    traced_ratio = results["traced"]["wall_s"] / base
    profiled_ratio = results["profiled"]["wall_s"] / base
    snapshot = {
        "reps": REPS,
        "configs": results,
        "traced_ratio": round(traced_ratio, 3),
        "profiled_ratio": round(profiled_ratio, 3),
        "max_traced_ratio": MAX_TRACED_RATIO,
        "max_profiled_ratio": MAX_PROFILED_RATIO,
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\nobs overhead: baseline {base:.2f}s, "
          f"traced {traced_ratio:.3f}x, profiled {profiled_ratio:.3f}x")
    assert traced_ratio <= MAX_TRACED_RATIO, snapshot
    assert profiled_ratio <= MAX_PROFILED_RATIO, snapshot
