"""Benchmark fixtures.

The evaluation flows are expensive (each interprets the application
twice); a session-scoped runner executes them once, and the benchmark
bodies measure well-defined pieces (a full informed flow per app, the
DSE engines, the harness sweeps) with single-round pedantic timing.
"""

import pytest

from repro.evalharness.runner import EvaluationRunner


@pytest.fixture(scope="session")
def runner():
    return EvaluationRunner()


@pytest.fixture(scope="session")
def all_uninformed(runner):
    return {name: runner.uninformed(name) for name in runner.all_apps()}


@pytest.fixture(scope="session")
def all_informed(runner):
    return {name: runner.informed(name) for name in runner.all_apps()}


def run_once(benchmark, fn, *args, **kwargs):
    """Time one real execution (flows are far too heavy for rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
