"""Bench: regenerate Fig. 6 (relative FPGA vs GPU execution cost)."""

from conftest import run_once

from repro.evalharness.fig6 import render_fig6, run_fig6


def test_fig6_regeneration(benchmark, runner):
    rows = run_once(benchmark, run_fig6, runner)
    print()
    print(render_fig6(rows))
    by_app = {r.app: r for r in rows}
    # AdPredictor: FPGA fastest, stays cheaper until priced well above
    # the GPU (paper: > 3.2x)
    ad = by_app["adpredictor"]
    assert ad.crossover > 1.5
    assert ad.fpga_cheaper_at(1.0) and not ad.fpga_cheaper_at(4.0)
    # Bezier: GPU faster; FPGA wins only at deep FPGA discounts
    bz = by_app["bezier"]
    assert bz.crossover < 1.0
    assert bz.fpga_cheaper_at(0.25) and not bz.fpga_cheaper_at(1.0)
