"""Bench: the future-work extensions (ML PSA training/inference,
energy analysis, report generation)."""

from conftest import run_once

from repro.apps import get_app
from repro.evalharness.energy import run_energy
from repro.evalharness.report import build_report
from repro.flow.engine import FlowEngine
from repro.flow.ml_psa import (
    MLTargetSelection, label_from_result, train_from_results,
)


def test_ml_psa_training(benchmark, all_uninformed):
    """Train the CART target-selection tree from the five runs."""
    results = list(all_uninformed.values())
    tree = benchmark(train_from_results, results)
    assert tree.depth() >= 1


def test_ml_psa_inference_flow(benchmark, all_uninformed):
    """Drive one informed flow with the learned strategy at branch A."""
    tree = train_from_results(list(all_uninformed.values()))
    engine = FlowEngine(strategy_a=MLTargetSelection(tree))
    result = run_once(benchmark, engine.run, get_app("adpredictor"),
                      mode="informed")
    assert result.selected_target == label_from_result(
        all_uninformed["adpredictor"])


def test_energy_analysis(benchmark, runner):
    rows = run_once(benchmark, run_energy, runner)
    by_app = {r.app: r for r in rows}
    assert by_app["kmeans"].efficiency_differs_from_speed


def test_report_generation(benchmark, runner):
    text = run_once(benchmark, build_report, runner)
    assert "Decision traces" in text
