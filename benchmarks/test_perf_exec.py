"""Bench: execution-engine performance (interpreter vs closure compiler).

Two layers of perf regression coverage:

* per-app single-execution timings under both engines, so a slowdown in
  either path (or a shrinking compiled/interp gap) is visible in the
  pytest-benchmark tables, and
* a cold end-to-end ``eval fig5`` wall-time snapshot, run in fresh
  subprocesses with caching disabled, written to ``BENCH_exec.json`` at
  the repo root.  The snapshot compares the seed-equivalent baseline
  (``REPRO_EXEC=interp REPRO_PROFILE_CACHE=0``) against one-pass
  profiling under each engine and asserts the headline speedup that the
  compiler + shared-profile rework exists to deliver.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.apps import get_app
from repro.apps.registry import PAPER_ORDER
from repro.lang.engine import execute_unit
from repro.meta.ast_api import Ast

from conftest import run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATH = REPO_ROOT / "BENCH_exec.json"

# CI bar is deliberately below the ~7.5x measured on an idle machine:
# shared runners are noisy, and the point is catching regressions to
# near-interpreter speed, not enforcing the exact ratio.
MIN_COLD_FIG5_SPEEDUP = 3.0


@pytest.mark.parametrize("app_name", PAPER_ORDER)
@pytest.mark.parametrize("mode", ["interp", "compiled"])
def test_single_execution(benchmark, app_name, mode):
    """Time one dynamic execution of an app under one engine."""
    unit = Ast(get_app(app_name).source).unit
    app = get_app(app_name)
    report = run_once(benchmark, execute_unit, unit,
                      workload=app.workload_factory(), mode=mode)
    assert report.total_cycles() > 0


def _cold_fig5_seconds(extra_env):
    """Wall time of ``eval fig5`` in a fresh process, all caches off."""
    env = {k: v for k, v in os.environ.items()
           if k not in ("REPRO_CACHE_DIR", "REPRO_EXEC",
                        "REPRO_PROFILE_CACHE", "REPRO_FAULTS",
                        "REPRO_RETRIES")}
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra_env)
    t0 = time.perf_counter()
    subprocess.run([sys.executable, "-m", "repro.evalharness", "fig5"],
                   cwd=REPO_ROOT, env=env, check=True,
                   stdout=subprocess.DEVNULL)
    return time.perf_counter() - t0


def test_cold_fig5_snapshot(benchmark, tmp_path):
    """Cold-start Fig. 5 under four configurations; write the snapshot.

    ``compiled_traced`` runs with a ``$REPRO_TRACE_DIR`` JSONL sink
    attached, bounding the tracing-ON cost; the tracing-OFF overhead of
    the span layer (null-object ``span()`` calls on the hot paths) is
    covered by the plain ``compiled`` config against the
    ``MIN_COLD_FIG5_SPEEDUP`` bar -- measured at <1% when the layer
    landed."""
    configs = {
        "interp_baseline": {"REPRO_EXEC": "interp",
                            "REPRO_PROFILE_CACHE": "0"},
        "interp_shared_profile": {"REPRO_EXEC": "interp"},
        "compiled": {"REPRO_EXEC": "compiled"},
        "compiled_traced": {"REPRO_EXEC": "compiled",
                            "REPRO_TRACE_DIR": str(tmp_path)},
    }
    results = {}
    for name, extra in configs.items():
        if name == "compiled":
            # the headline number lands in the benchmark table too
            results[name] = run_once(benchmark, _cold_fig5_seconds, extra)
        else:
            results[name] = _cold_fig5_seconds(extra)

    speedup = results["interp_baseline"] / results["compiled"]
    trace_cost = results["compiled_traced"] / results["compiled"]
    snapshot = {
        "benchmark": "cold eval fig5 (fresh subprocess, caches disabled)",
        "configs": {
            name: {"env": {k: v for k, v in configs[name].items()
                           if k != "REPRO_TRACE_DIR"},
                   "wall_s": round(secs, 3)}
            for name, secs in results.items()
        },
        "speedup_compiled_vs_baseline": round(speedup, 2),
        "tracing_on_cost_ratio": round(trace_cost, 2),
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print()
    print(json.dumps(snapshot, indent=2))
    assert speedup >= MIN_COLD_FIG5_SPEEDUP, snapshot
    # tracing must stay cheap even when ON (spans stream to JSONL);
    # generous bar for noisy CI runners
    assert trace_cost <= 1.5, snapshot
