"""Bench: fleet scaling and node-loss chaos, written to BENCH_fleet.json.

Boots real ``python -m repro serve`` children (one worker each) behind
an in-process :class:`~repro.fleet.router.FleetRouter` and pushes one
batch of content-distinct kmeans jobs through the router with a
thread-pool of clients.

Design execution in this repo is CPU-light, so raw exec time cannot
show multi-node scaling on a small CI box; ``REPRO_SIM_LATENCY_S``
makes each job hold a worker for a fixed wall time -- the shape of a
real external-toolchain invocation (HLS, synthesis), which is exactly
the workload a fleet exists for.  The headline gate: four runners
deliver >= 3x the aggregate throughput of one.

The chaos test then SIGKILLs one of four runners mid-batch and
requires the batch to finish with zero lost and zero duplicated
results -- the router's placement table resubmits the dead node's
in-flight jobs to survivors.
"""

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.client import ReproClient
from repro.fleet.router import FleetRouter
from repro.fleet.runner import RunnerProcess
from repro.service.scheduler import JobResultPending

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATH = REPO_ROOT / "BENCH_fleet.json"

#: simulated per-job toolchain latency (seconds); high enough that the
#: fixed per-job routing/polling overhead cannot blur the scaling signal
SIM_LATENCY_S = 1.0
JOBS = 24
CLIENT_THREADS = 24
#: the acceptance bar: 4 runners vs 1 (theoretical ceiling 4.0; the
#: gap covers shard imbalance, router hops and shared-host noise)
MIN_FLEET_SPEEDUP = 3.0


class RouterThread:
    """An in-process FleetRouter on its own event loop thread."""

    def __init__(self, runner_urls, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("probe_interval_s", 0.5)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        self.router = FleetRouter(runner_urls, **kwargs)
        self._call(self.router.start())
        self.url = f"http://127.0.0.1:{self.router.port}"

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def _call(self, coro, timeout=60.0):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    def stop(self):
        self._call(self.router.shutdown())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


def _boot_runners(n, tmp_path, latency=SIM_LATENCY_S):
    runners = [
        RunnerProcess(cache_dir=str(tmp_path / f"cache-{i}"), workers=1,
                      env={"REPRO_SIM_LATENCY_S": str(latency)},
                      extra_args=["--max-queue", "64"])
        for i in range(n)
    ]
    for runner in runners:
        runner.wait_ready()
    return runners


def _warm_profiles(runners):
    """Pay each node's one-off profile cost outside the timed window."""
    for runner in runners:
        ReproClient(runner.url, backoff_s=0.1).run_flow(
            "kmeans", "informed", timeout=120)


def _job_kwargs(i):
    # distinct intensity thresholds: every job is a distinct content
    # hash (no dedup/cache shortcuts), same app profile
    return {"intensity_threshold": round(0.25 + i * 0.01, 4)}


def _run_batch(router_url, jobs=JOBS, threads=CLIENT_THREADS):
    """Push the batch through the router; returns (wall_s, records)."""

    def one(i):
        client = ReproClient(router_url, backoff_s=0.2,
                             poll_interval_s=0.1)
        return client.run_flow("kmeans", "informed", timeout=300,
                               **_job_kwargs(i))

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        records = list(pool.map(one, range(jobs)))
    return time.perf_counter() - start, records


def _fleet_throughput(n_runners, tmp_path):
    runners = _boot_runners(n_runners, tmp_path)
    # threshold 2: with the whole batch outstanding at once, stealing
    # is what evens the shards (hash affinity alone can leave a node
    # holding half the batch while others idle)
    router = RouterThread([r.url for r in runners], steal_threshold=2)
    try:
        _warm_profiles(runners)
        wall_s, records = _run_batch(router.url)
        assert len(records) == JOBS
        assert all(r.app_name == "kmeans" for r in records)
        return {
            "runners": n_runners,
            "jobs": JOBS,
            "wall_s": round(wall_s, 3),
            "jobs_per_s": round(JOBS / wall_s, 3),
        }
    finally:
        router.stop()
        for runner in runners:
            runner.stop()


def test_four_runners_triple_aggregate_throughput(tmp_path):
    single = _fleet_throughput(1, tmp_path / "single")
    fleet = _fleet_throughput(4, tmp_path / "fleet")
    speedup = fleet["jobs_per_s"] / single["jobs_per_s"]
    snapshot = {
        "sim_latency_s": SIM_LATENCY_S,
        "client_threads": CLIENT_THREADS,
        "single": single,
        "fleet4": fleet,
        "speedup": round(speedup, 2),
        "min_required": MIN_FLEET_SPEEDUP,
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\nfleet scaling: 1 runner {single['jobs_per_s']:.2f} jobs/s, "
          f"4 runners {fleet['jobs_per_s']:.2f} jobs/s "
          f"({speedup:.2f}x)")
    assert speedup >= MIN_FLEET_SPEEDUP, snapshot


def test_runner_kill_mid_batch_loses_nothing(tmp_path):
    runners = _boot_runners(4, tmp_path)
    router = RouterThread([r.url for r in runners])
    try:
        _warm_profiles(runners)
        submit = ReproClient(router.url, backoff_s=0.2)
        keys = [submit.submit("kmeans", "informed", **_job_kwargs(i))["id"]
                for i in range(JOBS)]
        assert len(set(keys)) == JOBS      # distinct content hashes
        # kill the node holding the most in-flight work, no warning
        placements = router.router._placements
        by_runner = {r.url: sum(1 for p in placements.values()
                                if p.runner == r.url and not p.done)
                     for r in runners}
        victim = max(runners, key=lambda r: by_runner[r.url])
        assert by_runner[victim.url] > 0, by_runner
        victim.kill()
        # the batch must still complete: every key, exactly one result
        deadline = time.monotonic() + 300
        records = {}
        poll = ReproClient(router.url, backoff_s=0.2,
                           poll_interval_s=0.1)
        pending = set(keys)
        while pending and time.monotonic() < deadline:
            for key in sorted(pending):
                try:
                    records[key] = poll.result(key)
                    pending.discard(key)
                except JobResultPending:
                    pass
            time.sleep(0.1)
        assert not pending, f"lost jobs after node kill: {sorted(pending)}"
        assert len(records) == JOBS
        assert all(r.app_name == "kmeans" for r in records.values())
        rerouted = router.router._m_reroutes.get(reason="node_loss")
        chaos = {
            "jobs": JOBS,
            "killed_runner_inflight": by_runner[victim.url],
            "rerouted_node_loss": rerouted,
            "lost": 0,
            "duplicated": 0,
        }
        if SNAPSHOT_PATH.exists():
            snapshot = json.loads(SNAPSHOT_PATH.read_text())
            snapshot["chaos"] = chaos
            SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"\nfleet chaos: killed {victim.url} holding "
              f"{by_runner[victim.url]} job(s); {rerouted} re-routed, "
              f"0 lost")
    finally:
        router.stop()
        for runner in runners:
            runner.stop()
