"""Static arithmetic-intensity analysis ("Arithmetic Intensity Analysis").

Estimates FLOPs per byte of memory traffic for a kernel function without
executing it, "to indicate if computations are compute- or memory-bound"
(paper §III).  The Fig. 3 strategy compares the result against a tunable
threshold ``X``.

Counting walks the kernel body weighting each operation by the product
of the static trip counts of its enclosing loops; loops with unknown
bounds contribute a nominal weight (both FLOPs and bytes scale by the
same factor, so the *ratio* is insensitive to the choice).  Expression
types come from :func:`repro.analysis.common.infer_type`, which also
yields the single/double precision split the platform models consume.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.analysis.common import SymbolTable, infer_type
from repro.analysis.trip_count import static_trip_count
from repro.lang.builtins import MATH_BUILTINS
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    Assign, BinaryOp, Call, CType, DoWhileStmt, ForStmt, FunctionDecl, Index,
    Node, UnaryOp, WhileStmt,
)

#: Nominal trip count assumed for loops whose bounds are not compile-time
#: constants.  Only the absolute FLOP/byte totals depend on it; the
#: FLOPs/B ratio the PSA strategy consumes is essentially invariant.
DEFAULT_TRIP_WEIGHT = 64

#: An FP divide is charged as several multiply-equivalents.
DIV_FLOPS = 4


class IntensityInfo(NamedTuple):
    flops_sp: float
    flops_dp: float
    bytes: float

    @property
    def flops(self) -> float:
        return self.flops_sp + self.flops_dp

    @property
    def flops_per_byte(self) -> float:
        """The FLOPs/B the Fig. 3 strategy compares against X."""
        return self.flops / self.bytes if self.bytes else float("inf")

    @property
    def sp_fraction(self) -> float:
        """Share of floating work in single precision (0 when no FLOPs)."""
        return self.flops_sp / self.flops if self.flops else 0.0

    def is_compute_bound(self, threshold: float) -> bool:
        return self.flops_per_byte > threshold


class _Accumulator:
    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols
        self.flops_sp = 0.0
        self.flops_dp = 0.0
        self.bytes = 0.0

    def _is_float(self, node) -> Optional[bool]:
        """None = not floating; True = single; False = double."""
        ctype = infer_type(node, self.symbols)
        if ctype is None:
            return False  # unknown: assume double (conservative)
        if not ctype.is_floating:
            return None
        return ctype.base == "float"

    def add_flops(self, count: float, single: bool) -> None:
        if single:
            self.flops_sp += count
        else:
            self.flops_dp += count

    def visit(self, node: Node, weight: float) -> None:
        if isinstance(node, ForStmt):
            trips = static_trip_count(node)
            inner = weight * (trips if trips is not None else DEFAULT_TRIP_WEIGHT)
            for child in (node.init, node.cond, node.inc):
                if child is not None:
                    self.visit(child, inner)
            self.visit(node.body, inner)
            return
        if isinstance(node, (WhileStmt, DoWhileStmt)):
            inner = weight * DEFAULT_TRIP_WEIGHT
            self.visit(node.cond, inner)
            self.visit(node.body, inner)
            return

        if isinstance(node, BinaryOp) and node.op in BinaryOp.ARITH:
            single = self._is_float(node)
            if single is not None:
                cost = DIV_FLOPS if node.op == "/" else 1
                self.add_flops(weight * cost, single)
        elif isinstance(node, UnaryOp) and node.op == "-" and node.prefix:
            single = self._is_float(node.operand)
            if single is not None:
                self.add_flops(weight, single)
        elif isinstance(node, Assign) and node.op != "=":
            single = self._is_float(node.target)
            if single is not None:
                cost = DIV_FLOPS if node.op == "/=" else 1
                self.add_flops(weight * cost, single)
            if isinstance(node.target, Index):
                # compound update re-reads the element
                self._count_access(node.target, weight)
        elif isinstance(node, Call):
            spec = MATH_BUILTINS.get(node.name)
            if spec is not None:
                self.add_flops(weight * spec.flop_cost, spec.single_precision)
        elif isinstance(node, Index):
            parent = node.parent
            if not isinstance(parent, Index):  # count outermost subscript only
                self._count_access(node, weight)

        for child in node.children():
            self.visit(child, weight)

    def _count_access(self, node: Index, weight: float) -> None:
        base = node.base
        while isinstance(base, Index):
            base = base.base
        from repro.meta.ast_nodes import Ident

        if isinstance(base, Ident) and self.symbols.is_local_array(base.name):
            return  # stack arrays live in registers/L1, not DRAM
        ctype = infer_type(node, self.symbols)
        size = ctype.sizeof() if ctype is not None else 8
        self.bytes += weight * size


def analyze_intensity(ast: Ast, fn_name: str) -> IntensityInfo:
    """Static FLOPs/B estimate for the kernel function ``fn_name``."""
    fn = ast.function(fn_name)
    if fn.body is None:
        raise ValueError(f"{fn_name}() has no body")
    symbols = SymbolTable(fn, ast.unit)
    acc = _Accumulator(symbols)
    acc.visit(fn.body, 1.0)
    return IntensityInfo(acc.flops_sp, acc.flops_dp, max(acc.bytes, 1.0))
