"""Shared analysis machinery.

- :class:`LoopPath` -- a stable, clone-independent way to name a loop
  (analyses instrument *clones* of the reference AST, so results must be
  mapped back to the original by position, not identity);
- :class:`SymbolTable` -- declared types of names visible in a function;
- :func:`affine_form` -- canonical ``{var: coef, 1: const}`` form of an
  affine subscript expression, or ``None`` if non-affine;
- :func:`infer_type` -- static C type of an expression (drives the
  FLOPs/B analysis and the single-precision transforms).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Union

from repro.lang.builtins import MATH_BUILTINS
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    Assign, BinaryOp, BoolLit, Call, Cast, CType, DeclStmt, Expr, FloatLit,
    ForStmt, FunctionDecl, Ident, Index, IntLit, Node, StringLit, Ternary,
    TranslationUnit, UnaryOp,
)


class LoopPath(NamedTuple):
    """Names the ``index``-th for-loop (pre-order) of function ``fn_name``."""

    fn_name: str
    index: int

    def __str__(self):
        return f"{self.fn_name}#loop{self.index}"


def loop_path(loop: ForStmt) -> LoopPath:
    """Compute the :class:`LoopPath` of a loop node in its tree."""
    fn = loop.enclosing(FunctionDecl)
    if fn is None:
        raise ValueError("loop is not inside a function")
    loops = fn.loops()
    for i, candidate in enumerate(loops):
        if candidate is loop:
            return LoopPath(fn.name, i)
    raise ValueError("loop not found in its own function")


def resolve_loop(ast_or_unit: Union[Ast, TranslationUnit],
                 path: LoopPath) -> ForStmt:
    """Find the loop named by ``path`` in (a clone of) the program."""
    unit = ast_or_unit.unit if isinstance(ast_or_unit, Ast) else ast_or_unit
    fn = unit.function(path.fn_name)
    loops = fn.loops()
    if path.index >= len(loops):
        raise ValueError(f"{path} out of range ({len(loops)} loops)")
    return loops[path.index]


class SymbolTable:
    """Types of names visible inside one function (params, locals, globals)."""

    def __init__(self, fn: FunctionDecl, unit: Optional[TranslationUnit] = None):
        self.types: Dict[str, CType] = {}
        #: names declared as stack arrays inside the function -- they
        #: live in registers/BRAM/L1 and never reach DRAM
        self.local_arrays: set = set()
        if unit is None:
            parent = fn.parent
            unit = parent if isinstance(parent, TranslationUnit) else None
        if unit is not None:
            for decl in unit.decls:
                if isinstance(decl, DeclStmt):
                    for var in decl.decls:
                        self.types[var.name] = self._decl_type(var)
        for param in fn.params:
            self.types[param.name] = param.ctype
        if fn.body is not None:
            for node in fn.body.walk():
                if isinstance(node, DeclStmt):
                    for var in node.decls:
                        self.types[var.name] = self._decl_type(var)
                        if var.is_array:
                            self.local_arrays.add(var.name)

    @staticmethod
    def _decl_type(var) -> CType:
        # `T a[n]` decays to `T*` for analysis purposes
        if var.is_array:
            return var.ctype.pointer_to()
        return var.ctype

    def type_of(self, name: str) -> Optional[CType]:
        return self.types.get(name)

    def is_local_array(self, name: str) -> bool:
        return name in self.local_arrays

    def __contains__(self, name: str) -> bool:
        return name in self.types


AffineForm = Dict[Union[str, int], int]  # {var_name: coef, 1: constant}


def affine_form(expr: Expr) -> Optional[AffineForm]:
    """Canonical affine form of an integer expression, or None.

    Handles ``+ - *`` with integer-literal scaling (``i * d + k``).
    Non-affine shapes (variable*variable, division, array loads used as
    subscripts such as ``c[labels[i]]``) return ``None`` -- the
    dependence analysis treats those conservatively.
    """
    if isinstance(expr, IntLit):
        return {1: expr.value}
    if isinstance(expr, Ident):
        return {expr.name: 1, 1: 0}
    if isinstance(expr, UnaryOp) and expr.op == "-" and expr.prefix:
        inner = affine_form(expr.operand)
        if inner is None:
            return None
        return {k: -v for k, v in inner.items()}
    if isinstance(expr, BinaryOp):
        if expr.op in ("+", "-"):
            lhs = affine_form(expr.lhs)
            rhs = affine_form(expr.rhs)
            if lhs is None or rhs is None:
                return None
            sign = 1 if expr.op == "+" else -1
            out: AffineForm = dict(lhs)
            out.setdefault(1, 0)
            for key, coef in rhs.items():
                out[key] = out.get(key, 0) + sign * coef
            return {k: v for k, v in out.items() if v != 0 or k == 1}
        if expr.op == "*":
            lhs = affine_form(expr.lhs)
            rhs = affine_form(expr.rhs)
            if lhs is None or rhs is None:
                return None
            lconst = set(lhs) <= {1}
            rconst = set(rhs) <= {1}
            if lconst:
                factor = lhs.get(1, 0)
                return {k: v * factor for k, v in rhs.items()}
            if rconst:
                factor = rhs.get(1, 0)
                return {k: v * factor for k, v in lhs.items()}
            return None
    return None


def affine_coefficient(form: AffineForm, var: str) -> int:
    return form.get(var, 0)


def uses_var(form: AffineForm, var: str) -> bool:
    return form.get(var, 0) != 0


_PROMOTION = {"bool": 0, "int": 1, "long": 2, "float": 3, "double": 4}


def _promote(a: CType, b: CType) -> CType:
    if a.is_pointer:
        return a
    if b.is_pointer:
        return b
    return a if _PROMOTION[a.base] >= _PROMOTION[b.base] else b


def infer_type(expr: Expr, symbols: SymbolTable) -> Optional[CType]:
    """Static type of an expression under C promotion rules.

    Returns ``None`` for names/calls whose type cannot be determined
    (callers treat unknown as double -- the conservative choice for the
    single-precision transforms, which must never downgrade silently).
    """
    if isinstance(expr, IntLit):
        return CType("long" if "l" in expr.suffix.lower() else "int")
    if isinstance(expr, FloatLit):
        return CType("float" if expr.is_single else "double")
    if isinstance(expr, BoolLit):
        return CType("bool")
    if isinstance(expr, StringLit):
        return None
    if isinstance(expr, Ident):
        return symbols.type_of(expr.name)
    if isinstance(expr, Index):
        base = infer_type(expr.base, symbols)
        if base is None or not base.is_pointer:
            return None
        return base.element_type()
    if isinstance(expr, UnaryOp):
        if expr.op == "*":
            base = infer_type(expr.operand, symbols)
            if base is None or not base.is_pointer:
                return None
            return base.element_type()
        if expr.op == "&":
            base = infer_type(expr.operand, symbols)
            return base.pointer_to() if base is not None else None
        if expr.op == "!":
            return CType("int")
        return infer_type(expr.operand, symbols)
    if isinstance(expr, Cast):
        return expr.ctype
    if isinstance(expr, Assign):
        return infer_type(expr.target, symbols)
    if isinstance(expr, Ternary):
        then = infer_type(expr.then, symbols)
        els = infer_type(expr.els, symbols)
        if then is None or els is None:
            return then or els
        return _promote(then, els)
    if isinstance(expr, BinaryOp):
        if expr.op in BinaryOp.COMPARE or expr.op in BinaryOp.LOGICAL:
            return CType("int")
        lhs = infer_type(expr.lhs, symbols)
        rhs = infer_type(expr.rhs, symbols)
        if lhs is None or rhs is None:
            return lhs or rhs
        return _promote(lhs, rhs)
    if isinstance(expr, Call):
        spec = MATH_BUILTINS.get(expr.name)
        if spec is not None:
            return CType("float" if spec.single_precision else "double")
        if expr.name in ("ws_int",):
            return CType("int")
        if expr.name in ("ws_double", "rand01"):
            return CType("double")
        if expr.name == "ws_float":
            return CType("float")
        if expr.name == "ws_array_double":
            return CType("double", 1)
        if expr.name == "ws_array_float":
            return CType("float", 1)
        if expr.name == "ws_array_int":
            return CType("int", 1)
        # user function: look up its declaration
        node: Optional[Node] = expr
        while node is not None and not isinstance(node, TranslationUnit):
            node = node.parent
        if isinstance(node, TranslationUnit) and node.has_function(expr.name):
            return node.function(expr.name).return_type
        return None
    return None
