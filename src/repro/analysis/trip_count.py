"""Loop trip-count analysis ("Loop Trip-Count Analysis", Fig. 4).

Two complementary views, matching the paper:

- :func:`static_trip_count` -- compile-time trip count of a loop whose
  bounds are integer literals (``for (int j = 0; j < 16; j++)``).  The
  FPGA path's "can fully unroll?" decision (Fig. 3) and the "Unroll
  Fixed Loops" transform need this.
- :func:`analyze_trip_counts` -- dynamic characterisation: execute the
  program and record per-loop entry counts and iteration statistics
  (the paper marks this task as requiring program execution).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional

from repro.analysis.common import LoopPath, loop_path
from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    Assign, BinaryOp, DeclStmt, ExprStmt, ForStmt, FunctionDecl, Ident,
    IntLit, UnaryOp,
)


class TripCountInfo(NamedTuple):
    path: LoopPath
    entries: int              # dynamic entries observed
    total_iterations: int
    min_trips: int
    max_trips: int
    avg_trips: float
    constant: bool            # same dynamic trip count at every entry
    static_trips: Optional[int]  # compile-time trip count, if bounds fixed

    @property
    def fixed_bounds(self) -> bool:
        """Bounds known at compile time (the FPGA unrollability test)."""
        return self.static_trips is not None


def _literal_init(loop: ForStmt) -> Optional[int]:
    init = loop.init
    if isinstance(init, DeclStmt) and len(init.decls) == 1:
        value = init.decls[0].init
        if isinstance(value, IntLit):
            return value.value
        return None
    if isinstance(init, ExprStmt) and isinstance(init.expr, Assign) \
            and init.expr.op == "=" and isinstance(init.expr.value, IntLit):
        return init.expr.value.value
    return None


def _literal_bound(loop: ForStmt, var: str) -> Optional[tuple]:
    cond = loop.cond
    if isinstance(cond, BinaryOp) and cond.op in ("<", "<=") \
            and isinstance(cond.lhs, Ident) and cond.lhs.name == var \
            and isinstance(cond.rhs, IntLit):
        return cond.op, cond.rhs.value
    return None


def _literal_step(loop: ForStmt, var: str) -> Optional[int]:
    inc = loop.inc
    if isinstance(inc, UnaryOp) and inc.op == "++" \
            and isinstance(inc.operand, Ident) and inc.operand.name == var:
        return 1
    if isinstance(inc, UnaryOp) and inc.op == "--" \
            and isinstance(inc.operand, Ident) and inc.operand.name == var:
        return -1
    if isinstance(inc, Assign) and inc.op == "+=" \
            and isinstance(inc.target, Ident) and inc.target.name == var \
            and isinstance(inc.value, IntLit):
        return inc.value.value
    return None


def static_trip_count(loop: ForStmt) -> Optional[int]:
    """Compile-time trip count for literal-bound canonical loops, else None."""
    var = loop.loop_var()
    if var is None:
        return None
    start = _literal_init(loop)
    bound = _literal_bound(loop, var)
    step = _literal_step(loop, var)
    if start is None or bound is None or step is None or step <= 0:
        return None
    op, limit = bound
    if op == "<=":
        limit += 1
    if limit <= start:
        return 0
    return (limit - start + step - 1) // step


def analyze_trip_counts(ast: Ast, workload: Workload, fn_name: str,
                        entry: str = "main") -> Dict[LoopPath, TripCountInfo]:
    """Dynamic trip-count characterisation of every loop in ``fn_name``.

    Runs the (un-instrumented) program -- the interpreter records trip
    counts natively, standing in for counter instrumentation -- and
    joins the dynamic records with the static view.
    """
    fn = ast.function(fn_name)
    loops = fn.loops()
    from repro.analysis.profile import collect_profile
    report = collect_profile(ast, workload, entry=entry)

    results: Dict[LoopPath, TripCountInfo] = {}
    for loop in loops:
        path = loop_path(loop)
        profile = report.loop_profiles.get(loop.node_id)
        static = static_trip_count(loop)
        if profile is None or profile.entries == 0:
            results[path] = TripCountInfo(path, 0, 0, 0, 0, 0.0,
                                          False, static)
        else:
            results[path] = TripCountInfo(
                path, profile.entries, profile.total_iterations,
                profile.min_trips, profile.max_trips, profile.avg_trips,
                profile.constant_trips, static)
    return results
