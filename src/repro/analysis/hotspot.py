"""Dynamic hotspot loop identification ("Identify Hotspot Loops", Fig. 4).

Exactly the mechanism the paper describes for Fig. 3: "Hotspot detection
instruments the application with loop timers and executes the
instrumented code to dynamically identify time-consuming loops as
candidates for acceleration."

The meta-program:

1. clones the reference AST (the reference itself is never modified);
2. queries the outermost for-loops of the entry function;
3. wraps each in ``timer_start("...")`` / ``timer_stop("...")`` calls;
4. executes the instrumented program on the workload;
5. ranks loops by measured (virtual-clock) time share.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.analysis.common import LoopPath, loop_path, resolve_loop
from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast
from repro.meta.instrument import wrap_around


class HotspotInfo(NamedTuple):
    """One timed candidate loop."""

    path: LoopPath          # position of the loop in the *reference* AST
    cycles: float           # virtual-clock time inside the loop
    fraction: float         # share of total program time

    @property
    def timer_id(self) -> str:
        return str(self.path)


def identify_hotspot_loops(ast: Ast, workload: Workload,
                           entry: str = "main",
                           min_fraction: float = 0.0) -> List[HotspotInfo]:
    """Time every outermost loop of ``entry``; return hotspots, hottest first.

    ``min_fraction`` filters out loops below a time-share threshold
    (setup/teardown loops).  The returned loop paths refer to the
    reference ``ast`` so downstream tasks (extraction) can resolve them.
    """
    candidates = ast.outermost_loops(entry)
    if not candidates:
        return []
    paths = [loop_path(loop) for loop in candidates]

    instrumented = ast.clone()
    for path in paths:
        loop = resolve_loop(instrumented, path)
        timer = str(path)
        wrap_around(loop,
                    prologue=[f'timer_start("{timer}");'],
                    epilogue=[f'timer_stop("{timer}");'])

    from repro.analysis.profile import collect_profile
    report = collect_profile(instrumented, workload, entry=entry)
    total = report.total_cycles() or 1.0

    infos = [HotspotInfo(path=path,
                         cycles=report.timer(str(path)),
                         fraction=report.timer(str(path)) / total)
             for path in paths]
    infos.sort(key=lambda info: info.cycles, reverse=True)
    return [info for info in infos if info.fraction >= min_fraction]


def hottest_loop(ast: Ast, workload: Workload,
                 entry: str = "main") -> Optional[HotspotInfo]:
    """Convenience: the single most time-consuming outermost loop."""
    infos = identify_hotspot_loops(ast, workload, entry)
    return infos[0] if infos else None
