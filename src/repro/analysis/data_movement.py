"""Dynamic data in/out analysis ("Data In/Out Analysis", Fig. 4).

Quantifies the transfer requirements of offloading a kernel: which
buffers must be copied *to* the accelerator before the kernel runs
(read before written), which must be copied *back* (written), and how
many bytes each direction moves.  Offload runtimes transfer whole
buffers, so sizes are buffer extents, matching how the paper compares
``T_data_trnsfr`` against ``T_CPU`` in the Fig. 3 strategy.

The task executes the program (it is marked dynamic in Fig. 4) and
reads the per-function array-access records the interpreter collects --
the equivalent of running the application under a transfer profiler.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple

from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast


class BufferTraffic(NamedTuple):
    name: str
    nbytes: int
    direction: str  # 'in' | 'out' | 'inout'


class DataMovementInfo(NamedTuple):
    fn_name: str
    buffers: Tuple[BufferTraffic, ...]
    kernel_calls: int

    @property
    def bytes_in(self) -> int:
        return sum(b.nbytes for b in self.buffers
                   if b.direction in ("in", "inout"))

    @property
    def bytes_out(self) -> int:
        return sum(b.nbytes for b in self.buffers
                   if b.direction in ("out", "inout"))

    @property
    def total_bytes(self) -> int:
        return self.bytes_in + self.bytes_out

    def buffer(self, name: str) -> BufferTraffic:
        for buf in self.buffers:
            if buf.name == name:
                return buf
        raise KeyError(name)


def analyze_data_movement(ast: Ast, workload: Workload, fn_name: str,
                          entry: str = "main") -> DataMovementInfo:
    """Transfer requirements of offloading ``fn_name`` as observed at runtime."""
    from repro.analysis.profile import collect_profile
    report = collect_profile(ast, workload, entry=entry)
    records = report.arrays_touched_by(fn_name)
    buffers = []
    for rec in records.values():
        if rec.is_input and rec.is_output:
            direction = "inout"
        elif rec.is_output:
            direction = "out"
        elif rec.is_input:
            direction = "in"
        else:
            continue  # bound but never touched
        buffers.append(BufferTraffic(rec.name, rec.nbytes, direction))
    buffers.sort(key=lambda b: b.name)
    calls = len(report.calls_of(fn_name))
    return DataMovementInfo(fn_name, tuple(buffers), calls)
