"""Target-independent analysis tasks (the ``A`` rows of Fig. 4).

Each module implements one codified analysis meta-program:

- :mod:`hotspot` -- dynamic hotspot loop identification (loop timers);
- :mod:`trip_count` -- dynamic + static loop trip-count analysis;
- :mod:`dependence` -- static loop-carried dependence analysis;
- :mod:`intensity` -- static arithmetic-intensity (FLOPs/B) analysis;
- :mod:`data_movement` -- dynamic data in/out analysis;
- :mod:`pointer_alias` -- dynamic pointer alias analysis.

Shared machinery (loop paths, symbol tables, affine subscript forms,
static expression typing) lives in :mod:`common`.
"""

from repro.analysis.common import (
    LoopPath, SymbolTable, affine_form, infer_type, loop_path, resolve_loop,
)
from repro.analysis.access_pattern import AccessPatternInfo, analyze_access_pattern
from repro.analysis.dependence import DependenceInfo, analyze_dependences
from repro.analysis.data_movement import DataMovementInfo, analyze_data_movement
from repro.analysis.hotspot import HotspotInfo, identify_hotspot_loops
from repro.analysis.intensity import IntensityInfo, analyze_intensity
from repro.analysis.pointer_alias import AliasInfo, analyze_pointer_aliasing
from repro.analysis.profile import (
    clear_profile_cache, collect_profile, profile_cache_stats,
)
from repro.analysis.trip_count import (
    TripCountInfo, analyze_trip_counts, static_trip_count,
)

__all__ = [
    "LoopPath",
    "SymbolTable",
    "affine_form",
    "infer_type",
    "loop_path",
    "resolve_loop",
    "HotspotInfo",
    "identify_hotspot_loops",
    "AccessPatternInfo",
    "analyze_access_pattern",
    "DependenceInfo",
    "analyze_dependences",
    "TripCountInfo",
    "analyze_trip_counts",
    "static_trip_count",
    "IntensityInfo",
    "analyze_intensity",
    "DataMovementInfo",
    "analyze_data_movement",
    "AliasInfo",
    "analyze_pointer_aliasing",
    "collect_profile",
    "clear_profile_cache",
    "profile_cache_stats",
]
