"""One-pass shared profiling: one dynamic execution per (source, workload).

Every dynamic analysis in the flow (hotspot detection, trip counts,
data movement, pointer aliasing) consumes an :class:`ExecReport`.
Historically each consumer executed the program itself, so a full flow
ran the same (source, workload) pair several times -- and fig5-style
harness runs, which evaluate the informed and uninformed flows over the
same apps, doubled that again.

:func:`collect_profile` is the single funnel for those analysis
executions.  It keys the run by ``sha256(source || workload-spec ||
entry || engine)`` and keeps a process-wide in-memory cache plus an
optional disk layer under ``$REPRO_CACHE_DIR/profiles/`` (the same
cache root the design service uses).  On a hit the serialized profile
is re-materialized as a fresh :class:`ExecReport` bound to the *caller's*
unit: loop profiles are stored under stable ``"{fn}#L{idx}"`` pre-order
keys and rebound to the current unit's node ids, and pointer-event
array ids are densely renumbered by first appearance (allocation ids
are process-global counters, so raw ids never match across runs; only
their equality structure matters to alias analysis).

Only analysis runs go through this module.  Oracle/correctness runs
that inspect workload buffers afterwards must keep calling
``Ast.execute`` directly -- a cache hit here performs no execution and
therefore fills no buffers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.lang.profiler import (
    ArrayAccessRecord, Counter, ExecReport, LoopProfile, PointerArgEvent,
)
from repro.meta.ast_nodes import (
    DoWhileStmt, ForStmt, TranslationUnit, WhileStmt,
)
from repro.meta.unparse import unparse
from repro.resilience import faults

PROFILE_FORMAT_VERSION = 1

_LOOP_KINDS = (ForStmt, WhileStmt, DoWhileStmt)

# key -> serialized profile dict (unit-independent form)
_memory: Dict[str, Dict[str, Any]] = {}

# guards _memory and _stats: the service runs jobs on threads.  The lock
# is never held across an execution, so two threads missing on the same
# key may both execute -- benign, the second store is idempotent.
_lock = threading.Lock()


class ProfileCacheStats:
    """Counters for tests and telemetry."""

    __slots__ = ("lookups", "memory_hits", "disk_hits", "misses",
                 "executions", "stores", "uncacheable")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.lookups = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.executions = 0
        self.stores = 0
        self.uncacheable = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


_stats = ProfileCacheStats()

#: push-side tier accounting (memory / disk / miss / uncacheable /
#: bypass); ``_stats`` remains the exact source of truth for tests
_TIER_TOTAL = obs.REGISTRY.counter(
    "repro_profile_cache_total",
    "profile-cache lookups by resolution tier",
    ("tier",))


def _export_stats(registry: "obs.MetricsRegistry") -> None:
    """Pull collector: mirror ProfileCacheStats into the registry."""
    gauge = registry.gauge("repro_profile_cache_stats",
                           "live ProfileCacheStats fields",
                           ("field",))
    for name, value in _stats.as_dict().items():
        gauge.set(value, field=name)


obs.REGISTRY.register_collector(_export_stats)


def profile_cache_stats() -> ProfileCacheStats:
    return _stats


def clear_profile_cache() -> None:
    """Drop the in-memory layer and reset stats (tests).

    Stats are reset in place so observers holding the object returned
    by :func:`profile_cache_stats` keep seeing the live counters.
    """
    with _lock:
        _memory.clear()
        _stats.reset()


# -------------------------------------------------------------------------
# Keys.
# -------------------------------------------------------------------------
def stable_loop_keys(unit: TranslationUnit) -> Dict[int, str]:
    """node_id -> ``"{fn}#L{idx}"`` by pre-order loop position.

    Node ids come from a process-global counter, so two parses of the
    same source disagree on them; the pre-order index within each
    function is a property of the source alone.
    """
    keys: Dict[int, str] = {}
    for fn in unit.functions():
        idx = 0
        for node in fn.walk():
            if isinstance(node, _LOOP_KINDS):
                keys[node.node_id] = f"{fn.name}#L{idx}"
                idx += 1
    return keys


def workload_fingerprint(workload) -> Optional[str]:
    """Deterministic digest of the workload *spec* (not its buffers)."""
    try:
        spec = {
            "scalars": sorted(workload.scalars.items()),
            "arrays": sorted(
                (name, list(vals))
                for name, vals in workload._initial_arrays.items()),
            "seed": workload.seed,
        }
        return hashlib.sha256(
            json.dumps(spec, sort_keys=True).encode("utf-8")).hexdigest()
    except (AttributeError, TypeError, ValueError):
        return None


def profile_key(source: str, wfp: str, entry: str, mode: str,
                max_steps: Optional[int] = None,
                space: Optional[str] = None) -> str:
    parts = [source, wfp, entry, mode]
    if max_steps is not None:
        # a step-limited run is not interchangeable with a full run: a
        # cached full report would silently un-enforce the limit
        parts.append(f"max_steps={max_steps}")
    if space is not None:
        # batched DSE extends the identity with the *design space*: a
        # sweep-shared profile is keyed once for the whole ParamGrid
        # (repro.lang.batch.ParamGrid.space_hash), not per candidate
        parts.append(f"space={space}")
    blob = "\x00".join(parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -------------------------------------------------------------------------
# Serialization (unit-independent).
# -------------------------------------------------------------------------
_PRIMITIVES = (type(None), bool, int, float, str)


def serialize_report(report: ExecReport,
                     unit: TranslationUnit) -> Optional[Dict[str, Any]]:
    """Unit-independent dict form, or None when not serializable."""
    if not isinstance(report.return_value, _PRIMITIVES):
        return None
    loop_keys = stable_loop_keys(unit)
    loops: Dict[str, Any] = {}
    for node_id, prof in report.loop_profiles.items():
        key = loop_keys.get(node_id)
        if key is None:
            return None  # loop outside any function: don't cache
        loops[key] = {
            "entries": prof.entries,
            "trip_counts": list(prof.trip_counts),
            "inclusive": prof.inclusive.as_dict(),
        }
    renumber: Dict[int, int] = {}
    events: List[Any] = []
    for ev in report.pointer_events:
        args = []
        for pname, array_id, offset, extent in ev.args:
            norm = renumber.setdefault(array_id, len(renumber))
            args.append([pname, norm, offset, extent])
        events.append([ev.fn_name, args])
    return {
        "format": PROFILE_FORMAT_VERSION,
        "global_counter": report.global_counter.as_dict(),
        "loops": loops,
        "timers": dict(report.timers),
        "fn_array_access": {
            fn: {
                name: [rec.nbytes, rec.elem_size, rec.reads, rec.writes,
                       bool(rec.read_before_write)]
                for name, rec in recs.items()
            }
            for fn, recs in report.fn_array_access.items()
        },
        "pointer_events": events,
        "stdout": list(report.stdout),
        "return_value": report.return_value,
        "steps": report.steps,
    }


def deserialize_report(data: Dict[str, Any],
                       unit: TranslationUnit) -> Optional[ExecReport]:
    """Fresh :class:`ExecReport` with loop profiles rebound to ``unit``."""
    if data.get("format") != PROFILE_FORMAT_VERSION:
        return None
    node_ids = {key: nid for nid, key in stable_loop_keys(unit).items()}
    report = ExecReport()
    for name, value in data["global_counter"].items():
        setattr(report.global_counter, name, value)
    for key, rec in data["loops"].items():
        node_id = node_ids.get(key)
        if node_id is None:
            return None  # source/unit mismatch: treat as a miss
        prof = LoopProfile(node_id)
        prof.entries = rec["entries"]
        prof.trip_counts = list(rec["trip_counts"])
        for cname, value in rec["inclusive"].items():
            setattr(prof.inclusive, cname, value)
        report.loop_profiles[node_id] = prof
    report.timers = dict(data["timers"])
    for fn, recs in data["fn_array_access"].items():
        merged = report.fn_array_access.setdefault(fn, {})
        for name, (nbytes, elem_size, reads, writes, rbw) in recs.items():
            rec = ArrayAccessRecord(name, nbytes, elem_size)
            rec.reads = reads
            rec.writes = writes
            rec.read_before_write = rbw
            merged[name] = rec
    for fn_name, args in data["pointer_events"]:
        report.pointer_events.append(
            PointerArgEvent(fn_name, [tuple(a) for a in args]))
    report.stdout = list(data["stdout"])
    report.return_value = data["return_value"]
    report.steps = data["steps"]
    return report


def normalized_pointer_events(report: ExecReport) -> List[Tuple]:
    """Pointer events with array ids densely renumbered by first
    appearance -- the engine-independent comparable form (tests)."""
    renumber: Dict[int, int] = {}
    out: List[Tuple] = []
    for ev in report.pointer_events:
        args = tuple(
            (pname, renumber.setdefault(array_id, len(renumber)),
             offset, extent)
            for pname, array_id, offset, extent in ev.args)
        out.append((ev.fn_name, args))
    return out


# -------------------------------------------------------------------------
# Disk layer (optional, under the service cache root).
# -------------------------------------------------------------------------
def _profiles_dir() -> Optional[str]:
    root = os.environ.get("REPRO_CACHE_DIR") or None
    if not root:
        return None
    return os.path.join(root, "profiles")


def _disk_path(root: str, key: str) -> str:
    return os.path.join(root, key[:2], f"{key}.json")


def _disk_get(key: str) -> Optional[Dict[str, Any]]:
    root = _profiles_dir()
    if root is None:
        return None
    try:
        faults.inject("profile.disk")
        with open(_disk_path(root, key), "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (faults.InjectedFault, OSError, json.JSONDecodeError,
            ValueError):
        # the disk tier is an accelerator, never a dependency: any
        # read problem is a miss and the profile re-derives
        return None


def _disk_put(key: str, data: Dict[str, Any]) -> None:
    root = _profiles_dir()
    if root is None:
        return
    path = _disk_path(root, key)
    try:
        faults.inject("profile.disk")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(data, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except (faults.InjectedFault, OSError):
        pass  # cache persistence is best-effort


# -------------------------------------------------------------------------
# The funnel.
# -------------------------------------------------------------------------
def collect_profile(ast, workload, entry: str = "main",
                    max_steps: Optional[int] = None,
                    space: Optional[str] = None) -> ExecReport:
    """The shared ``exec(ast)`` of every dynamic analysis.

    Executes ``entry`` against a fresh copy of ``workload`` -- at most
    once per (source, workload spec, entry, engine) process-wide -- and
    returns the resulting report.  Cache hits return a *new*
    :class:`ExecReport` object each call, rebound to ``ast``'s unit.

    ``space`` (a ``ParamGrid.space_hash``) scopes the entry to one
    batched design-space sweep: candidates of the same space share the
    profile, while sweeps over different spaces never collide.
    """
    from repro.lang.engine import execute_unit, execution_mode

    unit = ast.unit if hasattr(ast, "unit") else ast
    with obs.span("profile.collect", entry=entry) as sp:
        if os.environ.get("REPRO_PROFILE_CACHE", "1").strip() == "0":
            # escape hatch: every analysis re-executes, as before this
            # layer
            with _lock:
                _stats.executions += 1
            _TIER_TOTAL.inc(tier="bypass")
            sp.set(tier="bypass")
            return execute_unit(unit, workload=workload.fresh(),
                                entry=entry, max_steps=max_steps)
        wfp = workload_fingerprint(workload)
        if wfp is None:  # exotic workload object: execute uncached
            with _lock:
                _stats.uncacheable += 1
                _stats.executions += 1
            _TIER_TOTAL.inc(tier="uncacheable")
            sp.set(tier="uncacheable")
            return execute_unit(unit, workload=workload.fresh(),
                                entry=entry, max_steps=max_steps)
        key = profile_key(unparse(unit), wfp, entry, execution_mode(),
                          max_steps, space)
        with _lock:
            _stats.lookups += 1
            data = _memory.get(key)
        if data is not None:
            report = deserialize_report(data, unit)
            if report is not None:
                with _lock:
                    _stats.memory_hits += 1
                _TIER_TOTAL.inc(tier="memory")
                sp.set(tier="memory")
                return report
        data = _disk_get(key)
        if data is not None:
            report = deserialize_report(data, unit)
            if report is not None:
                with _lock:
                    _stats.disk_hits += 1
                    _memory[key] = data
                _TIER_TOTAL.inc(tier="disk")
                sp.set(tier="disk")
                return report
        with _lock:
            _stats.misses += 1
            _stats.executions += 1
        _TIER_TOTAL.inc(tier="miss")
        sp.set(tier="miss")
        report = execute_unit(unit, workload=workload.fresh(),
                              entry=entry, max_steps=max_steps)
        data = serialize_report(report, unit)
        if data is not None:
            with _lock:
                _memory[key] = data
                _stats.stores += 1
            _disk_put(key, data)
        else:
            with _lock:
                _stats.uncacheable += 1
        return report
