"""Static memory access-pattern analysis.

Classifies each buffer access in a kernel as *streamed* (affine
subscript: unit/fixed stride, coalescable, prefetchable) or *gather*
(data-dependent subscript such as ``w[idx[i * F + j]]`` -- AdPredictor's
weight-table lookups).  The GPU and FPGA models pay reduced bandwidth
efficiency on the gather share.

Weighted like the arithmetic-intensity analysis: by static trip counts
of enclosing loops, nominal weight for unknown bounds (the *fraction*
is insensitive to the nominal value).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.analysis.common import SymbolTable, affine_form, infer_type
from repro.analysis.intensity import DEFAULT_TRIP_WEIGHT
from repro.analysis.trip_count import static_trip_count
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    DoWhileStmt, ForStmt, Index, Node, WhileStmt,
)


class AccessPatternInfo(NamedTuple):
    streamed_bytes: float
    gather_bytes: float
    #: buffer names accessed through data-dependent subscripts
    gather_buffers: frozenset = frozenset()

    @property
    def total_bytes(self) -> float:
        return self.streamed_bytes + self.gather_bytes

    @property
    def gather_fraction(self) -> float:
        total = self.total_bytes
        return self.gather_bytes / total if total else 0.0


def _walk(node: Node, weight: float, symbols: SymbolTable,
          acc: list) -> None:
    if isinstance(node, ForStmt):
        trips = static_trip_count(node)
        inner = weight * (trips if trips is not None else DEFAULT_TRIP_WEIGHT)
        for child in node.children():
            _walk(child, inner, symbols, acc)
        return
    if isinstance(node, (WhileStmt, DoWhileStmt)):
        inner = weight * DEFAULT_TRIP_WEIGHT
        for child in node.children():
            _walk(child, inner, symbols, acc)
        return
    if isinstance(node, Index) and not isinstance(node.parent, Index):
        from repro.meta.ast_nodes import Ident

        base = node.base
        while isinstance(base, Index):
            base = base.base
        name = base.name if isinstance(base, Ident) else None
        if name is not None and symbols.is_local_array(name):
            _walk(node.index, weight, symbols, acc)
            return  # stack arrays never reach DRAM
        ctype = infer_type(node, symbols)
        size = ctype.sizeof() if ctype is not None else 8
        is_gather = affine_form(node.index) is None
        acc.append((weight * size, is_gather, name))
        # subscript sub-loads (idx[...] inside w[idx[...]]) are streamed
        # accesses in their own right; recurse into the subscript only
        _walk(node.index, weight, symbols, acc)
        return
    for child in node.children():
        _walk(child, weight, symbols, acc)


def analyze_access_pattern(ast: Ast, fn_name: str) -> AccessPatternInfo:
    """Streamed/gather byte split for the kernel ``fn_name``."""
    fn = ast.function(fn_name)
    if fn.body is None:
        raise ValueError(f"{fn_name}() has no body")
    symbols = SymbolTable(fn, ast.unit)
    acc: list = []
    _walk(fn.body, 1.0, symbols, acc)
    streamed = sum(w for w, gather, _ in acc if not gather)
    gathered = sum(w for w, gather, _ in acc if gather)
    names = frozenset(n for _, gather, n in acc if gather and n)
    return AccessPatternInfo(streamed, gathered, names)
