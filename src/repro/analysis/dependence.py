"""Static loop-carried dependence analysis ("Loop Dependence Analysis").

Determines, per loop, whether iterations are independent (parallel),
carry only scalar *reductions* (``s += ...`` -- removable with an OpenMP
reduction clause or register accumulation), or carry true dependences.
The Fig. 3 PSA strategy consumes exactly these facts: "parallel outer
loop?" and "inner loops w/ deps?".

Method (classic, conservative):

- names declared inside the loop body are private;
- a non-private scalar that is read-and-written per iteration is a
  reduction when every write site has the form ``s += e`` / ``s -= e`` /
  ``s *= e`` / ``s = s op e`` with ``s`` not otherwise read; any other
  read/write mix is a carried dependence;
- array subscripts are compared in affine form: writes whose subscript
  does not vary with the loop variable, pairs with mismatched loop-var
  coefficients, pairs whose difference is a non-zero constant multiple,
  and non-affine subscripts (e.g. ``csum[labels[i]]``) are carried
  dependences; equal affine forms touch the same element only within one
  iteration and are safe;
- calls to user functions taking pointer arguments are conservatively
  carried (the callee may touch shared state); math builtins are pure.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.analysis.common import (
    LoopPath, affine_form, loop_path,
)
from repro.lang.builtins import is_builtin
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    Assign, BinaryOp, Call, DeclStmt, Expr, ForStmt, FunctionDecl, Ident,
    Index, Node, TranslationUnit, UnaryOp,
)


class CarriedDep(NamedTuple):
    kind: str      # 'scalar' | 'array' | 'call' | 'non-affine'
    name: str      # variable / array / function involved
    reason: str


class DependenceInfo(NamedTuple):
    path: LoopPath
    carried: Tuple[CarriedDep, ...]
    reductions: Tuple[str, ...]

    @property
    def is_parallel(self) -> bool:
        """No loop-carried dependence of any kind."""
        return not self.carried and not self.reductions

    @property
    def is_parallel_with_reductions(self) -> bool:
        """Parallel once scalar reductions are handled (OMP reduction)."""
        return not self.carried

    @property
    def has_dependences(self) -> bool:
        return bool(self.carried) or bool(self.reductions)


def _base_array(expr: Index) -> Optional[str]:
    base: Expr = expr.base
    while isinstance(base, Index):
        base = base.base
    return base.name if isinstance(base, Ident) else None


def _collect_private(loop: ForStmt) -> Set[str]:
    """Names declared in the loop init or anywhere inside the body."""
    private: Set[str] = set()
    if isinstance(loop.init, DeclStmt):
        for var in loop.init.decls:
            private.add(var.name)
    for node in loop.body.walk():
        if isinstance(node, DeclStmt):
            for var in node.decls:
                private.add(var.name)
        if isinstance(node, ForStmt):
            inner_var = node.loop_var()
            if inner_var is not None:
                private.add(inner_var)
    return private


def _scalar_writes(body: Node) -> Dict[str, List[Assign]]:
    writes: Dict[str, List[Assign]] = {}
    for node in body.walk():
        if isinstance(node, Assign) and isinstance(node.target, Ident):
            writes.setdefault(node.target.name, []).append(node)
        if isinstance(node, UnaryOp) and node.op in ("++", "--") \
                and isinstance(node.operand, Ident):
            # model x++ as x += 1 for dependence purposes
            writes.setdefault(node.operand.name, []).append(
                Assign("+=", node.operand, node.operand))
    return writes


def _reads_of_scalar(body: Node, name: str) -> int:
    """Reads of ``name`` outside its own reduction-update right-hand sides."""
    count = 0
    for node in body.walk():
        if isinstance(node, Ident) and node.name == name:
            parent = node.parent
            if isinstance(parent, Assign) and parent.target is node:
                continue  # the write itself
            count += 1
    return count


def _is_reduction_update(assign: Assign, name: str) -> bool:
    if assign.op in ("+=", "-=", "*="):
        return True
    if assign.op == "=":
        value = assign.value
        if isinstance(value, BinaryOp) and value.op in ("+", "*", "-"):
            for side in (value.lhs, value.rhs):
                if isinstance(side, Ident) and side.name == name:
                    return True
    return False


def _self_reads(assigns: List[Assign], name: str) -> int:
    """Reads of ``name`` that are part of its own update expressions."""
    count = 0
    for assign in assigns:
        if assign.op in ("+=", "-=", "*="):
            continue  # implicit read, not an Ident node in the value
        for node in assign.value.walk():
            if isinstance(node, Ident) and node.name == name:
                count += 1
    return count


def analyze_loop_dependences(loop: ForStmt) -> DependenceInfo:
    """Dependence facts for one loop (see module docstring for the method)."""
    path = loop_path(loop)
    var = loop.loop_var()
    carried: List[CarriedDep] = []
    reductions: List[str] = []
    private = _collect_private(loop)
    if var is not None:
        private.add(var)
    body = loop.body

    # ---- calls with side effects ----------------------------------------
    unit = loop.enclosing(TranslationUnit) or (
        loop.enclosing(FunctionDecl).parent
        if loop.enclosing(FunctionDecl) else None)
    for node in body.walk():
        if isinstance(node, Call) and not is_builtin(node.name):
            fn = None
            if isinstance(unit, TranslationUnit) and unit.has_function(node.name):
                fn = unit.function(node.name)
            if fn is None or any(p.ctype.is_pointer for p in fn.params):
                carried.append(CarriedDep(
                    "call", node.name,
                    f"call to {node.name}() may touch shared memory"))

    # ---- scalar dependences ------------------------------------------------
    for name, assigns in _scalar_writes(body).items():
        if name in private:
            continue
        all_reductions = all(_is_reduction_update(a, name) for a in assigns)
        external_reads = _reads_of_scalar(body, name) - _self_reads(assigns, name)
        if all_reductions and external_reads == 0:
            reductions.append(name)
        elif external_reads > 0 or not all_reductions:
            carried.append(CarriedDep(
                "scalar", name,
                f"scalar {name!r} is read and written across iterations"))
        else:
            carried.append(CarriedDep(
                "scalar", name,
                f"scalar {name!r} written every iteration (output dependence)"))

    # ---- array dependences ---------------------------------------------------
    accesses: Dict[str, List[Tuple[Expr, bool]]] = {}  # name -> [(subscript, is_write)]
    for node in body.walk():
        if isinstance(node, Assign) and isinstance(node.target, Index):
            name = _base_array(node.target)
            if name is not None:
                is_rmw = node.op != "="
                accesses.setdefault(name, []).append(
                    (node.target.index, True))
                if is_rmw:
                    accesses.setdefault(name, []).append(
                        (node.target.index, False))
        elif isinstance(node, Index):
            parent = node.parent
            if isinstance(parent, Assign) and parent.target is node:
                continue  # handled above
            name = _base_array(node)
            if name is not None and not isinstance(parent, Index):
                accesses.setdefault(name, []).append((node.index, False))

    for name, recs in accesses.items():
        if name in private:
            continue
        writes = [sub for sub, is_write in recs if is_write]
        if not writes:
            continue  # read-only arrays never carry dependences
        dep = _array_dep(name, writes,
                         [sub for sub, _ in recs], var)
        if dep is not None:
            carried.append(dep)

    return DependenceInfo(path, tuple(carried), tuple(sorted(set(reductions))))


def _array_dep(name: str, writes: List[Expr], all_subs: List[Expr],
               var: Optional[str]) -> Optional[CarriedDep]:
    if var is None:
        return CarriedDep("array", name, "loop variable not recognised")
    write_forms = []
    for sub in writes:
        form = affine_form(sub)
        if form is None:
            return CarriedDep(
                "non-affine", name,
                f"write to {name}[] with non-affine subscript")
        write_forms.append(form)
    all_forms = []
    for sub in all_subs:
        form = affine_form(sub)
        if form is None:
            return CarriedDep(
                "non-affine", name,
                f"access to {name}[] with non-affine subscript")
        all_forms.append(form)

    for wform in write_forms:
        wcoef = wform.get(var, 0)
        if wcoef == 0:
            return CarriedDep(
                "array", name,
                f"write to {name}[] at a subscript independent of {var!r}")
        for aform in all_forms:
            acoef = aform.get(var, 0)
            if acoef != wcoef:
                return CarriedDep(
                    "array", name,
                    f"{name}[] accessed with mismatched {var!r} strides")
            # same coefficient: difference must be zero everywhere
            keys = set(wform) | set(aform)
            diff = {k: wform.get(k, 0) - aform.get(k, 0)
                    for k in keys if k != var}
            nonzero = {k: v for k, v in diff.items() if v != 0}
            if not nonzero:
                continue  # identical addressing: same-iteration access only
            if set(nonzero) == {1} and nonzero[1] % wcoef == 0:
                distance = nonzero[1] // wcoef
                return CarriedDep(
                    "array", name,
                    f"{name}[] carried dependence at distance {distance}")
            if set(nonzero) == {1}:
                continue  # constant offset below the stride: disjoint lanes
            return CarriedDep(
                "array", name,
                f"{name}[] subscripts differ in other variables")
    return None


def analyze_dependences(ast: Ast, fn_name: str) -> Dict[LoopPath, DependenceInfo]:
    """Dependence facts for every loop of ``fn_name``, keyed by loop path."""
    fn = ast.function(fn_name)
    return {loop_path(loop): analyze_loop_dependences(loop)
            for loop in fn.loops()}
