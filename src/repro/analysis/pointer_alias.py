"""Dynamic pointer alias analysis ("Pointer Analysis", Fig. 4).

The paper runs this "to ensure that pointer arguments do not reference
overlapping memory locations" before offloading a kernel -- overlapping
arguments would invalidate the parallel/pipelined execution the
target-specific paths generate (and `restrict`-style assumptions in the
generated code).

The task executes the program and inspects the pointer arguments of
every dynamic call of the kernel: two arguments alias when they point
into the same buffer with intersecting reachable ranges.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast


class AliasPair(NamedTuple):
    param_a: str
    param_b: str
    call_index: int


class AliasInfo(NamedTuple):
    fn_name: str
    calls_observed: int
    conflicts: Tuple[AliasPair, ...]

    @property
    def no_aliasing(self) -> bool:
        """True when offloading assumptions hold for every observed call."""
        return not self.conflicts


def analyze_pointer_aliasing(ast: Ast, workload: Workload, fn_name: str,
                             entry: str = "main") -> AliasInfo:
    """Check every dynamic call of ``fn_name`` for overlapping pointer args."""
    from repro.analysis.profile import collect_profile
    report = collect_profile(ast, workload, entry=entry)
    events = report.calls_of(fn_name)
    conflicts: List[AliasPair] = []
    seen = set()
    for call_index, event in enumerate(events):
        args = event.args  # (param_name, array_id, offset, extent)
        for i in range(len(args)):
            for j in range(i + 1, len(args)):
                name_a, id_a, off_a, ext_a = args[i]
                name_b, id_b, off_b, ext_b = args[j]
                if id_a != id_b:
                    continue
                if max(off_a, off_b) < min(off_a + ext_a, off_b + ext_b):
                    key = (name_a, name_b)
                    if key not in seen:
                        seen.add(key)
                        conflicts.append(AliasPair(name_a, name_b, call_index))
    return AliasInfo(fn_name, len(events), tuple(conflicts))
