"""repro: reproduction of "Auto-Generating Diverse Heterogeneous
Designs" (Vandebon, Coutinho, Luk -- RAW/IPDPSW 2024).

Public API highlights:

>>> from repro import FlowEngine, get_app
>>> result = FlowEngine().run(get_app("nbody"), mode="informed")
>>> result.selected_target
'gpu'
>>> [d.label for d in result.designs]           # doctest: +SKIP
['nbody/gpu-hip/hip-1080ti', 'nbody/gpu-hip/hip-2080ti']

Layers (bottom-up): :mod:`repro.meta` (Artisan-equivalent
meta-programming over the UHL C/C++ subset), :mod:`repro.lang`
(profiling interpreter), :mod:`repro.analysis` / :mod:`repro.transforms`
/ :mod:`repro.codegen` (the codified design-flow tasks),
:mod:`repro.platforms` / :mod:`repro.toolchains` (simulated hardware and
compilers), :mod:`repro.flow` (PSA-flows -- the paper's contribution),
:mod:`repro.apps` (the five benchmarks), and :mod:`repro.evalharness`
(Fig. 5 / Table I / Fig. 6 regeneration).
"""

from repro.apps import ALL_APPS, AppSpec, get_app
from repro.flow import (
    BranchPoint, BudgetedStrategy, FlowContext, FlowEngine, FlowResult,
    InformedTargetSelection, PSAStrategy, SelectAll, Sequence, Task,
    TaskKind, build_default_flow,
)
from repro.lang import Workload
from repro.meta import Ast

__version__ = "1.0.0"

__all__ = [
    "Ast",
    "Workload",
    "AppSpec",
    "ALL_APPS",
    "get_app",
    "FlowEngine",
    "FlowResult",
    "FlowContext",
    "Task",
    "TaskKind",
    "Sequence",
    "BranchPoint",
    "PSAStrategy",
    "InformedTargetSelection",
    "SelectAll",
    "BudgetedStrategy",
    "build_default_flow",
    "__version__",
]
