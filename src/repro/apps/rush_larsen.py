"""Rush Larsen ODE Solver benchmark.

One Rush-Larsen timestep of a Hodgkin-Huxley-style cardiac membrane
model: for every cell, advance NG gating variables through the
exponential integrator ``g' = g_inf + (g - g_inf) * exp(-dt/tau)`` with
voltage-dependent rate functions (two to three ``exp`` evaluations per
gate), then update the membrane potential from the ionic currents.

Properties that drive the flow (§IV-B.ii/iii):

- "a single outer loop" over cells, parallel, with a large
  straight-line body and *no* inner loops;
- the body's ~50 ``exp``/``pow`` evaluations keep ~255 registers per
  thread live on GPUs -- saturating the GTX 1080 Ti (2048-thread SMs at
  12.5% occupancy) but not the RTX 2080 Ti (1024-thread SMs at 25%);
- the same 50 elementary-function pipelines make the FPGA designs
  exceed the capacity of both devices: they are generated but not
  synthesisable, exactly the paper's Rush Larsen outcome.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import AppSpec
from repro.lang.interpreter import Workload

NG = 14  # gating variables

# Rate-function constants per gate:
#   alpha = c1 * exp(c2 * (vm + c3))       [1/ms]
#   beta  = c4 * exp(c5 * (vm + c6))       [1/ms]
# gates with sigmoid=True use a Boltzmann steady state
#   inf   = 1 / (1 + exp(-(vm + c7) * c8))
# instead of alpha/(alpha+beta).
# Values span physiological ranges (vm in [-85, 40] mV).
GATES: List[Tuple[float, float, float, float, float, float,
                  float, float, bool]] = [
    (0.32, 0.060, 47.13, 0.08, -0.0900, 11.0, 40.0, 0.100, False),
    (0.135, -0.147, 80.0, 3.56, 0.0790, 0.0, 66.0, -0.120, True),
    (0.095, -0.010, -5.0, 0.07, -0.0170, 44.0, 10.0, 0.150, False),
    (0.012, -0.008, 28.0, 0.0065, -0.0200, 30.0, 35.0, 0.080, True),
    (0.0005, 0.083, 50.0, 0.0013, -0.0600, 20.0, 22.0, 0.090, False),
    (0.054, 0.028, 35.0, 0.018, -0.0400, 25.0, 52.0, 0.110, True),
    (0.076, 0.015, 10.0, 0.047, -0.0250, 60.0, 30.0, 0.070, False),
    (0.021, 0.042, 64.0, 0.029, -0.0330, 15.0, 45.0, 0.130, True),
    (0.290, -0.052, 22.0, 0.062, 0.0210, 18.0, 28.0, 0.095, False),
    (0.014, 0.037, 39.0, 0.088, -0.0560, 33.0, 61.0, 0.105, True),
    (0.067, 0.019, 55.0, 0.041, -0.0440, 27.0, 19.0, 0.085, False),
    (0.033, -0.061, 72.0, 0.011, 0.0340, 41.0, 37.0, 0.115, True),
    (0.190, 0.024, 16.0, 0.056, -0.0710, 52.0, 48.0, 0.075, False),
    (0.008, 0.049, 83.0, 0.073, -0.0180, 9.0, 57.0, 0.125, True),
]


def _gate_block(g: int) -> str:
    c1, c2, c3, c4, c5, c6, c7, c8, sigmoid = GATES[g]
    lines = [
        f"        double a{g} = {c1} * exp({c2} * (vm + {c3}));",
        f"        double b{g} = {c4} * exp({c5} * (vm + {c6}));",
        f"        double tau{g} = 1.0 / (a{g} + b{g});",
    ]
    if sigmoid:
        lines.append(
            f"        double inf{g} = 1.0 / "
            f"(1.0 + exp(0.0 - (vm + {c7}) * {c8}));")
    else:
        lines.append(f"        double inf{g} = a{g} * tau{g};")
    lines += [
        f"        double y{g} = inf{g} + (gates[i * {NG} + {g}] - inf{g})"
        f" * exp(0.0 - dt / tau{g});",
        f"        gates[i * {NG} + {g}] = y{g};",
    ]
    return "\n".join(lines)


_GATE_BLOCKS = "\n".join(_gate_block(g) for g in range(NG))

SOURCE = f"""\
// Rush Larsen ODE Solver: one exponential-integrator timestep of a
// Hodgkin-Huxley-style cardiac membrane model.
// Technology-agnostic high-level reference (single thread).
#include <math.h>
#include <stdio.h>

// external pacing stimulus (rectangular pulse train)
double stimulus(double t, double period, double duration,
                double amplitude) {{
    double phase = t - floor(t / period) * period;
    if (phase < duration) {{
        return amplitude;
    }}
    return 0.0;
}}

// resting-potential estimate: relaxation toward the K reversal
double resting_potential(double ek, double gk_ratio) {{
    return ek + 12.0 * (1.0 - gk_ratio);
}}

// population statistics over the cell array
double array_mean(const double* values, int n) {{
    double total = 0.0;
    for (int i = 0; i < n; i++) {{
        total = total + values[i];
    }}
    return total / (double)n;
}}

double array_min(const double* values, int n) {{
    double best = values[0];
    for (int i = 1; i < n; i++) {{
        if (values[i] < best) {{
            best = values[i];
        }}
    }}
    return best;
}}

double array_max(const double* values, int n) {{
    double best = values[0];
    for (int i = 1; i < n; i++) {{
        if (values[i] > best) {{
            best = values[i];
        }}
    }}
    return best;
}}

int main() {{
    int n = ws_int("n");
    double dt = ws_double("dt");
    double* vm_in = ws_array_double("vm_in", n);
    double* gates = ws_array_double("gates", n * {NG});
    double* vm_out = ws_array_double("vm_out", n);

    // hotspot: advance all gates and the membrane potential per cell
    for (int i = 0; i < n; i++) {{
        double vm = vm_in[i];
{_GATE_BLOCKS}
        // ionic currents assembled from the updated gates
        double ina = 23.0 * y0 * y0 * y0 * y1 * y2 * (vm - 54.4);
        double ik = 0.282 * pow(y3, 4.0) * (vm + 77.0);
        double ica = 0.09 * y4 * y5 * (vm - 120.0);
        double ikp = 0.0183 * pow(y6, 2.0) * (vm + 87.2);
        double ito = 0.3 * y7 * y8 * pow(y9, 3.0) * (vm + 60.0);
        double ifunny = 0.025 * (y10 + y11) * (vm + 20.0);
        double ibg = 0.0392 * y12 * y13 * (vm + 21.0);
        double itotal = ina + ik + ica + ikp + ito + ifunny + ibg;
        vm_out[i] = vm - dt * itotal + stimulus(8.0, 500.0, 2.0, 0.0);
    }}

    // step diagnostics: membrane statistics and gate health checks
    double vmin = array_min(vm_out, n);
    double vmax = array_max(vm_out, n);
    double vmean = array_mean(vm_out, n);
    printf("cells: %d\\n", n);
    printf("vm min/mean/max: %g %g %g\\n", vmin, vmean, vmax);
    printf("resting estimate: %g\\n", resting_potential(0.0 - 77.0, 0.9));
    int clipped = 0;
    for (int i = 0; i < n; i++) {{
        for (int g = 0; g < {NG}; g++) {{
            double y = gates[i * {NG} + g];
            if (y < 0.0 || y > 1.0) {{
                clipped = clipped + 1;
            }}
        }}
    }}
    printf("gates out of [0,1]: %d\\n", clipped);
    double depol = 0.0;
    for (int i = 0; i < n; i++) {{
        if (vm_out[i] > 0.0 - 40.0) {{
            depol = depol + 1.0;
        }}
    }}
    printf("depolarised fraction: %g\\n", depol / (double)n);
    return 0;
}}
"""


def make_workload(scale: float = 1.0) -> Workload:
    n = max(32, int(256 * scale))
    rng = np.random.default_rng(17)
    vm = rng.random(n) * 100.0 - 80.0          # [-80, 20] mV
    gates = rng.random(n * NG) * 0.8 + 0.1     # open fractions
    return Workload(
        scalars={"n": n, "dt": 0.02},
        arrays={"vm_in": vm.tolist(), "gates": gates.tolist()},
    )


def oracle(workload: Workload) -> Dict[str, np.ndarray]:
    n = int(workload.scalar("n"))
    dt = float(workload.scalar("dt"))
    vm = np.array(workload._initial_arrays["vm_in"], dtype=float)
    gates = np.array(workload._initial_arrays["gates"],
                     dtype=float).reshape(n, NG).copy()
    y = np.empty((n, NG), dtype=float)
    for g, (c1, c2, c3, c4, c5, c6, c7, c8, sigmoid) in enumerate(GATES):
        a = c1 * np.exp(c2 * (vm + c3))
        b = c4 * np.exp(c5 * (vm + c6))
        tau = 1.0 / (a + b)
        if sigmoid:
            inf = 1.0 / (1.0 + np.exp(-(vm + c7) * c8))
        else:
            inf = a * tau
        y[:, g] = inf + (gates[:, g] - inf) * np.exp(-dt / tau)
    gates_out = y
    ina = 23.0 * y[:, 0] * y[:, 0] * y[:, 0] * y[:, 1] * y[:, 2] * (vm - 54.4)
    ik = 0.282 * y[:, 3] ** 4.0 * (vm + 77.0)
    ica = 0.09 * y[:, 4] * y[:, 5] * (vm - 120.0)
    ikp = 0.0183 * y[:, 6] ** 2.0 * (vm + 87.2)
    ito = 0.3 * y[:, 7] * y[:, 8] * y[:, 9] ** 3.0 * (vm + 60.0)
    ifunny = 0.025 * (y[:, 10] + y[:, 11]) * (vm + 20.0)
    ibg = 0.0392 * y[:, 12] * y[:, 13] * (vm + 21.0)
    itotal = ina + ik + ica + ikp + ito + ifunny + ibg
    return {"gates": gates_out.reshape(-1), "vm_out": vm - dt * itotal}


RUSH_LARSEN = AppSpec(
    name="rush_larsen",
    display_name="Rush Larsen",
    source=SOURCE,
    workload_factory=make_workload,
    oracle=oracle,
    output_buffers=("gates", "vm_out"),
    sp_tolerant=True,
    hotspot_invocations=50,  # ODE timesteps keep cell state resident
    eval_scale=2000.0,
    summary=("Exponential-integrator cardiac cell update; single "
             "parallel outer loop, ~50 elementary functions per cell"),
)
