"""K-Means Classification benchmark.

The hotspot is the assignment step: for every point, find the nearest
of K centroids.  Three FLOPs per sixteen bytes of traffic make it
memory-bound (FLOPs/B well below the Fig. 3 threshold X), so the
informed PSA strategy maps it to the multi-thread CPU branch -- where
it also happens to be the fastest of the five generated designs
(§IV-B.i).  K and D are compile-time constants (typical for deployed
classifiers), so the distance loops are fixed-bound and fully
unrollable on FPGAs; the designs exist but are bandwidth-starved.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import AppSpec
from repro.lang.interpreter import Workload

K = 8   # centroids
D = 4   # feature dimensions

SOURCE = f"""\
// K-Means Classification: nearest-centroid assignment step.
// Technology-agnostic high-level reference (single thread).
#include <math.h>
#include <stdio.h>

int main() {{
    int n = ws_int("n");
    double* points = ws_array_double("points", n * {D});
    double* centroids = ws_array_double("centroids", {K} * {D});
    int* labels = ws_array_int("labels", n);
    double* dist = ws_array_double("dist", n);
    double* counts = ws_array_double("counts", {K});
    double* sums = ws_array_double("sums", {K} * {D});
    double* newc = ws_array_double("newc", {K} * {D});

    // hotspot: assign each point to its nearest centroid
    for (int i = 0; i < n; i++) {{
        double best = 1.0e30;
        int bestj = 0;
        for (int j = 0; j < {K}; j++) {{
            double s = 0.0;
            for (int m = 0; m < {D}; m++) {{
                double t = points[i * {D} + m] - centroids[j * {D} + m];
                s = s + t * t;
            }}
            if (s < best) {{
                best = s;
                bestj = j;
            }}
        }}
        labels[i] = bestj;
        dist[i] = best;
    }}

    // cluster population histogram (cheap, sequential)
    for (int i = 0; i < n; i++) {{
        counts[labels[i]] = counts[labels[i]] + 1.0;
    }}

    // centroid update step (Lloyd iteration, indirect writes)
    for (int i = 0; i < n; i++) {{
        for (int m = 0; m < {D}; m++) {{
            sums[labels[i] * {D} + m] =
                sums[labels[i] * {D} + m] + points[i * {D} + m];
        }}
    }}
    for (int j = 0; j < {K}; j++) {{
        if (counts[j] > 0.0) {{
            for (int m = 0; m < {D}; m++) {{
                newc[j * {D} + m] = sums[j * {D} + m] / counts[j];
            }}
        }}
    }}

    // within-cluster inertia (convergence metric)
    double inertia = 0.0;
    for (int i = 0; i < n; i++) {{
        inertia = inertia + dist[i];
    }}
    printf("points: %d\\n", n);
    printf("inertia: %g\\n", inertia);
    return 0;
}}
"""


def make_workload(scale: float = 1.0) -> Workload:
    n = max(64, int(768 * scale))
    rng = np.random.default_rng(11)
    # points drawn around K well-separated centres so labels are stable
    centres = rng.random((K, D)) * 10.0
    assignment = rng.integers(0, K, size=n)
    points = centres[assignment] + rng.normal(0.0, 0.3, size=(n, D))
    centroids = centres + rng.normal(0.0, 0.05, size=(K, D))
    return Workload(
        scalars={"n": n},
        arrays={
            "points": points.reshape(-1).tolist(),
            "centroids": centroids.reshape(-1).tolist(),
        },
    )


def oracle(workload: Workload) -> Dict[str, np.ndarray]:
    n = int(workload.scalar("n"))
    points = np.array(workload._initial_arrays["points"],
                      dtype=float).reshape(n, D)
    centroids = np.array(workload._initial_arrays["centroids"],
                         dtype=float).reshape(K, D)
    diff = points[:, None, :] - centroids[None, :, :]
    d2 = np.sum(diff * diff, axis=2)
    labels = np.argmin(d2, axis=1)
    dist = d2[np.arange(n), labels]
    counts = np.bincount(labels, minlength=K).astype(float)
    return {"labels": labels, "dist": dist, "counts": counts}


KMEANS = AppSpec(
    name="kmeans",
    display_name="K-Means",
    source=SOURCE,
    workload_factory=make_workload,
    oracle=oracle,
    output_buffers=("labels", "dist", "counts"),
    sp_tolerant=True,
    fixed_buffers=("centroids", "counts"),
    eval_scale=2000.0,
    hotspot_invocations=2,   # Lloyd iterations re-run assignment with
                             # device-resident points
    summary=("Nearest-centroid assignment; memory-bound, parallel outer "
             "loop, fixed-bound inner distance loops"),
)
