"""Registry of the five evaluation applications."""

from __future__ import annotations

from typing import Dict, List

from repro.apps.adpredictor import ADPREDICTOR
from repro.apps.base import AppSpec
from repro.apps.bezier import BEZIER
from repro.apps.kmeans import KMEANS
from repro.apps.nbody import NBODY
from repro.apps.rush_larsen import RUSH_LARSEN

ALL_APPS: Dict[str, AppSpec] = {
    app.name: app
    for app in (NBODY, KMEANS, ADPREDICTOR, RUSH_LARSEN, BEZIER)
}

#: the paper's presentation order in Fig. 5 / Table I
PAPER_ORDER: List[str] = [
    "rush_larsen", "nbody", "bezier", "adpredictor", "kmeans",
]


def get_app(name: str) -> AppSpec:
    try:
        return ALL_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; known: {sorted(ALL_APPS)}") from None
