"""AdPredictor benchmark (Bayesian click-through-rate inference).

Per impression: gather the posterior mean/variance of its F active
features from the weight tables, combine them, and evaluate the probit
click probability (Gaussian CDF via ``erfc``, plus the ``v``/``w``
correction factors used by the AdPredictor update rule, which need
``exp`` and ``log``).

Properties that drive the flow (§IV-B.iii):

- parallel outer loop over impressions;
- the inner feature-accumulation loops carry reductions and have a
  *fixed* bound F=16: "simple fixed-bound, fully-unrollable inner
  loops", so the informed strategy takes the CPU+FPGA branch;
- the weight-table accesses are data-dependent gathers, making the
  designs bandwidth-bound -- the Stratix10, with 2.3x the Arria10's DDR
  bandwidth, delivers the best result of all targets (32x);
- the Bayesian posterior math does **not** tolerate single precision
  (tiny per-update increments vanish in fp32), so the SP tasks are
  skipped and GeForce GPUs run it at their 1/32-rate double precision:
  both deliver the same modest 10x.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import AppSpec
from repro.lang.interpreter import Workload

F = 16           # active features per impression
BETA2 = 0.2 * 0.2
SQRT2 = 1.4142135623730951

SOURCE = f"""\
// AdPredictor: Bayesian CTR probit inference over sparse features.
// Technology-agnostic high-level reference (single thread).
#include <math.h>
#include <stdio.h>

// standard normal pdf
double gauss_pdf(double t) {{
    return 0.3989422804014327 * exp(0.0 - 0.5 * t * t);
}}

// standard normal cdf via the complementary error function
double gauss_cdf(double t) {{
    return 0.5 * erfc(0.0 - t / {SQRT2});
}}

// v correction factor of the AdPredictor update rule
double v_factor(double t) {{
    return gauss_pdf(t) / fmax(gauss_cdf(t), 1.0e-12);
}}

// w correction factor of the AdPredictor update rule
double w_factor(double t) {{
    double v = v_factor(t);
    return v * (v + t);
}}

// one online Bayesian update of the touched weights
void update_weights(double* wmean, double* wvar, const int* feats,
                    int i, double y, double mean, double var) {{
    double sigma = sqrt(var);
    double t = y * mean / sigma;
    double v = v_factor(t);
    double w = w_factor(t);
    for (int j = 0; j < {F}; j++) {{
        int idx = feats[i * {F} + j];
        double share = wvar[idx] / var;
        wmean[idx] = wmean[idx] + y * share * sigma * v * 0.1;
        wvar[idx] = wvar[idx] * (1.0 - share * w * 0.1);
    }}
}}

int main() {{
    int n = ws_int("n");
    int nw = ws_int("nw");
    int* feats = ws_array_int("feats", n * {F});
    double* wmean = ws_array_double("wmean", nw);
    double* wvar = ws_array_double("wvar", nw);
    double* prob = ws_array_double("prob", n);
    double* surprise = ws_array_double("surprise", n);
    double* clicks = ws_array_double("clicks", n);
    double* buckets = ws_array_double("buckets", 10);

    // hotspot: per-impression posterior combination + probit CDF
    for (int i = 0; i < n; i++) {{
        double mean = 0.0;
        double var = {BETA2};
        for (int j = 0; j < {F}; j++) {{
            int idx = feats[i * {F} + j];
            mean = mean + wmean[idx];
            var = var + wvar[idx];
        }}
        double sigma = sqrt(var);
        double t = mean / sigma;
        double p = 0.5 * erfc(0.0 - t / {SQRT2});
        // v and w correction factors of the AdPredictor update rule
        double pdf = 0.3989422804014327 * exp(0.0 - 0.5 * t * t);
        double vfac = pdf / fmax(p, 1.0e-12);
        double wfac = vfac * (vfac + t);
        prob[i] = p;
        surprise[i] = 0.0 - log(fmax(p, 1.0e-12)) + 0.01 * wfac;
    }}

    // online training refresh over the most recent slice of the batch
    int ntrain = n / 8;
    for (int i = 0; i < ntrain; i++) {{
        double y = clicks[i] > 0.5 ? 1.0 : -1.0;
        double mean = 0.0;
        double var = {BETA2};
        for (int j = 0; j < {F}; j++) {{
            int idx = feats[i * {F} + j];
            mean = mean + wmean[idx];
            var = var + wvar[idx];
        }}
        update_weights(wmean, wvar, feats, i, y, mean, var);
    }}

    // evaluation: log-loss and a 10-bucket calibration histogram
    double logloss = 0.0;
    for (int i = 0; i < n; i++) {{
        double p = prob[i];
        if (clicks[i] > 0.5) {{
            logloss = logloss - log(fmax(p, 1.0e-12));
        }} else {{
            logloss = logloss - log(fmax(1.0 - p, 1.0e-12));
        }}
        int b = (int)(p * 10.0);
        if (b > 9) {{
            b = 9;
        }}
        buckets[b] = buckets[b] + 1.0;
    }}
    printf("impressions: %d\\n", n);
    printf("mean log-loss: %g\\n", logloss / (double)n);
    for (int b = 0; b < 10; b++) {{
        printf("bucket %d: %g\\n", b, buckets[b]);
    }}
    return 0;
}}
"""


def make_workload(scale: float = 1.0) -> Workload:
    n = max(64, int(640 * scale))
    nw = max(256, int(4096 * scale))
    rng = np.random.default_rng(13)
    feats = rng.integers(0, nw, size=n * F)
    wmean = rng.normal(0.0, 0.05, size=nw)
    wvar = np.abs(rng.normal(0.01, 0.002, size=nw)) + 1e-4
    clicks = (rng.random(n) < 0.2).astype(float)
    return Workload(
        scalars={"n": n, "nw": nw},
        arrays={
            "feats": feats.tolist(),
            "wmean": wmean.tolist(),
            "wvar": wvar.tolist(),
            "clicks": clicks.tolist(),
        },
    )


def oracle(workload: Workload) -> Dict[str, np.ndarray]:
    from scipy.special import erfc

    n = int(workload.scalar("n"))
    feats = np.array(workload._initial_arrays["feats"],
                     dtype=int).reshape(n, F)
    wmean = np.array(workload._initial_arrays["wmean"], dtype=float)
    wvar = np.array(workload._initial_arrays["wvar"], dtype=float)
    mean = np.sum(wmean[feats], axis=1)
    var = BETA2 + np.sum(wvar[feats], axis=1)
    t = mean / np.sqrt(var)
    p = 0.5 * erfc(-t / SQRT2)
    pdf = 0.3989422804014327 * np.exp(-0.5 * t * t)
    vfac = pdf / np.maximum(p, 1e-12)
    wfac = vfac * (vfac + t)
    surprise = -np.log(np.maximum(p, 1e-12)) + 0.01 * wfac
    return {"prob": p, "surprise": surprise}


ADPREDICTOR = AppSpec(
    name="adpredictor",
    display_name="AdPredictor",
    source=SOURCE,
    workload_factory=make_workload,
    oracle=oracle,
    output_buffers=("prob", "surprise"),
    sp_tolerant=False,   # Bayesian updates need double precision
    hotspot_invocations=20,  # training epochs re-score the resident batch
    fixed_buffers=("wmean", "wvar"),
    eval_scale=2000.0,
    summary=("Bayesian CTR probit inference; parallel outer loop, "
             "fixed fully-unrollable inner gathers, double precision"),
)
