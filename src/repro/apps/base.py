"""AppSpec: one benchmark application."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from repro.lang.interpreter import Workload
from repro.meta.ast_api import Ast
from repro.meta.unparse import count_loc


@dataclass(frozen=True)
class AppSpec:
    """A benchmark: source + workload + oracle + precision declaration."""

    name: str                     # registry key ('nbody', ...)
    display_name: str             # as printed in the paper's figures
    source: str                   # UHL high-level reference source
    #: builds a deterministic workload; ``scale`` grows the problem
    workload_factory: Callable[[float], Workload]
    #: numpy reference implementation returning the expected contents of
    #: the output buffers for a given workload
    oracle: Callable[[Workload], Dict[str, np.ndarray]]
    #: buffers whose final contents define functional correctness
    output_buffers: Tuple[str, ...]
    #: whether the domain tolerates single-precision demotion (the
    #: asterisk on the SP tasks in Fig. 4); AdPredictor's Bayesian
    #: updates require double precision
    sp_tolerant: bool = True
    #: hotspot invocations the deployed application performs with
    #: device-resident data (Lloyd iterations, simulation timesteps);
    #: accelerator designs amortise one-off buffer transfers across them
    hotspot_invocations: int = 1
    #: deployment-to-interpreted size ratio: the interpreter runs a
    #: scaled-down workload for speed, and the analytical platform
    #: models extrapolate counts linearly to the evaluation size the
    #: paper measures (documented in EXPERIMENTS.md)
    eval_scale: float = 1000.0
    #: buffers whose size does not grow with the problem (lookup
    #: tables, centroid/control grids); under eval scaling they keep
    #: their extent, which is what lets them stay cache/BRAM resident
    fixed_buffers: Tuple[str, ...] = ()
    #: short description used in reports
    summary: str = ""

    def ast(self) -> Ast:
        """Fresh AST of the reference source."""
        return Ast(self.source, name=f"{self.name}.cpp")

    def workload(self, scale: float = 1.0) -> Workload:
        return self.workload_factory(scale)

    @property
    def reference_loc(self) -> int:
        return count_loc(self.source)

    def check_outputs(self, workload: Workload,
                      rtol: float = 1e-9, atol: float = 1e-9) -> None:
        """Compare a finished workload's buffers against the oracle.

        Raises AssertionError with a readable message on mismatch.
        """
        expected = self.oracle(workload)
        for name in self.output_buffers:
            got = np.asarray(workload.result(name), dtype=float)
            want = np.asarray(expected[name], dtype=float)
            if got.shape != want.shape:
                raise AssertionError(
                    f"{self.name}: buffer {name!r} shape {got.shape} "
                    f"!= oracle {want.shape}")
            if not np.allclose(got, want, rtol=rtol, atol=atol):
                worst = float(np.max(np.abs(got - want)))
                raise AssertionError(
                    f"{self.name}: buffer {name!r} deviates from oracle "
                    f"(max abs err {worst:.3e})")
