"""N-Body Simulation benchmark.

All-pairs gravitational force evaluation followed by a leapfrog
integration step.  The hotspot is the force loop: a "double outer loop
nest with bounds unknown at compile time" (§IV-B.ii) -- the outer body
loop is parallel, the inner accumulation loop carries reductions and
cannot be fully unrolled, so the informed PSA strategy maps it to the
CPU+GPU branch.  On FPGAs the variable-bound inner loop limits the
design to one pipelined pair per cycle, the paper's 1.1x/1.4x result.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import AppSpec
from repro.lang.interpreter import Workload

SOURCE = """\
// N-Body Simulation: all-pairs gravity + leapfrog step.
// Technology-agnostic high-level reference (single thread).
#include <math.h>
#include <stdio.h>

double kinetic_energy(const double* vel, const double* mass, int n) {
    double total = 0.0;
    for (int i = 0; i < n; i++) {
        double vx = vel[i * 3];
        double vy = vel[i * 3 + 1];
        double vz = vel[i * 3 + 2];
        total = total + 0.5 * mass[i] * (vx * vx + vy * vy + vz * vz);
    }
    return total;
}

double total_mass(const double* mass, int n) {
    double total = 0.0;
    for (int i = 0; i < n; i++) {
        total = total + mass[i];
    }
    return total;
}

void center_of_mass(const double* pos, const double* mass, int n,
                    double* com) {
    double mtot = total_mass(mass, n);
    for (int k = 0; k < 3; k++) {
        com[k] = 0.0;
    }
    for (int i = 0; i < n; i++) {
        for (int k = 0; k < 3; k++) {
            com[k] = com[k] + mass[i] * pos[i * 3 + k];
        }
    }
    for (int k = 0; k < 3; k++) {
        com[k] = com[k] / mtot;
    }
}

double bounding_radius(const double* pos, const double* com, int n) {
    double worst = 0.0;
    for (int i = 0; i < n; i++) {
        double dx = pos[i * 3] - com[0];
        double dy = pos[i * 3 + 1] - com[1];
        double dz = pos[i * 3 + 2] - com[2];
        double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 > worst) {
            worst = r2;
        }
    }
    return sqrt(worst);
}

int main() {
    int n = ws_int("n");
    double dt = ws_double("dt");
    double soft = ws_double("soft");
    double* pos = ws_array_double("pos", n * 3);
    double* vel = ws_array_double("vel", n * 3);
    double* mass = ws_array_double("mass", n);
    double* acc = ws_array_double("acc", n * 3);

    // hotspot: all-pairs force accumulation (naive: accumulates
    // straight into the acc[] buffer every inner iteration)
    for (int i = 0; i < n; i++) {
        double px = pos[i * 3];
        double py = pos[i * 3 + 1];
        double pz = pos[i * 3 + 2];
        acc[i * 3] = 0.0;
        acc[i * 3 + 1] = 0.0;
        acc[i * 3 + 2] = 0.0;
        for (int j = 0; j < n; j++) {
            double dx = pos[j * 3] - px;
            double dy = pos[j * 3 + 1] - py;
            double dz = pos[j * 3 + 2] - pz;
            double r2 = dx * dx + dy * dy + dz * dz + soft;
            double inv = rsqrt(r2);
            double inv3 = inv * inv * inv;
            double f = mass[j] * inv3;
            acc[i * 3] += f * dx;
            acc[i * 3 + 1] += f * dy;
            acc[i * 3 + 2] += f * dz;
        }
    }

    // leapfrog integration (cheap, stays on the host)
    for (int i = 0; i < n; i++) {
        for (int k = 0; k < 3; k++) {
            vel[i * 3 + k] = vel[i * 3 + k] + acc[i * 3 + k] * dt;
            pos[i * 3 + k] = pos[i * 3 + k] + vel[i * 3 + k] * dt;
        }
    }

    // step diagnostics
    double com[3];
    center_of_mass(pos, mass, n, com);
    double ek = kinetic_energy(vel, mass, n);
    double radius = bounding_radius(pos, com, n);
    printf("bodies: %d\\n", n);
    printf("kinetic energy: %g\\n", ek);
    printf("com: %g %g %g\\n", com[0], com[1], com[2]);
    printf("bounding radius: %g\\n", radius);
    return 0;
}
"""


def make_workload(scale: float = 1.0) -> Workload:
    n = max(16, int(128 * scale))
    rng = np.random.default_rng(7)
    pos = (rng.random(n * 3) * 10.0 - 5.0)
    vel = rng.random(n * 3) * 0.1
    mass = 1.0 + rng.random(n)
    return Workload(
        scalars={"n": n, "dt": 0.01, "soft": 1e-3},
        arrays={
            "pos": pos.tolist(),
            "vel": vel.tolist(),
            "mass": mass.tolist(),
        },
    )


def oracle(workload: Workload) -> Dict[str, np.ndarray]:
    n = int(workload.scalar("n"))
    dt = float(workload.scalar("dt"))
    soft = float(workload.scalar("soft"))
    pos = np.array(workload._initial_arrays["pos"], dtype=float).reshape(n, 3)
    vel = np.array(workload._initial_arrays["vel"], dtype=float).reshape(n, 3)
    mass = np.array(workload._initial_arrays["mass"], dtype=float)

    diff = pos[None, :, :] - pos[:, None, :]          # (i, j, 3)
    r2 = np.sum(diff * diff, axis=2) + soft
    inv3 = 1.0 / np.sqrt(r2) ** 3
    f = mass[None, :] * inv3                           # (i, j)
    acc = np.einsum("ij,ijk->ik", f, diff)
    vel_out = vel + acc * dt
    pos_out = pos + vel_out * dt
    return {
        "acc": acc.reshape(-1),
        "vel": vel_out.reshape(-1),
        "pos": pos_out.reshape(-1),
    }


NBODY = AppSpec(
    name="nbody",
    display_name="N-Body",
    source=SOURCE,
    workload_factory=make_workload,
    oracle=oracle,
    output_buffers=("acc", "vel", "pos"),
    sp_tolerant=True,
    eval_scale=4000.0,
    hotspot_invocations=10,  # simulation timesteps keep bodies resident
    summary=("All-pairs gravitational forces; compute-bound, parallel "
             "outer loop, variable-bound inner reduction loop"),
)
