"""The five evaluation applications (paper §IV-A).

"We apply the implemented PSA-flow to five HPC and AI applications,
namely: N-Body Simulation, K-Means Classification, AdPredictor, Rush
Larsen ODE Solver, and Bezier Surface Generation."

Each module provides an :class:`~repro.apps.base.AppSpec`: the
technology-agnostic high-level C++ source (in the UHL subset), a scaled
workload factory, a numpy oracle for correctness checks of generated
designs, and the app-level precision-tolerance declaration consumed by
the SP transform tasks (the asterisk in Fig. 4).
"""

from repro.apps.base import AppSpec
from repro.apps.registry import ALL_APPS, get_app
from repro.apps.nbody import NBODY
from repro.apps.kmeans import KMEANS
from repro.apps.adpredictor import ADPREDICTOR
from repro.apps.rush_larsen import RUSH_LARSEN
from repro.apps.bezier import BEZIER

__all__ = [
    "AppSpec",
    "ALL_APPS",
    "get_app",
    "NBODY",
    "KMEANS",
    "ADPREDICTOR",
    "RUSH_LARSEN",
    "BEZIER",
]
