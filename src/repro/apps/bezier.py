"""Bezier Surface Generation benchmark.

Evaluates a bicubic-style degree-7 Bezier patch on a regular parameter
grid: for each output sample, build the 8-term Bernstein bases in u and
v by running-product recurrences, then blend the 8x8 control-point grid.

Properties that drive the flow (§IV-B.ii):

- parallel outer loop over the flattened sample grid (one sample per
  GPU thread; "neither GPU is fully saturated" at the grid sizes used,
  so the 2080 Ti's margin over the 1080 Ti is small: 67x vs 63x);
- "a complex multi-nested inner loop structure": basis recurrences
  (loop-carried running products) feeding an 8x8 reduction nest whose
  64 unrolled iterations exceed the full-unroll threshold -- so the
  informed strategy maps Bezier to the CPU+GPU branch even though all
  inner bounds are static;
- on FPGAs the fixed inner nests do unroll, giving solid but
  GPU-trailing designs (23x / 27x in the paper).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import AppSpec
from repro.lang.interpreter import Workload

DEG = 7               # polynomial degree (8 control points per axis)
NB = DEG + 1
BINOM = [1.0, 7.0, 21.0, 35.0, 35.0, 21.0, 7.0, 1.0]

SOURCE = f"""\
// Bezier Surface Generation: degree-{DEG} patch sampled on a grid.
// Technology-agnostic high-level reference (single thread).
#include <math.h>
#include <stdio.h>

// cross product c = a x b
void cross3(const double* a, const double* b, double* c) {{
    c[0] = a[1] * b[2] - a[2] * b[1];
    c[1] = a[2] * b[0] - a[0] * b[2];
    c[2] = a[0] * b[1] - a[1] * b[0];
}}

double norm3(const double* a) {{
    return sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]);
}}

// approximate surface normals by central finite differences on the
// sampled grid; border samples copy their inner neighbour
void surface_normals(const double* surf, int resu, int resv,
                     double* normals) {{
    for (int iu = 1; iu < resu - 1; iu++) {{
        for (int iv = 1; iv < resv - 1; iv++) {{
            int idx = iu * resv + iv;
            double du[3];
            double dv[3];
            double nrm[3];
            for (int c = 0; c < 3; c++) {{
                du[c] = surf[(idx + resv) * 3 + c]
                    - surf[(idx - resv) * 3 + c];
                dv[c] = surf[(idx + 1) * 3 + c]
                    - surf[(idx - 1) * 3 + c];
            }}
            cross3(du, dv, nrm);
            double len = fmax(norm3(nrm), 1.0e-12);
            for (int c = 0; c < 3; c++) {{
                normals[idx * 3 + c] = nrm[c] / len;
            }}
        }}
    }}
}}

// approximate patch area from grid quads
double surface_area(const double* surf, int resu, int resv) {{
    double area = 0.0;
    for (int iu = 0; iu < resu - 1; iu++) {{
        for (int iv = 0; iv < resv - 1; iv++) {{
            int idx = iu * resv + iv;
            double e1[3];
            double e2[3];
            double nrm[3];
            for (int c = 0; c < 3; c++) {{
                e1[c] = surf[(idx + resv) * 3 + c] - surf[idx * 3 + c];
                e2[c] = surf[(idx + 1) * 3 + c] - surf[idx * 3 + c];
            }}
            cross3(e1, e2, nrm);
            area = area + norm3(nrm);
        }}
    }}
    return area;
}}

int main() {{
    int resu = ws_int("resu");
    int resv = ws_int("resv");
    int npts = resu * resv;
    double* ctrl = ws_array_double("ctrl", {NB} * {NB} * 3);
    double* binom = ws_array_double("binom", {NB});
    double* surf = ws_array_double("surf", npts * 3);
    double* normals = ws_array_double("normals", npts * 3);

    // hotspot: evaluate the patch at every (u, v) sample
    for (int idx = 0; idx < npts; idx++) {{
        int iu = idx / resv;
        int iv = idx % resv;
        double u = (double)iu / (double)(resu - 1);
        double v = (double)iv / (double)(resv - 1);
        double bu[{NB}];
        double bv[{NB}];
        double pu = 1.0;
        double pv = 1.0;
        for (int k = 0; k < {NB}; k++) {{
            bu[k] = binom[k] * pu;
            bv[k] = binom[k] * pv;
            pu = pu * u;
            pv = pv * v;
        }}
        double qu = 1.0;
        double qv = 1.0;
        for (int k = 0; k < {NB}; k++) {{
            bu[{DEG} - k] = bu[{DEG} - k] * qu;
            bv[{DEG} - k] = bv[{DEG} - k] * qv;
            qu = qu * (1.0 - u);
            qv = qv * (1.0 - v);
        }}
        double sx = 0.0;
        double sy = 0.0;
        double sz = 0.0;
        for (int ki = 0; ki < {NB}; ki++) {{
            for (int kj = 0; kj < {NB}; kj++) {{
                double w = bu[ki] * bv[kj];
                sx = sx + w * ctrl[(ki * {NB} + kj) * 3];
                sy = sy + w * ctrl[(ki * {NB} + kj) * 3 + 1];
                sz = sz + w * ctrl[(ki * {NB} + kj) * 3 + 2];
            }}
        }}
        surf[idx * 3] = sx;
        surf[idx * 3 + 1] = sy;
        surf[idx * 3 + 2] = sz;
    }}

    // post-processing: normals, area, bounding z-range
    surface_normals(surf, resu, resv, normals);
    double area = surface_area(surf, resu, resv);
    double zmin = surf[2];
    double zmax = surf[2];
    for (int i = 1; i < npts; i++) {{
        double z = surf[i * 3 + 2];
        if (z < zmin) {{
            zmin = z;
        }}
        if (z > zmax) {{
            zmax = z;
        }}
    }}
    printf("samples: %d\\n", npts);
    printf("approx area: %g\\n", area);
    printf("z range: %g .. %g\\n", zmin, zmax);
    return 0;
}}
"""


def make_workload(scale: float = 1.0) -> Workload:
    res = max(8, int(24 * np.sqrt(scale)))
    rng = np.random.default_rng(19)
    ctrl = rng.random(NB * NB * 3) * 4.0 - 2.0
    return Workload(
        scalars={"resu": res, "resv": res},
        arrays={"ctrl": ctrl.tolist(), "binom": list(BINOM)},
    )


def oracle(workload: Workload) -> Dict[str, np.ndarray]:
    resu = int(workload.scalar("resu"))
    resv = int(workload.scalar("resv"))
    ctrl = np.array(workload._initial_arrays["ctrl"],
                    dtype=float).reshape(NB, NB, 3)
    binom = np.array(BINOM)

    def basis(t: np.ndarray) -> np.ndarray:
        # replicate the source's running-product evaluation order
        out = np.empty((t.size, NB))
        p = np.ones_like(t)
        for k in range(NB):
            out[:, k] = binom[k] * p
            p = p * t
        q = np.ones_like(t)
        for k in range(NB):
            out[:, DEG - k] = out[:, DEG - k] * q
            q = q * (1.0 - t)
        return out

    iu, iv = np.divmod(np.arange(resu * resv), resv)
    u = iu / (resu - 1)
    v = iv / (resv - 1)
    bu = basis(u)
    bv = basis(v)
    surf = np.einsum("pi,pj,ijc->pc", bu, bv, ctrl)
    return {"surf": surf.reshape(-1)}


BEZIER = AppSpec(
    name="bezier",
    display_name="Bezier",
    source=SOURCE,
    workload_factory=make_workload,
    oracle=oracle,
    output_buffers=("surf",),
    sp_tolerant=True,
    fixed_buffers=("ctrl", "binom"),
    eval_scale=21.0,
    summary=("Degree-7 Bezier patch sampling; parallel outer loop, "
             "complex multi-nested fixed inner loops"),
)
