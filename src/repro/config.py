"""One typed home for every ``REPRO_*`` runtime knob.

Four PRs grew eight environment variables, each parsed ad hoc at its
point of use.  :class:`ReproConfig` consolidates them into a single
frozen value object with one parsing rule set, an explicit precedence
chain, and a JSON rendering the ``python -m repro config`` subcommand
prints so an operator can see exactly what a process would run with.
The fleet tier (PR 6) adds the ``REPRO_FLEET_*`` family -- runner
list, peer list, steal threshold, probe interval -- consumed by
``python -m repro router`` and ``serve --peers``.

Precedence (weakest to strongest)::

    environment  <  CLI flag  <  explicit keyword argument

built with::

    cfg = ReproConfig.resolve(cli={"workers": args.workers},
                              cache_dir=explicit_dir)

``resolve`` starts from :meth:`from_env`, overlays the non-``None``
CLI values, then the non-``None`` keyword arguments.  Fields that
nobody set keep their documented defaults.

The knobs (and the env var each consolidates):

=================  ======================  ==============================
field              env var                 meaning
=================  ======================  ==============================
``cache_dir``      ``REPRO_CACHE_DIR``     persistent result-cache root
``workers``        ``REPRO_WORKERS``       service worker-pool size
``exec_mode``      ``REPRO_EXEC``          ``compiled`` | ``interp``
``fastpath``       ``REPRO_FASTPATH``      numpy affine-loop fast path
``profile_cache``  ``REPRO_PROFILE_CACHE`` share profiling runs
``dse_mode``       ``REPRO_DSE``           ``batched`` | ``point``
``native``         ``REPRO_NATIVE``        generated-C batch core (cffi)
``retries``        ``REPRO_RETRIES``       per-job retry budget
``trace_dir``      ``REPRO_TRACE_DIR``     per-process JSONL span sink
``faults``         ``REPRO_FAULTS``        fault-injection plan spec
``sim_latency_s``  ``REPRO_SIM_LATENCY_S`` simulated toolchain latency
``fleet_runners``  ``REPRO_FLEET_RUNNERS`` router: runner URLs (comma)
``fleet_peers``    ``REPRO_FLEET_PEERS``   runner: peer-fetch URLs
``fleet_steal_threshold``  ``REPRO_FLEET_STEAL_THRESHOLD``  queue depth
                                           past which shards are stolen
``fleet_probe_interval_s`` ``REPRO_FLEET_PROBE_INTERVAL``   runner
                                           health-probe period (s)
``obs_buffer``     ``REPRO_OBS_BUFFER``    span ring-buffer capacity for
                                           the fleet collector (0 = off)
``profile_hz``     ``REPRO_PROFILE_HZ``    sampling stack profiler rate
                                           in Hz (0 = off)
``slo_target``     ``REPRO_SLO_TARGET``    SLO good-request target (0,1)
``slo_latency_s``  ``REPRO_SLO_LATENCY_S`` SLO per-request latency
                                           budget in seconds
``durable``        ``REPRO_DURABLE``       fsync cache/journal writes
``journal_dir``    ``REPRO_JOURNAL_DIR``   router write-ahead journal
                                           root (enables recovery)
``fleet_standby_of``  ``REPRO_FLEET_STANDBY_OF``  primary router URL a
                                           warm standby tails
=================  ======================  ==============================

Some subsystems read their env var lazily at call time (the execution
engine, the vectorizer, the profile cache); :meth:`apply` writes the
config back into an environ mapping so those readers -- and pool
worker *processes*, which inherit the environment -- observe the same
resolved values.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, MutableMapping, Optional

#: execution engines ``exec_mode`` may select (repro.lang.engine._MODES)
EXEC_MODES = ("compiled", "interp")

#: DSE lowering modes ``dse_mode`` may select (repro.flow.sweep)
DSE_MODES = ("batched", "point")

#: (field, env var) in documentation order
ENV_VARS = (
    ("cache_dir", "REPRO_CACHE_DIR"),
    ("workers", "REPRO_WORKERS"),
    ("exec_mode", "REPRO_EXEC"),
    ("fastpath", "REPRO_FASTPATH"),
    ("dse_mode", "REPRO_DSE"),
    ("native", "REPRO_NATIVE"),
    ("profile_cache", "REPRO_PROFILE_CACHE"),
    ("retries", "REPRO_RETRIES"),
    ("trace_dir", "REPRO_TRACE_DIR"),
    ("faults", "REPRO_FAULTS"),
    ("sim_latency_s", "REPRO_SIM_LATENCY_S"),
    ("fleet_runners", "REPRO_FLEET_RUNNERS"),
    ("fleet_peers", "REPRO_FLEET_PEERS"),
    ("fleet_steal_threshold", "REPRO_FLEET_STEAL_THRESHOLD"),
    ("fleet_probe_interval_s", "REPRO_FLEET_PROBE_INTERVAL"),
    ("obs_buffer", "REPRO_OBS_BUFFER"),
    ("profile_hz", "REPRO_PROFILE_HZ"),
    ("slo_target", "REPRO_SLO_TARGET"),
    ("slo_latency_s", "REPRO_SLO_LATENCY_S"),
    ("durable", "REPRO_DURABLE"),
    ("journal_dir", "REPRO_JOURNAL_DIR"),
    ("fleet_standby_of", "REPRO_FLEET_STANDBY_OF"),
)


def _split_urls(raw: Optional[str]) -> list:
    """A comma-separated URL list field, parsed (order-preserving)."""
    if not raw:
        return []
    return [part.strip().rstrip("/") for part in raw.split(",")
            if part.strip()]


class ConfigError(ValueError):
    """A knob value failed to parse or validate."""


def _parse_int(name: str, raw: str, minimum: int) -> int:
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be an integer, got {raw!r}") \
            from None
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


def _parse_float(name: str, raw: str, minimum: float) -> float:
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number, got {raw!r}") \
            from None
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


def _parse_bool(name: str, raw: Any) -> bool:
    # matches the historical readers: only "0" disables
    if isinstance(raw, bool):
        return raw
    return str(raw).strip() != "0"


@dataclass(frozen=True)
class ReproConfig:
    """Resolved runtime configuration (immutable value object)."""

    cache_dir: Optional[str] = None
    workers: int = 1
    exec_mode: str = "compiled"
    fastpath: bool = True
    #: DSE lowering: ``batched`` evaluates whole candidate spaces as
    #: tensors, ``point`` is the one-candidate-at-a-time fidelity
    #: fallback (both produce element-wise identical results)
    dse_mode: str = "batched"
    #: route the batched affine core through generated C (cffi); falls
    #: back to numpy silently when no compiler is available
    native: bool = False
    profile_cache: bool = True
    retries: int = 0
    trace_dir: Optional[str] = None
    faults: Optional[str] = None
    #: per-job simulated external-toolchain latency in seconds -- the
    #: wall time a real (non-simulated) flow spends blocked on vendor
    #: tools.  Load/saturation testing knob; 0 disables.
    sim_latency_s: float = 0.0
    #: comma-separated runner base URLs `python -m repro router` shards
    #: jobs across
    fleet_runners: Optional[str] = None
    #: comma-separated peer base URLs a runner's cache may fetch
    #: completed results from before recomputing
    fleet_peers: Optional[str] = None
    #: owner queue depth past which the router steals the job onto the
    #: least-loaded healthy runner
    fleet_steal_threshold: int = 4
    #: router health-probe period in seconds
    fleet_probe_interval_s: float = 2.0
    #: span ring-buffer capacity a server keeps for the fleet collector
    #: (``/v1/obs/spans``); 0 disables collection entirely
    obs_buffer: int = 0
    #: sampling stack-profiler frequency in Hz (``/v1/obs/profile``);
    #: 0 (the default) keeps the profiler off
    profile_hz: float = 0.0
    #: SLO good-request target in (0, 1) for the burn-rate tracker
    slo_target: float = 0.99
    #: per-request latency past which a (successful) request still
    #: counts against the SLO error budget
    slo_latency_s: float = 5.0
    #: fsync cache and journal writes so a SIGKILL/power-loss never
    #: leaves a half-visible entry (opt-in: slower, crash-consistent)
    durable: bool = False
    #: directory the router's write-ahead journal (and lease file)
    #: lives in; unset disables journaling and crash recovery
    journal_dir: Optional[str] = None
    #: primary router base URL this process warm-stands-by for (tails
    #: the journal, takes over behind the lease on primary death)
    fleet_standby_of: Optional[str] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.exec_mode not in EXEC_MODES:
            raise ConfigError(
                f"exec_mode must be one of {EXEC_MODES}, "
                f"got {self.exec_mode!r}")
        if self.dse_mode not in DSE_MODES:
            raise ConfigError(
                f"dse_mode must be one of {DSE_MODES}, "
                f"got {self.dse_mode!r}")
        if self.sim_latency_s < 0:
            raise ConfigError(
                f"sim_latency_s must be >= 0, got {self.sim_latency_s}")
        if self.fleet_steal_threshold < 1:
            raise ConfigError(
                f"fleet_steal_threshold must be >= 1, "
                f"got {self.fleet_steal_threshold}")
        if not self.fleet_probe_interval_s > 0:
            raise ConfigError(
                f"fleet_probe_interval_s must be > 0, "
                f"got {self.fleet_probe_interval_s}")
        if self.obs_buffer < 0:
            raise ConfigError(
                f"obs_buffer must be >= 0, got {self.obs_buffer}")
        if self.profile_hz < 0:
            raise ConfigError(
                f"profile_hz must be >= 0, got {self.profile_hz}")
        if not 0.0 < self.slo_target < 1.0:
            raise ConfigError(
                f"slo_target must be in (0, 1), got {self.slo_target}")
        if not self.slo_latency_s > 0:
            raise ConfigError(
                f"slo_latency_s must be > 0, got {self.slo_latency_s}")

    # ------------------------------------------------------------------
    def runner_list(self) -> list:
        """``fleet_runners`` parsed into a URL list."""
        return _split_urls(self.fleet_runners)

    def peer_list(self) -> list:
        """``fleet_peers`` parsed into a URL list."""
        return _split_urls(self.fleet_peers)

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None
                 ) -> "ReproConfig":
        """The configuration the environment alone selects."""
        env = os.environ if environ is None else environ
        kwargs: Dict[str, Any] = {}
        raw = env.get("REPRO_CACHE_DIR")
        if raw:
            kwargs["cache_dir"] = raw
        raw = env.get("REPRO_WORKERS")
        if raw is not None and raw.strip():
            kwargs["workers"] = _parse_int("REPRO_WORKERS", raw, 1)
        raw = env.get("REPRO_EXEC")
        if raw is not None and raw.strip():
            mode = raw.strip().lower()
            # the lang engine silently falls back to 'compiled' on an
            # unknown mode; the config layer keeps that forgiveness so
            # `repro config` reports what will actually run
            kwargs["exec_mode"] = mode if mode in EXEC_MODES else "compiled"
        raw = env.get("REPRO_DSE")
        if raw is not None and raw.strip():
            mode = raw.strip().lower()
            # same forgiveness as REPRO_EXEC: unknown modes run the
            # default lowering rather than failing the process
            kwargs["dse_mode"] = mode if mode in DSE_MODES else "batched"
        raw = env.get("REPRO_NATIVE")
        if raw is not None and raw.strip():
            kwargs["native"] = raw.strip() == "1"
        raw = env.get("REPRO_FASTPATH")
        if raw is not None:
            kwargs["fastpath"] = _parse_bool("REPRO_FASTPATH", raw)
        raw = env.get("REPRO_PROFILE_CACHE")
        if raw is not None:
            kwargs["profile_cache"] = _parse_bool(
                "REPRO_PROFILE_CACHE", raw)
        raw = env.get("REPRO_RETRIES")
        if raw is not None and raw.strip():
            kwargs["retries"] = _parse_int("REPRO_RETRIES", raw, 0)
        raw = env.get("REPRO_TRACE_DIR")
        if raw:
            kwargs["trace_dir"] = raw
        raw = env.get("REPRO_FAULTS")
        if raw:
            kwargs["faults"] = raw
        raw = env.get("REPRO_SIM_LATENCY_S")
        if raw is not None and raw.strip():
            kwargs["sim_latency_s"] = _parse_float(
                "REPRO_SIM_LATENCY_S", raw, 0.0)
        raw = env.get("REPRO_FLEET_RUNNERS")
        if raw:
            kwargs["fleet_runners"] = raw
        raw = env.get("REPRO_FLEET_PEERS")
        if raw:
            kwargs["fleet_peers"] = raw
        raw = env.get("REPRO_FLEET_STEAL_THRESHOLD")
        if raw is not None and raw.strip():
            kwargs["fleet_steal_threshold"] = _parse_int(
                "REPRO_FLEET_STEAL_THRESHOLD", raw, 1)
        raw = env.get("REPRO_FLEET_PROBE_INTERVAL")
        if raw is not None and raw.strip():
            kwargs["fleet_probe_interval_s"] = _parse_float(
                "REPRO_FLEET_PROBE_INTERVAL", raw, 0.0)
        raw = env.get("REPRO_OBS_BUFFER")
        if raw is not None and raw.strip():
            kwargs["obs_buffer"] = _parse_int("REPRO_OBS_BUFFER", raw, 0)
        raw = env.get("REPRO_PROFILE_HZ")
        if raw is not None and raw.strip():
            kwargs["profile_hz"] = _parse_float(
                "REPRO_PROFILE_HZ", raw, 0.0)
        raw = env.get("REPRO_SLO_TARGET")
        if raw is not None and raw.strip():
            kwargs["slo_target"] = _parse_float(
                "REPRO_SLO_TARGET", raw, 0.0)
        raw = env.get("REPRO_SLO_LATENCY_S")
        if raw is not None and raw.strip():
            kwargs["slo_latency_s"] = _parse_float(
                "REPRO_SLO_LATENCY_S", raw, 0.0)
        raw = env.get("REPRO_DURABLE")
        if raw is not None and raw.strip():
            # opt-in like REPRO_NATIVE: only an explicit "1" enables
            kwargs["durable"] = raw.strip() == "1"
        raw = env.get("REPRO_JOURNAL_DIR")
        if raw:
            kwargs["journal_dir"] = raw
        raw = env.get("REPRO_FLEET_STANDBY_OF")
        if raw:
            kwargs["fleet_standby_of"] = raw.strip().rstrip("/")
        return cls(**kwargs)

    @classmethod
    def resolve(cls, environ: Optional[Mapping[str, str]] = None,
                cli: Optional[Mapping[str, Any]] = None,
                **kwargs: Any) -> "ReproConfig":
        """Layer env < CLI flags < explicit kwargs into one config.

        ``None`` values in ``cli`` / ``kwargs`` mean "not given" and
        never override a weaker layer.
        """
        cfg = cls.from_env(environ)
        for layer in (cli or {}, kwargs):
            overrides = {k: v for k, v in layer.items() if v is not None}
            if overrides:
                unknown = set(overrides) - {f.name for f in
                                            dataclasses.fields(cls)}
                if unknown:
                    raise ConfigError(
                        f"unknown config field(s): {sorted(unknown)}")
                cfg = dataclasses.replace(cfg, **overrides)
        return cfg

    def replace(self, **overrides: Any) -> "ReproConfig":
        """A copy with the non-``None`` overrides applied."""
        overrides = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **overrides) if overrides else self

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def env_dict(self) -> Dict[str, str]:
        """The config as the ``REPRO_*`` mapping that reproduces it."""
        out: Dict[str, str] = {}
        for field_name, var in ENV_VARS:
            value = getattr(self, field_name)
            if isinstance(value, bool):
                out[var] = "1" if value else "0"
            elif value is not None:
                out[var] = str(value)
        return out

    def apply(self, environ: Optional[MutableMapping[str, str]] = None
              ) -> "ReproConfig":
        """Write the config into ``environ`` (default ``os.environ``).

        Lazy env readers (execution engine, vectorizer, profile cache)
        and inherited-environment pool workers then see the resolved
        values.  Unset optional fields *remove* their variable, so an
        explicit ``cache_dir=None`` really disables the cache.
        """
        env = os.environ if environ is None else environ
        values = self.env_dict()
        for _field, var in ENV_VARS:
            if var in values:
                env[var] = values[var]
            else:
                env.pop(var, None)
        return self
