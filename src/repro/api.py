"""repro.api -- the one documented programmatic surface.

Everything a caller needs to generate designs lives here, whether the
work runs in-process, through the cached/scheduled
:class:`~repro.service.DesignService`, or (via
:class:`repro.client.ReproClient`) against a remote
``python -m repro serve`` instance:

- :func:`run_flow` -- one (app, mode) PSA-flow, blocking, through
  whatever backend the :class:`~repro.config.ReproConfig` selects;
- :func:`open_service` -- a configured :class:`DesignService` for
  callers that manage many jobs themselves;
- :func:`submit` / :func:`gather` -- non-blocking submission and
  batched collection on a service;
- :func:`list_apps` / :func:`list_modes` -- the catalog the service
  (and the HTTP API) exposes;
- :func:`shared_runner` / :func:`set_shared_runner` -- the
  process-wide :class:`~repro.evalharness.runner.EvaluationRunner`
  the experiment modules share (canonical home since PR 5; the old
  ``repro.evalharness.runner`` imports still work but warn).

The CLI (``repro.__main__``), the evaluation harness and the
benchmarks all route through this module, so the in-process path and
the networked path exercise identical code.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.apps.registry import ALL_APPS, PAPER_ORDER, get_app
from repro.config import ReproConfig
from repro.flow.engine import FlowEngine
from repro.service import DesignService, FlowJob, ServiceResult
from repro.service.batch import expand_jobs  # noqa: F401  (re-export)
from repro.service.jobs import VALID_MODES

__all__ = [
    "run_flow", "submit", "gather", "list_apps", "list_modes",
    "open_service", "expand_jobs", "shared_runner", "set_shared_runner",
]


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------

def list_apps() -> List[Dict[str, Any]]:
    """The benchmark catalog, paper order first (plain data)."""
    ordered = list(PAPER_ORDER) + sorted(set(ALL_APPS) - set(PAPER_ORDER))
    out = []
    for name in ordered:
        app = ALL_APPS[name]
        out.append({
            "name": name,
            "display_name": app.display_name,
            "reference_loc": app.reference_loc,
            "summary": app.summary,
        })
    return out


def list_modes() -> List[str]:
    """PSA strategies a job may request."""
    return list(VALID_MODES)


# ----------------------------------------------------------------------
# Services and flows
# ----------------------------------------------------------------------

def open_service(config: Optional[ReproConfig] = None,
                 engine: Optional[FlowEngine] = None,
                 **overrides: Any) -> DesignService:
    """A :class:`DesignService` built from the resolved configuration.

    ``config`` defaults to :meth:`ReproConfig.from_env`; keyword
    overrides (``cache_dir=...``, ``workers=...``) take precedence over
    both.  The caller owns the service (use it as a context manager or
    call ``close()``).
    """
    cfg = (config or ReproConfig.from_env()).replace(**overrides)
    cache = None
    if cfg.cache_dir and cfg.peer_list():
        # fleet runner: local misses read through to peer nodes
        from repro.fleet.peers import PeerFetchCache
        from repro.service.cache import ResultCache

        cache = PeerFetchCache(ResultCache(cfg.cache_dir),
                               cfg.peer_list())
    return DesignService(engine=engine, cache_dir=cfg.cache_dir,
                         workers=cfg.workers,
                         default_retries=cfg.retries,
                         cache=cache)


def run_flow(app: str, mode: str = "informed", *,
             config: Optional[ReproConfig] = None,
             service: Optional[DesignService] = None,
             intensity_threshold: Optional[float] = None,
             scale: Optional[float] = None,
             timeout: Optional[float] = None) -> Any:
    """Run one PSA-flow and block for its result.

    With a ``service`` (or a config that wants caching / parallelism)
    the flow goes through the design service -- content-hash dedup,
    persistent cache, retry policy -- and may return a
    :class:`~repro.flow.serialize.FlowResultRecord`.  With the default
    single-worker uncached config it runs directly on a
    :class:`FlowEngine` and returns the live
    :class:`~repro.flow.engine.FlowResult`; both expose the same read
    API.
    """
    job_kwargs: Dict[str, Any] = {}
    if intensity_threshold is not None:
        job_kwargs["intensity_threshold"] = intensity_threshold
    if scale is not None:
        job_kwargs["scale"] = scale
    if service is not None:
        return service.run(service.job_for(app, mode, **job_kwargs),
                           timeout=timeout)
    cfg = config or ReproConfig.from_env()
    if cfg.cache_dir is None and cfg.workers == 1 and cfg.retries == 0:
        # nothing the service adds is wanted: run on the engine itself
        engine = FlowEngine(**({"intensity_threshold": intensity_threshold}
                               if intensity_threshold is not None else {}))
        return engine.run(get_app(app), mode=mode, scale=scale or 1.0)
    with open_service(cfg) as svc:
        return svc.run(svc.job_for(app, mode, **job_kwargs),
                       timeout=timeout)


def submit(service: DesignService, app_or_job, mode: str = "informed",
           **job_kwargs: Any) -> ServiceResult:
    """Submit one job (by :class:`FlowJob` or by app/mode) to a service."""
    if isinstance(app_or_job, FlowJob):
        return service.submit(app_or_job)
    return service.submit(service.job_for(app_or_job, mode, **job_kwargs))


def gather(submissions: Iterable[ServiceResult],
           timeout: Optional[float] = None,
           return_exceptions: bool = False) -> List[Any]:
    """Block for many submissions; results in submission order.

    With ``return_exceptions`` the failed entries hold the exception
    instead of raising (mirrors ``asyncio.gather``).
    """
    out: List[Any] = []
    for submission in list(submissions):
        try:
            out.append(submission.result(timeout))
        except BaseException as exc:
            if not return_exceptions:
                raise
            out.append(exc)
    return out


# ----------------------------------------------------------------------
# The process-wide evaluation runner (moved here from
# repro.evalharness.runner, which keeps deprecated shims).
# ----------------------------------------------------------------------
_SHARED: Optional[Any] = None


def shared_runner():
    """The process-wide service-backed evaluation runner."""
    global _SHARED
    if _SHARED is None:
        from repro.evalharness.runner import EvaluationRunner

        _SHARED = EvaluationRunner()
    return _SHARED


def set_shared_runner(runner):
    """Swap the shared runner (tests, custom services); returns the old."""
    global _SHARED
    previous, _SHARED = _SHARED, runner
    return previous
