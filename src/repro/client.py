"""repro.client -- the synchronous HTTP client for ``repro serve``.

Stdlib only (``urllib``).  :class:`ReproClient` speaks the ``/v1``
wire schema from :mod:`repro.server.protocol`, so every error body
comes back as the **same exception type** the in-process
:meth:`JobHandle.result` path raises -- remote and local callers share
one taxonomy.  Transient refusals (``429`` overload/busy, ``503``
unavailable, connection resets) are retried with backoff, honoring the
server's ``Retry-After`` whenever it sends one.

The evaluation harness and the batch CLI accept ``--server URL`` (or
``$REPRO_SERVER``) and route through this client; results come back as
:class:`~repro.flow.serialize.FlowResultRecord`, the same read API a
cache hit returns in-process.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import (
    Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union,
)

from repro import obs
from repro.flow.serialize import FlowResultRecord, result_from_dict
from repro.resilience import faults
from repro.server.protocol import error_from_payload
from repro.service.scheduler import JobResultPending, JobTimeout

#: error codes worth retrying: transient refusals, not terminal job
#: outcomes (a quarantined job stays quarantined -- no point retrying)
RETRYABLE_CODES = ("overloaded", "busy", "unavailable")


class ReproClient:
    """Talks to ``python -m repro serve`` (or ``router``) endpoints.

    ``base_url`` accepts a single URL, a comma-separated list, or a
    sequence -- ``"http://primary,http://standby"`` gives the client a
    failover chain: a connect error (or a retryable refusal, which is
    what a fenced ex-primary or a pre-takeover standby sheds) rotates
    to the next endpoint before the retry, so a router failover is
    invisible to callers beyond one backoff delay.

    ``jitter`` spreads every retry delay by a random factor in
    ``[1-jitter, 1+jitter]`` so a shedding server's synchronized
    ``Retry-After`` does not turn N clients into a thundering herd.
    ``max_wait_s`` caps the *total* wall time one logical request may
    spend across retries (and :meth:`run_flow` polling); past it the
    client raises :class:`JobTimeout` instead of retrying forever.
    """

    def __init__(self, base_url: Union[str, Sequence[str]],
                 timeout_s: float = 60.0,
                 max_retries: int = 5, backoff_s: float = 0.25,
                 poll_interval_s: float = 0.2, jitter: float = 0.2,
                 max_wait_s: Optional[float] = None,
                 rng: Optional[random.Random] = None):
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if max_wait_s is not None and not max_wait_s > 0:
            raise ValueError(f"max_wait_s must be > 0, got {max_wait_s}")
        urls = (base_url.split(",") if isinstance(base_url, str)
                else list(base_url))
        self.endpoints = [u.strip().rstrip("/") for u in urls
                          if u and u.strip()]
        if not self.endpoints:
            raise ValueError("base_url must name at least one endpoint")
        self._endpoint_i = 0
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.poll_interval_s = poll_interval_s
        self.jitter = jitter
        self.max_wait_s = max_wait_s
        self._rng = rng or random.Random()
        self._sleep = time.sleep       # monkeypatch point for tests

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    @property
    def base_url(self) -> str:
        """The endpoint requests currently go to (rotation is sticky:
        after a failover the working endpoint stays first)."""
        return self.endpoints[self._endpoint_i]

    @base_url.setter
    def base_url(self, value: str) -> None:
        self.endpoints = [value.rstrip("/")]
        self._endpoint_i = 0

    def _rotate(self) -> None:
        """Fail over to the next endpoint (no-op with only one)."""
        if len(self.endpoints) > 1:
            self._endpoint_i = ((self._endpoint_i + 1)
                                % len(self.endpoints))

    def _request_once(self, method: str, path: str,
                      payload: Optional[Dict[str, Any]] = None
                      ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        mode = faults.inject_wire("net.request")
        if mode == "drop":
            raise urllib.error.URLError(
                f"injected fault: request dropped before send "
                f"({method} {path})")
        if mode == "http_500":
            return 503, {"error": {
                "code": "unavailable",
                "message": f"injected fault: synthetic upstream 5xx "
                           f"({method} {path})",
                "retry_after_s": 0.1}}, {}
        if mode == "delay":
            time.sleep(0.05)
        body = None
        headers = {"Accept": "application/json"}
        # wire-level trace propagation: when the caller runs inside a
        # span, its context rides along so the server (or the fleet
        # router) parents the job's remote spans onto this trace
        traceparent = obs.format_traceparent(obs.current_context())
        if traceparent is not None:
            headers["traceparent"] = traceparent
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                data = json.loads(resp.read().decode("utf-8") or "{}")
                result = resp.status, data, dict(resp.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", "replace")
            try:
                data = json.loads(raw or "{}")
            except json.JSONDecodeError:
                data = {"error": {"code": "internal", "message": raw}}
            result = exc.code, data, dict(exc.headers or {})
        if mode == "truncated":
            # the exchange happened; the response is lost -- the same
            # ambiguity a torn TCP stream leaves, which content-hash
            # idempotent resubmission absorbs
            raise urllib.error.URLError(
                f"injected fault: response truncated after exchange "
                f"({method} {path})")
        return result

    def _jittered(self, delay: float) -> float:
        """``delay`` spread by the configured jitter factor."""
        if self.jitter <= 0 or delay <= 0:
            return max(0.0, delay)
        spread = self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return max(0.0, delay * spread)

    def _retry_delay(self, status: int, headers: Dict[str, str],
                     payload: Dict[str, Any], attempt: int) -> float:
        base = None
        for name, value in headers.items():
            if name.lower() == "retry-after":
                try:
                    base = max(0.0, float(value))
                except ValueError:
                    pass
                break
        if base is None:
            try:
                base = max(0.0, float(payload["error"]["retry_after_s"]))
            except (KeyError, TypeError, ValueError):
                base = self.backoff_s * (2 ** attempt)
        return self._jittered(base)

    def _deadline(self) -> Optional[float]:
        return (None if self.max_wait_s is None
                else time.monotonic() + self.max_wait_s)

    def _check_budget(self, deadline: Optional[float], delay: float,
                      what: str,
                      last: Optional[JobResultPending] = None) -> None:
        """Raise :class:`JobTimeout` when sleeping would blow the cap.

        ``last`` is the most recent pending answer, so the timeout
        reports where the job actually was when the client gave up
        (mirroring :class:`JobResultPending`) instead of discarding it.
        """
        if deadline is not None and time.monotonic() + delay > deadline:
            raise JobTimeout(
                f"{what} exceeded the client retry budget "
                f"(max_wait_s={self.max_wait_s}); giving up instead of "
                f"retrying past it",
                status=getattr(last, "status", None),
                attempts=getattr(last, "attempts", None))

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 retry: bool = True) -> Dict[str, Any]:
        """One request with transient-error retries; raises the mapped
        taxonomy exception for any non-2xx (and for 202 pending).

        Both retry classes rotate the endpoint chain first: a connect
        error means this endpoint is gone, and a retryable refusal is
        what a standby (or fenced ex-primary) sheds -- either way the
        next endpoint is the better bet.
        """
        attempt = 0
        deadline = self._deadline()
        while True:
            try:
                status, data, headers = self._request_once(
                    method, path, payload)
            except urllib.error.URLError:
                if not retry or attempt >= self.max_retries:
                    raise
                self._rotate()
                delay = self._jittered(self.backoff_s * (2 ** attempt))
                self._check_budget(deadline, delay,
                                   f"{method} {path} (connect retries)")
                self._sleep(delay)
                attempt += 1
                continue
            code = ((data.get("error") or {}).get("code")
                    if isinstance(data, dict) else None)
            if (code in RETRYABLE_CODES and retry
                    and attempt < self.max_retries):
                self._rotate()
                delay = self._retry_delay(status, headers, data, attempt)
                self._check_budget(deadline, delay,
                                   f"{method} {path} ({code} retries)")
                self._sleep(delay)
                attempt += 1
                continue
            if status == 202 or status >= 400:
                raise error_from_payload(status, data)
            return data

    # ------------------------------------------------------------------
    # Catalog / operations
    # ------------------------------------------------------------------

    def apps(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/apps")["apps"]

    def modes(self) -> List[str]:
        return self._request("GET", "/v1/modes")["modes"]

    def health(self) -> Dict[str, Any]:
        status, data, _ = self._request_once("GET", "/healthz")
        data["http_status"] = status
        return data

    def metrics(self) -> str:
        """Raw Prometheus exposition text from ``/metrics``."""
        request = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(request,
                                    timeout=self.timeout_s) as resp:
            return resp.read().decode("utf-8")

    # ------------------------------------------------------------------
    # Fleet observability
    # ------------------------------------------------------------------

    def obs_summary(self) -> Dict[str, Any]:
        """The server's ``/v1/obs/summary`` (router or runner role)."""
        return self._request("GET", "/v1/obs/summary")

    def obs_trace(self, job_id: str) -> Dict[str, Any]:
        """The whole-fleet Perfetto trace for a routed job (router)."""
        return self._request("GET", f"/v1/obs/traces/{job_id}",
                             retry=False)

    def obs_spans(self, since: int = 0) -> Dict[str, Any]:
        """Drain a runner's span buffer past ``since`` (collector use)."""
        return self._request("GET", f"/v1/obs/spans?since={since}")

    def obs_profile(self) -> str:
        """Folded-stack profiler dump, or raises 404 when it's off."""
        request = urllib.request.Request(
            self.base_url + "/v1/obs/profile")
        with urllib.request.urlopen(request,
                                    timeout=self.timeout_s) as resp:
            return resp.read().decode("utf-8")

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def submit(self, app: str, mode: str = "informed",
               **job_kwargs: Any) -> Dict[str, Any]:
        """Submit one job; returns the job record (``id`` is the
        content hash -- resubmitting the same spec is a no-op)."""
        payload = {"app": app, "mode": mode}
        payload.update(job_kwargs)
        return self._request("POST", "/v1/jobs", payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def result(self, job_id: str) -> FlowResultRecord:
        """The finished result; raises the job's terminal taxonomy
        error, or :class:`JobResultPending` while it still runs."""
        data = self._request("GET", f"/v1/jobs/{job_id}/result")
        return result_from_dict(data)

    def run_flow(self, app: str, mode: str = "informed",
                 timeout: Optional[float] = None,
                 **job_kwargs: Any) -> FlowResultRecord:
        """Submit and block until the result is ready (the remote
        equivalent of :func:`repro.api.run_flow`)."""
        job_id = self.submit(app, mode, **job_kwargs)["id"]
        deadline = None if timeout is None else time.monotonic() + timeout
        # with no explicit timeout the client-wide budget still bounds
        # the poll loop -- but as a JobTimeout, not a pending status
        budget = self._deadline() if timeout is None else None
        last: Optional[JobResultPending] = None
        while True:
            try:
                return self.result(job_id)
            except JobResultPending as pending:
                last = pending
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                self._check_budget(budget, self.poll_interval_s,
                                   f"polling {app}/{mode} ({job_id[:12]})",
                                   last=last)
                self._sleep(self.poll_interval_s)

    def events(self, job_id: str,
               timeout: Optional[float] = None,
               last_event_id: Optional[int] = None
               ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(event, data)`` from the job's SSE stream until the
        terminal frame (``done`` / ``shutdown``) closes it.

        **Resumable**: the server numbers frames with SSE ``id:``
        lines; when the stream dies early (router restart, failover)
        the client reconnects -- rotating endpoints -- with a
        ``Last-Event-ID`` header, so the server replays exactly the
        missed events instead of the client silently dropping them.
        Up to ``max_retries`` consecutive dead connections are
        retried; a stream that makes progress resets the counter.
        """
        last = last_event_id
        failures = 0
        while True:
            headers = {"Accept": "text/event-stream"}
            if last is not None:
                headers["Last-Event-ID"] = str(last)
            request = urllib.request.Request(
                self.base_url + f"/v1/jobs/{job_id}/events",
                headers=headers)
            progressed = False
            try:
                with urllib.request.urlopen(
                        request,
                        timeout=timeout or self.timeout_s) as resp:
                    event, data_lines, event_id = None, [], None
                    for raw in resp:
                        line = raw.decode("utf-8").rstrip("\n")
                        line = line.rstrip("\r")
                        if line.startswith("id:"):
                            event_id = line.split(":", 1)[1].strip()
                        elif line.startswith("event:"):
                            event = line.split(":", 1)[1].strip()
                        elif line.startswith("data:"):
                            data_lines.append(
                                line.split(":", 1)[1].strip())
                        elif not line and event is not None:
                            payload = json.loads(
                                "\n".join(data_lines) or "{}")
                            if event_id is not None:
                                try:
                                    last = int(event_id)
                                except ValueError:
                                    pass
                            progressed = True
                            failures = 0
                            yield event, payload
                            if event in ("done", "shutdown"):
                                return
                            event, data_lines, event_id = None, [], None
            except (urllib.error.URLError, ConnectionError,
                    OSError):
                failures += 1
                if failures > self.max_retries:
                    raise
            else:
                # clean EOF without a terminal frame: the upstream
                # died mid-stream (a SIGKILLed router closes with FIN,
                # not an error) -- resume where the ids left off
                failures = 0 if progressed else failures + 1
                if failures > self.max_retries:
                    raise urllib.error.URLError(
                        f"SSE stream for {job_id[:12]} kept closing "
                        f"without a terminal frame "
                        f"({failures - 1} resume attempts)")
            self._rotate()
            self._sleep(self._jittered(
                self.backoff_s * (2 ** min(failures, 4))))
