"""The Design artifact.

A Design is one generated implementation of the application for one
target (and, after device-specific branches, one device).  It carries:

- the application AST with the extracted (and target-optimised) kernel;
- the buffer/scalar interface of the kernel (from extraction + data
  movement analysis), which the management-code generators consume;
- ``metadata`` -- the knobs device-specific tasks and DSE set
  (blocksize, unroll factor, pinned/zero-copy, num_threads, ...);
- performance results filled in by the flow engine.

``render()`` produces the complete human-readable source of the design;
``loc_delta`` is Table I's metric: added lines of code relative to the
reference high-level source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.data_movement import BufferTraffic
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import CType
from repro.meta.unparse import count_loc


@dataclass
class Design:
    app_name: str
    kind: str                      # 'cpu-omp' | 'gpu-hip' | 'fpga-oneapi'
    kernel_name: str
    ast: Ast                       # app + kernel, target-optimised
    params: Tuple[Tuple[str, CType], ...] = ()
    buffers: Tuple[BufferTraffic, ...] = ()
    device: Optional[str] = None   # platform registry key, set at B/C
    reference_loc: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    # -- filled by the flow engine after model evaluation ----------------
    synthesizable: bool = True
    failure_reason: Optional[str] = None
    predicted_time_s: Optional[float] = None
    speedup: Optional[float] = None

    @property
    def label(self) -> str:
        device = self.metadata.get("device_label") or self.device or "generic"
        return f"{self.app_name}/{self.kind}/{device}"

    def buffer(self, name: str) -> BufferTraffic:
        for buf in self.buffers:
            if buf.name == name:
                return buf
        raise KeyError(f"design has no buffer {name!r}")

    # -- rendering / LOC ---------------------------------------------------
    def render(self) -> str:
        """Complete source of this design (dispatches on target kind)."""
        from repro.codegen.hip import render_hip_design
        from repro.codegen.oneapi import render_oneapi_design
        from repro.codegen.openmp import render_openmp_design

        if self.kind == "cpu-omp":
            return render_openmp_design(self)
        if self.kind == "gpu-hip":
            return render_hip_design(self)
        if self.kind == "fpga-oneapi":
            return render_oneapi_design(self)
        raise ValueError(f"unknown design kind {self.kind!r}")

    @property
    def loc(self) -> int:
        return count_loc(self.render())

    @property
    def loc_delta(self) -> int:
        """Added lines of code versus the reference source (Table I)."""
        return self.loc - self.reference_loc

    @property
    def loc_delta_pct(self) -> float:
        if self.reference_loc <= 0:
            return 0.0
        return 100.0 * self.loc_delta / self.reference_loc

    def clone(self) -> "Design":
        """Independent copy for device-specific specialisation (B/C)."""
        return Design(
            app_name=self.app_name,
            kind=self.kind,
            kernel_name=self.kernel_name,
            ast=self.ast.clone(),
            params=self.params,
            buffers=self.buffers,
            device=self.device,
            reference_loc=self.reference_loc,
            metadata=dict(self.metadata),
            synthesizable=self.synthesizable,
            failure_reason=self.failure_reason,
        )

    def export(self, path: str) -> str:
        text = self.render()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return text

    def __repr__(self):
        return (f"<Design {self.label} loc={self.loc} "
                f"(+{self.loc_delta_pct:.0f}%)>")
