"""oneAPI CPU+FPGA design generation ("Generate oneAPI Design", Fig. 4).

Produces the SYCL management code around the extracted kernel:

- a queue bound to the FPGA selector;
- either **buffer/accessor** data movement (the default, used on the
  Arria10, which lacks unified-shared-memory support) or **zero-copy
  USM host allocations** (the Stratix10 "Zero-Copy Data Transfer" task:
  "taking advantage of zero-copy host memory with oneAPI is supported
  on Intel Stratix10 FPGAs ... but not on Arria10s", §III);
- a ``single_task`` kernel enclosing the hotspot loop with its unroll
  pragmas (set by "Unroll Fixed Loops" and the per-device
  "Unroll Until Overmap DSE").

The exported design is a complete translation unit; its added lines are
what Table I counts for the oneAPI columns (the USM style is the more
verbose of the two, matching the S10 > A10 LOC deltas).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.data_movement import DataMovementInfo
from repro.codegen.design import Design
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import CType, FunctionDecl
from repro.meta.unparse import unparse
from repro.transforms.extraction import ExtractionResult

_ACCESS_MODE = {
    "in": "sycl::access::mode::read",
    "out": "sycl::access::mode::write",
    "inout": "sycl::access::mode::read_write",
}


def generate_oneapi_design(app_name: str, ast: Ast,
                           extraction: ExtractionResult,
                           data_movement: Optional[DataMovementInfo],
                           reference_loc: int) -> Design:
    return Design(
        app_name=app_name,
        kind="fpga-oneapi",
        kernel_name=extraction.kernel_name,
        ast=ast,
        params=extraction.params,
        buffers=data_movement.buffers if data_movement else (),
        reference_loc=reference_loc,
        metadata={
            "zero_copy": False,
            "unroll_factor": 1,
        },
    )


def _size_macro(name: str) -> str:
    return f"N_{name.upper()}"


def _indent(text: str, spaces: int) -> List[str]:
    pad = " " * spaces
    return [pad + line if line else "" for line in text.splitlines()]


def _direction(design: Design, name: str) -> str:
    for buf in design.buffers:
        if buf.name == name:
            return buf.direction
    return "inout"


def _render_selector(lines: List[str]) -> None:
    """Device selection + queue construction shared by both styles."""
    lines.append("    #if defined(FPGA_EMULATOR)")
    lines.append("    sycl::ext::intel::fpga_emulator_selector selector;")
    lines.append("    #else")
    lines.append("    sycl::ext::intel::fpga_selector selector;")
    lines.append("    #endif")
    lines.append("    sycl::property_list props{"
                 "sycl::property::queue::enable_profiling()};")
    lines.append("    sycl::queue q(selector, "
                 "fpga_exception_handler, props);")


_EXCEPTION_HANDLER = [
    "// oneAPI asynchronous exception handler (required for FPGA queues)",
    "static auto fpga_exception_handler = [](sycl::exception_list elist) {",
    "    for (std::exception_ptr const& e : elist) {",
    "        try {",
    "            std::rethrow_exception(e);",
    "        } catch (sycl::exception const& exc) {",
    '            std::cerr << "SYCL async exception: " << exc.what()'
    " << std::endl;",
    "            std::terminate();",
    "        }",
    "    }",
    "};",
]


def _render_buffer_style(design: Design, kernel: FunctionDecl) -> List[str]:
    params = ", ".join(f"{ctype} {name}" for name, ctype in design.params)
    pointer_params = [(n, t) for n, t in design.params if t.is_pointer]

    lines = list(_EXCEPTION_HANDLER)
    lines.append("")
    lines.append(f"void {kernel.name}({params})")
    lines.append("{")
    _render_selector(lines)
    lines.append("    {")
    for name, _ in pointer_params:
        lines.append(
            f"        sycl::range<1> range_{name}({_size_macro(name)});")
    for name, ctype in pointer_params:
        lines.append(
            f"        sycl::buffer<{ctype.base}, 1> buf_{name}"
            f"((({ctype.base}*){name}), range_{name});")
    lines.append("        sycl::event evt = q.submit("
                 "[&](sycl::handler& h) {")
    for name, ctype in pointer_params:
        mode = _ACCESS_MODE[_direction(design, name)]
        lines.append(
            f"            auto acc_{name} = "
            f"buf_{name}.get_access<{mode}>(h);")
    lines.append(
        f"            h.single_task<class {kernel.name.title()}Kernel>"
        "([=]() {")
    body = unparse(kernel.body)
    lines.extend(_indent(body, 16))
    lines.append("            });")
    lines.append("        });")
    lines.append("        evt.wait();")
    lines.append("        double t_ns = "
                 "evt.get_profiling_info<"
                 "sycl::info::event_profiling::command_end>() -")
    lines.append("            evt.get_profiling_info<"
                 "sycl::info::event_profiling::command_start>();")
    lines.append('        std::cerr << "kernel time (ms): " '
                 "<< t_ns * 1e-6 << std::endl;")
    lines.append("    }  // buffers synchronise host data here")
    lines.append("    q.wait();")
    lines.append("}")
    return lines


def _render_usm_style(design: Design, kernel: FunctionDecl) -> List[str]:
    params = ", ".join(f"{ctype} {name}" for name, ctype in design.params)
    pointer_params = [(n, t) for n, t in design.params if t.is_pointer]

    lines = list(_EXCEPTION_HANDLER)
    lines.append("")
    lines.append(f"void {kernel.name}({params})")
    lines.append("{")
    _render_selector(lines)
    lines.append("    // Zero-Copy Data Transfer: the Stratix10 supports")
    lines.append("    // unified shared memory; the kernel accesses host")
    lines.append("    // allocations directly, eliminating bulk copies.")
    lines.append("    if (!q.get_device().has("
                 "sycl::aspect::usm_host_allocations)) {")
    lines.append('        std::cerr << "device lacks USM host allocations"'
                 " << std::endl;")
    lines.append("        std::terminate();")
    lines.append("    }")
    for name, ctype in pointer_params:
        lines.append(
            f"    {ctype.base}* usm_{name} = "
            f"sycl::malloc_host<{ctype.base}>({_size_macro(name)}, q);")
    for name, _ in pointer_params:
        lines.append(f"    if (usm_{name} == nullptr) {{")
        lines.append('        std::cerr << "USM host allocation failed: '
                     f'{name}" << std::endl;')
        lines.append("        std::terminate();")
        lines.append("    }")
    for name, ctype in pointer_params:
        if _direction(design, name) in ("in", "inout"):
            lines.append(
                f"    memcpy(usm_{name}, {name}, "
                f"{_size_macro(name)} * sizeof({ctype.base}));")
    lines.append("    sycl::event evt = q.submit([&](sycl::handler& h) {")
    lines.append(
        f"        h.single_task<class {kernel.name.title()}Kernel>([=]() {{")
    body = unparse(kernel.body)
    lines.extend(_indent(body, 12))
    lines.append("        });")
    lines.append("    });")
    lines.append("    evt.wait();")
    for name, ctype in pointer_params:
        if _direction(design, name) in ("out", "inout"):
            lines.append(
                f"    memcpy({name}, usm_{name}, "
                f"{_size_macro(name)} * sizeof({ctype.base}));")
    for name, _ in pointer_params:
        lines.append(f"    sycl::free(usm_{name}, q);")
    lines.append("}")
    return lines


def render_oneapi_design(design: Design) -> str:
    kernel = design.ast.function(design.kernel_name)
    device = design.metadata.get("device_label", design.device or "fpga")
    zero_copy = design.metadata.get("zero_copy", False)
    lines = [
        f"// Auto-generated oneAPI CPU+FPGA design ({design.app_name}, "
        f"{device})",
        "#include <sycl/sycl.hpp>",
        "#include <sycl/ext/intel/fpga_extensions.hpp>",
        "#include <iostream>",
        "#include <cstring>",
        "#include <math.h>",
        "",
        "// Buffer extents determined by dynamic Data In/Out Analysis",
    ]
    nbytes_of = {buf.name: buf.nbytes for buf in design.buffers}
    for name, ctype in design.params:
        if ctype.is_pointer:
            elem_size = max(1, CType(ctype.base).sizeof())
            count = nbytes_of.get(name, 0) // elem_size
            lines.append(f"#define {_size_macro(name)} {count}")
    lines.append("")
    if zero_copy:
        lines.extend(_render_usm_style(design, kernel))
    else:
        lines.extend(_render_buffer_style(design, kernel))
    lines.append("")
    for decl in design.ast.unit.decls:
        if isinstance(decl, FunctionDecl) and decl.name == design.kernel_name:
            continue  # replaced by the SYCL wrapper above
        lines.append(unparse(decl))
    return "\n".join(lines)
