"""HIP CPU+GPU design generation ("Generate HIP Design", Fig. 4).

Produces the management code a HIP port needs around the extracted
kernel:

- a ``__global__`` kernel in which the parallel outer loop becomes the
  thread index mapping (one thread per iteration, guarded by the loop
  bound);
- a host wrapper with the original kernel signature that allocates
  device buffers (sizes from the dynamic data-movement analysis),
  copies inputs, launches with the DSE-selected blocksize, synchronises
  and copies outputs back;
- optional pinned-memory registration ("Employ HIP Pinned Memory") and
  shared-memory staging ("Introduce Shared Mem Buf") sections.

The rest of the application is emitted unchanged, so the exported
design is a complete, readable translation unit (Table I counts its
added lines).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.data_movement import DataMovementInfo
from repro.codegen.design import Design
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import CType, FunctionDecl
from repro.meta.unparse import unparse, unparse_expr
from repro.transforms.extraction import ExtractionResult


def generate_hip_design(app_name: str, ast: Ast,
                        extraction: ExtractionResult,
                        data_movement: Optional[DataMovementInfo],
                        reference_loc: int) -> Design:
    return Design(
        app_name=app_name,
        kind="gpu-hip",
        kernel_name=extraction.kernel_name,
        ast=ast,
        params=extraction.params,
        buffers=data_movement.buffers if data_movement else (),
        reference_loc=reference_loc,
        metadata={
            "blocksize": 256,
            "pinned_memory": False,
            "shared_buffering": False,
            "intrinsics": False,
        },
    )


def _size_macro(name: str) -> str:
    return f"N_{name.upper()}"


def _indent(text: str, spaces: int) -> List[str]:
    pad = " " * spaces
    return [pad + line if line else "" for line in text.splitlines()]


def _render_gpu_kernel(design: Design, kernel: FunctionDecl) -> List[str]:
    loops = kernel.outermost_loops()
    if len(loops) != 1:
        raise ValueError(
            f"HIP generation expects one outer loop in "
            f"{kernel.name}(), found {len(loops)}")
    loop = loops[0]
    var = loop.loop_var() or "i"
    cond = unparse_expr(loop.cond) if loop.cond is not None else "true"
    params = ", ".join(f"{ctype} {name}" for name, ctype in design.params)

    lines = [f"__global__ void {kernel.name}_gpu({params})", "{"]
    lines.append(f"    int {var} = blockIdx.x * blockDim.x + threadIdx.x;")
    lines.append(f"    if (!({cond})) return;")
    if design.metadata.get("shared_buffering"):
        tile = design.metadata.get("shared_tile", "tile")
        elem = design.metadata.get("shared_elem_type", "double")
        blocksize = design.metadata.get("blocksize", 256)
        lines.append(
            f"    __shared__ {elem} {tile}[{blocksize}];"
            "  // staged operand tile (Introduce Shared Mem Buf)")
        lines.append(
            f"    {tile}[threadIdx.x] = 0;  // cooperative fill per tile pass")
        lines.append("    __syncthreads();")
    body = unparse(loop.body)
    lines.extend(_indent(body, 4))
    lines.append("}")
    return lines


def _render_host_wrapper(design: Design, kernel: FunctionDecl) -> List[str]:
    params = ", ".join(f"{ctype} {name}" for name, ctype in design.params)
    blocksize = design.metadata.get("blocksize", 256)
    pinned = design.metadata.get("pinned_memory", False)
    pointer_params = [(name, ctype) for name, ctype in design.params
                      if ctype.is_pointer]
    scalar_params = [(name, ctype) for name, ctype in design.params
                     if not ctype.is_pointer]
    traffic = {buf.name: buf for buf in design.buffers}

    lines = [f"void {kernel.name}({params})", "{"]
    for name, ctype in pointer_params:
        base = ctype.base
        lines.append(f"    {base}* d_{name};")
    for name, ctype in pointer_params:
        size = f"{_size_macro(name)} * sizeof({ctype.base})"
        lines.append(f"    hipMalloc((void**)&d_{name}, {size});")
    if pinned:
        lines.append("    // Employ HIP Pinned Memory: page-lock host"
                     " buffers for DMA-rate transfers")
        for name, ctype in pointer_params:
            size = f"{_size_macro(name)} * sizeof({ctype.base})"
            lines.append(
                f"    hipHostRegister((void*){name}, {size}, "
                "hipHostRegisterDefault);")
    for name, ctype in pointer_params:
        buf = traffic.get(name)
        if buf is None or buf.direction in ("in", "inout"):
            size = f"{_size_macro(name)} * sizeof({ctype.base})"
            lines.append(
                f"    hipMemcpy(d_{name}, {name}, {size}, "
                "hipMemcpyHostToDevice);")
    grid_var = design.params[0][0] if design.params else "n"
    # the launch covers the outer iteration space; the guard in the
    # kernel handles the ragged tail
    loops = kernel.outermost_loops()
    bound = "n"
    if loops and loops[0].cond is not None:
        from repro.meta.ast_nodes import BinaryOp

        cond = loops[0].cond
        if isinstance(cond, BinaryOp):
            bound = unparse_expr(cond.rhs)
    lines.append(f"    dim3 block({blocksize});")
    lines.append(f"    dim3 grid(({bound} + {blocksize - 1}) / {blocksize});")
    args = ", ".join(
        (f"d_{name}" if ctype.is_pointer else name)
        for name, ctype in design.params)
    shared = design.metadata.get("shared_bytes", 0)
    lines.append(
        f"    hipLaunchKernelGGL({kernel.name}_gpu, grid, block, "
        f"{shared}, 0, {args});")
    lines.append("    hipDeviceSynchronize();")
    for name, ctype in pointer_params:
        buf = traffic.get(name)
        if buf is None or buf.direction in ("out", "inout"):
            size = f"{_size_macro(name)} * sizeof({ctype.base})"
            lines.append(
                f"    hipMemcpy({name}, d_{name}, {size}, "
                "hipMemcpyDeviceToHost);")
    if pinned:
        for name, _ in pointer_params:
            lines.append(f"    hipHostUnregister((void*){name});")
    for name, _ in pointer_params:
        lines.append(f"    hipFree(d_{name});")
    lines.append("}")
    return lines


def render_hip_design(design: Design) -> str:
    kernel = design.ast.function(design.kernel_name)
    device = design.metadata.get("device_label", design.device or "gpu")
    lines = [
        f"// Auto-generated HIP CPU+GPU design ({design.app_name}, "
        f"{device})",
        "#include <hip/hip_runtime.h>",
        "#include <math.h>",
        "",
        "// Buffer extents determined by dynamic Data In/Out Analysis",
    ]
    nbytes_of = {buf.name: buf.nbytes for buf in design.buffers}
    for name, ctype in design.params:
        if ctype.is_pointer:
            elem_size = max(1, CType(ctype.base).sizeof())
            count = nbytes_of.get(name, 0) // elem_size
            lines.append(f"#define {_size_macro(name)} {count}")
    lines.append("")
    lines.extend(_render_gpu_kernel(design, kernel))
    lines.append("")
    lines.extend(_render_host_wrapper(design, kernel))
    lines.append("")
    for decl in design.ast.unit.decls:
        if isinstance(decl, FunctionDecl) and decl.name == design.kernel_name:
            continue  # replaced by the GPU kernel + wrapper
        lines.append(unparse(decl))
    return "\n".join(lines)
