"""OpenMP design generation ("Generate ... OpenMP" path of Fig. 4).

The multi-thread CPU design is the lightest: the app keeps its shape,
the kernel's parallel loops gain ``#pragma omp parallel for`` (inserted
by the transform task), and the design adds only the OpenMP header --
which is why Table I reports roughly +2% LOC for OMP designs.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.data_movement import DataMovementInfo
from repro.codegen.design import Design
from repro.meta.ast_api import Ast
from repro.transforms.extraction import ExtractionResult


def generate_openmp_design(app_name: str, ast: Ast,
                           extraction: ExtractionResult,
                           data_movement: Optional[DataMovementInfo],
                           reference_loc: int) -> Design:
    """Build the OpenMP Design artifact around the (annotated) app AST."""
    return Design(
        app_name=app_name,
        kind="cpu-omp",
        kernel_name=extraction.kernel_name,
        ast=ast,
        params=extraction.params,
        buffers=data_movement.buffers if data_movement else (),
        device="epyc7543",
        reference_loc=reference_loc,
        metadata={"device_label": "omp"},
    )


def render_openmp_design(design: Design) -> str:
    lines = [
        "// Auto-generated OpenMP multi-thread CPU design"
        f" ({design.app_name})",
        "#include <omp.h>",
        "",
    ]
    num_threads = design.metadata.get("num_threads")
    if num_threads:
        lines.append(f"// OMP Num. Threads DSE selected {num_threads} threads")
    lines.append(design.ast.source)
    return "\n".join(lines)
