"""Code-generation tasks (the ``CG`` rows of Fig. 4) and the Design
artifact they produce.

"Each path after the branch point comprises target-dependent tasks,
beginning with generating the framework specific management code
required for each programming model (HIP, oneAPI, or OpenMP)" (§III).

- :mod:`design` -- the :class:`Design` artifact: kernel AST + generated
  management code + metadata, rendered to a complete human-readable
  source file (LOC accounting for Table I);
- :mod:`openmp` -- OpenMP multi-thread CPU designs;
- :mod:`hip` -- HIP CPU+GPU designs (__global__ kernel + host wrapper);
- :mod:`oneapi` -- oneAPI/SYCL CPU+FPGA designs (buffer or USM styles).
"""

from repro.codegen.design import Design
from repro.codegen.openmp import generate_openmp_design
from repro.codegen.hip import generate_hip_design
from repro.codegen.oneapi import generate_oneapi_design

__all__ = [
    "Design",
    "generate_openmp_design",
    "generate_hip_design",
    "generate_oneapi_design",
]
