"""Top-level CLI: drive PSA-flows from the shell.

    python -m repro list
    python -m repro run <app> [--mode informed|uninformed]
                             [--export-dir DIR] [--trace] [--time]
                             [--timeline]
    python -m repro eval <fig5|table1|fig6|table2|energy|report|all>
                         [--server URL]
    python -m repro batch [--all | --apps a,b] [--modes m1,m2]
                          [--jobs N] [--pool auto] [--timeout S]
                          [--telemetry] [--json PATH] [--server URL]
    python -m repro serve [--host H] [--port P] [--max-queue N]
                          [--drain-timeout S] [--peers URL,URL]
    python -m repro router [--host H] [--port P] [--runners URL,URL]
                           [--steal-threshold N] [--probe-interval S]
                           [--journal-dir DIR] [--standby-of URL]
                           [--node-name NAME]
    python -m repro obs <top|trace> [--server URL] ...
    python -m repro config
    python -m repro service <stats|ls|purge|dead-letter> --cache-dir DIR
                            [--clear]

Every flow-running subcommand (``run``, ``eval``, ``batch``,
``serve``, ``config``) shares one flag vocabulary, layered over the
``REPRO_*`` environment by :class:`repro.config.ReproConfig`
(env < flag < explicit kwarg):

    --cache-dir DIR    persistent result cache
    --workers N        service worker pool size
    --exec MODE        UHL execution engine (compiled|interp)
    --dse MODE         DSE lowering (batched|point)
    --retries N        per-job retry budget
    --trace-out PATH   write a Perfetto-loadable Chrome trace
    --metrics-out PATH write the Prometheus text dump

``python -m repro config`` prints the fully-resolved configuration as
JSON, so an operator can check what any process would run with.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import obs
from repro.apps.registry import ALL_APPS, get_app
from repro.config import ConfigError, ReproConfig


def _config_from_args(args) -> ReproConfig:
    """env < CLI flag, for the flags every subcommand shares."""
    return ReproConfig.resolve(cli={
        "cache_dir": getattr(args, "cache_dir", None),
        "workers": getattr(args, "workers", None),
        "exec_mode": getattr(args, "exec_mode", None),
        "dse_mode": getattr(args, "dse_mode", None),
        "retries": getattr(args, "retries", None),
        "fleet_runners": getattr(args, "runners", None),
        "fleet_peers": getattr(args, "peers", None),
        "fleet_steal_threshold": getattr(args, "steal_threshold", None),
        "fleet_probe_interval_s": getattr(args, "probe_interval", None),
        "journal_dir": getattr(args, "journal_dir", None),
        "fleet_standby_of": getattr(args, "standby_of", None),
    })


def cmd_list(_args) -> int:
    print(f"{'app':14s} {'display name':14s} {'ref LOC':>7s}  summary")
    for name in sorted(ALL_APPS):
        app = ALL_APPS[name]
        print(f"{name:14s} {app.display_name:14s} "
              f"{app.reference_loc:7d}  {app.summary}")
    return 0


def cmd_config(args) -> int:
    print(_config_from_args(args).to_json())
    return 0


def _render_phases(spans) -> str:
    """``run --time``: phase breakdown computed from ``repro.obs`` spans.

    Parse and dynamic program execution come from the ``parse`` /
    ``execute_unit`` chokepoint spans (so the execution row also counts
    runs that happen *inside* analysis and DSE tasks); task wall times
    bucket by the ``kind`` attribute the flow-task spans carry; the
    total is the root flow span."""
    from repro.lang.engine import execution_mode

    parse_s = sum(s.wall_s for s in spans if s.name == "parse")
    execs = [s for s in spans if s.name == "execute_unit"]
    kinds = {}
    for s in spans:
        kind = s.attrs.get("kind")
        if kind:
            kinds[kind] = kinds.get(kind, 0.0) + s.wall_s
    total_s = sum(s.wall_s for s in spans if s.parent_id is None)
    rows = [
        ("parse", parse_s, ""),
        ("analysis exec", sum(s.wall_s for s in execs),
         f"({len(execs)} program runs, engine={execution_mode()})"),
        ("analysis tasks", kinds.get("A", 0.0), "(incl. exec)"),
        ("transforms", kinds.get("T", 0.0), ""),
        ("DSE", kinds.get("O", 0.0), "(incl. exec)"),
        ("codegen", kinds.get("CG", 0.0), ""),
        ("total flow", total_s, ""),
    ]
    width = max(len(name) for name, _, _ in rows)
    lines = ["phase breakdown (wall):"]
    for name, secs, note in rows:
        suffix = f"   {note}" if note else ""
        lines.append(f"  {name:{width}s} {secs * 1e3:9.1f} ms{suffix}")
    return "\n".join(lines)


def _export_design(design, path: str) -> Optional[str]:
    """Write one design's source; returns an error note or None."""
    export = getattr(design, "export", None)
    if export is not None:
        export(path)
        return None
    try:
        source = design.render()       # FlowResultRecord designs
    except ValueError as exc:
        return str(exc)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(source)
    return None


def cmd_run(args) -> int:
    from repro import api

    cfg = _config_from_args(args).apply()
    app = get_app(args.app)
    want_spans = (getattr(args, "time", False) or args.trace_out
                  or args.timeline)
    collector = obs.add_sink(obs.SpanCollector()) if want_spans else None
    try:
        result = api.run_flow(args.app, args.mode, config=cfg)
    finally:
        if collector is not None:
            obs.remove_sink(collector)
    spans = collector.snapshot() if collector is not None else []
    if getattr(args, "time", False):
        print(_render_phases(spans))
        print()
    if args.timeline:
        print(obs.ascii_timeline(spans))
        print()
    if args.trace:
        print(result.explain())
        print()
    print(f"app: {app.display_name}   mode: {args.mode}")
    print(f"informed selection: {result.selected_target}")
    print(f"reference hotspot (1-thread CPU): "
          f"{result.reference_time_s * 1e3:.3f} ms")
    for design in result.designs:
        if design.synthesizable:
            print(f"  {design.metadata.get('device_label'):12s} "
                  f"{design.speedup:8.1f}x   "
                  f"{design.predicted_time_s * 1e3:9.3f} ms   "
                  f"+{design.loc_delta_pct:.0f}% LOC")
        else:
            print(f"  {design.metadata.get('device_label'):12s} "
                  f"unsynthesizable: {design.failure_reason}")
    if args.json:
        from repro.flow.serialize import dump_result

        dump_result(result, args.json)
        print(f"  result JSON written to {args.json}")
    if args.export_dir:
        os.makedirs(args.export_dir, exist_ok=True)
        for design in result.designs:
            label = design.metadata.get("device_label", "design")
            path = os.path.join(args.export_dir,
                                f"{app.name}_{label}.cpp")
            note = _export_design(design, path)
            if note is None:
                print(f"  exported {path}")
            else:
                print(f"  cannot export {label}: {note}")
    if args.trace_out:
        obs.write_chrome_trace(spans, args.trace_out)
        print(f"  chrome trace ({len(spans)} spans) written to "
              f"{args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(obs.REGISTRY.to_prometheus())
        print(f"  metrics written to {args.metrics_out}")
    return 0


def cmd_eval(args) -> int:
    from repro.evalharness.__main__ import main as eval_main

    _config_from_args(args).apply()
    if args.server:
        # the shared EvaluationRunner picks this up and routes every
        # flow through ReproClient instead of the local service
        os.environ["REPRO_SERVER"] = args.server
    argv = [args.experiment]
    if args.trace_out:
        argv += ["--trace-out", args.trace_out]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    return eval_main(argv)


def _batch_remote(args, jobs) -> int:
    """``batch --server``: run the job list through a remote server."""
    from repro.client import ReproClient
    from repro.service.scheduler import JobError

    client = ReproClient(args.server)
    print(f"batch: {len(jobs)} jobs on {args.server}")
    failed = 0
    for job in jobs:
        try:
            record = client.run_flow(job.app, job.mode,
                                     timeout=args.timeout)
        except (JobError, OSError) as exc:
            failed += 1
            print(f"[{'remote':12s}] {job.label:26s} FAILED: {exc}")
            continue
        speedups = [(d.speedup, d.label) for d in record.designs
                    if d.synthesizable and d.speedup is not None]
        best = (f"best {max(speedups)[0]:7.1f}x ({max(speedups)[1]})"
                if speedups else "no synthesizable design")
        print(f"[{'remote':12s}] {job.label:26s} {best}")
    print(f"done: {len(jobs) - failed}/{len(jobs)} ok")
    return 0 if failed == 0 else 1


def cmd_batch(args) -> int:
    import json as _json

    from repro.service import (
        DesignService, JobValidationError, expand_jobs, run_batch,
    )

    try:
        cfg = _config_from_args(args).apply()
    except ConfigError as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return 2
    apps = args.apps.split(",") if args.apps else None
    modes = args.modes.split(",") if args.modes else None
    if not args.all and apps is None:
        print("batch: select work with --all or --apps a,b "
              "(optionally --modes informed,uninformed)")
        return 2
    job_kwargs = {}
    if args.timeout is not None:
        job_kwargs["timeout_s"] = args.timeout
    if args.retries is not None:
        job_kwargs["retries"] = args.retries
    try:
        jobs = expand_jobs(apps, modes, **job_kwargs)
    except (KeyError, JobValidationError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"batch: {message}", file=sys.stderr)
        return 2
    if args.server:
        return _batch_remote(args, jobs)

    def show(item):
        if item.ok:
            best = (f"best {item.best_speedup:7.1f}x ({item.best_label})"
                    if item.best_speedup is not None
                    else "no synthesizable design")
            print(f"[{item.source:12s}] {item.job.label:26s} {best}"
                  f"{item.wall_s:8.2f}s")
        else:
            print(f"[{item.source:12s}] {item.job.label:26s} "
                  f"FAILED: {item.error}")

    with obs.trace_session(args.trace_out, args.metrics_out,
                           root="batch", jobs=len(jobs)), \
         DesignService(cache_dir=cfg.cache_dir, workers=cfg.workers,
                       pool=args.pool) as service:
        if service.scheduler.fallback_note:
            print(f"note: {service.scheduler.fallback_note}")
        print(f"batch: {len(jobs)} jobs on {cfg.workers} "
              f"{service.scheduler.mode} worker(s)"
              + (f", cache at {cfg.cache_dir}" if cfg.cache_dir else ""))
        report = run_batch(service, jobs, on_item=show)
        counters = service.telemetry.counters
        print(f"done: {len(report.items) - len(report.failed)}/"
              f"{len(report.items)} ok | "
              f"cache hits {service.telemetry.cache_hits} "
              f"(disk {counters['cache_hit_disk']}, "
              f"memory {counters['cache_hit_memory']}) | "
              f"misses {counters['cache_miss']} | "
              f"runs {counters['jobs_run']}")
        if args.telemetry:
            print()
            print(service.telemetry.render_ascii())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(service.telemetry.to_dict(), fh, indent=2)
            print(f"telemetry JSON written to {args.json}")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    import logging

    from repro import api
    from repro.server import ReproServer

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    cfg = _config_from_args(args).apply()
    service = api.open_service(cfg)
    server = ReproServer(service, host=args.host, port=args.port,
                         max_queue=args.max_queue,
                         drain_timeout_s=args.drain_timeout,
                         config=cfg)
    try:
        server.run()
    finally:
        service.close()
    return 0


def cmd_router(args) -> int:
    import logging

    from repro.fleet import FleetRouter

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    cfg = _config_from_args(args).apply()
    runners = cfg.runner_list()
    if not runners:
        print("router: no runners configured; pass --runners URL,URL "
              "or set $REPRO_FLEET_RUNNERS", file=sys.stderr)
        return 2
    router = FleetRouter(
        runners, host=args.host, port=args.port,
        steal_threshold=cfg.fleet_steal_threshold,
        probe_interval_s=cfg.fleet_probe_interval_s,
        # span collection is on by default for a router; REPRO_OBS_BUFFER
        # can only resize it upward from the CLI, never disable tracing
        obs_buffer=cfg.obs_buffer or 4096,
        slo_target=cfg.slo_target,
        slo_latency_s=cfg.slo_latency_s,
        journal_dir=cfg.journal_dir,
        node_name=getattr(args, "node_name", None),
        standby_of=cfg.fleet_standby_of)
    router.run()
    return 0


def cmd_obs(args) -> int:
    from repro.obs import console

    server = args.server or os.environ.get("REPRO_SERVER",
                                           "http://127.0.0.1:8000")
    if args.action == "top":
        return console.run_top(server, interval_s=args.interval,
                               once=args.once)
    return console.run_trace(server, args.job_id, out_path=args.out,
                             timeline=args.timeline)


def cmd_service(args) -> int:
    from repro.service import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        entries = list(cache.entries())
        print(f"cache at {cache.root}")
        print(f"entries: {len(entries)}   "
              f"size: {cache.size_bytes() / 1024:.1f} KiB")
        by_app = {}
        for entry in entries:
            job = entry.get("job") or {}
            label = f"{job.get('app', '?')}/{job.get('mode', '?')}"
            by_app[label] = by_app.get(label, 0) + 1
        for label in sorted(by_app):
            print(f"  {label:26s} {by_app[label]} entry(ies)")
    elif args.action == "ls":
        for entry in cache.entries():
            job = entry.get("job") or {}
            designs = (entry.get("result") or {}).get("designs") or []
            speedups = [d.get("speedup") for d in designs
                        if d.get("speedup") is not None]
            best = f"{max(speedups):8.1f}x" if speedups else "     n/a"
            print(f"{entry.get('key', '?')[:12]}  "
                  f"{job.get('app', '?'):12s} {job.get('mode', '?'):11s} "
                  f"{len(designs)} designs  best {best}")
    elif args.action == "purge":
        removed = cache.purge()
        print(f"purged {removed} entry(ies) from {cache.root}")
    elif args.action == "dead-letter":
        from repro.resilience import DEAD_LETTER_DIRNAME, DeadLetterQueue

        dlq = DeadLetterQueue(os.path.join(args.cache_dir,
                                           DEAD_LETTER_DIRNAME))
        if args.clear:
            released = dlq.purge()
            print(f"released {released} dead-lettered job(s)")
            return 0
        entries = dlq.entries()
        quarantined_files = list(cache.quarantined())
        if not entries and not quarantined_files:
            print(f"dead-letter queue at {dlq.root}: empty")
            return 0
        for record in entries:
            job = record.get("job") or {}
            print(f"{record.get('key', '?')[:12]}  "
                  f"{job.get('app', '?'):12s} {job.get('mode', '?'):11s} "
                  f"crashes={record.get('crashes', 0)} "
                  f"attempts={record.get('attempts', 0)}  "
                  f"{record.get('reason', '?')}")
        if quarantined_files:
            print(f"({len(quarantined_files)} corrupt cache file(s) "
                  f"in {os.path.join(cache.root, '.quarantine')})")
    return 0


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write a Chrome trace-event JSON of the run "
                          "(load in Perfetto / chrome://tracing)")
    sub.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the Prometheus text metrics dump")


def _common_parent() -> argparse.ArgumentParser:
    """The flag vocabulary every flow-running subcommand shares.

    Defaults are all ``None`` ("not given") so
    :meth:`ReproConfig.resolve` can layer them over the environment.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("shared configuration "
                                      "(env < flag; see `repro config`)")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent result cache directory "
                            "($REPRO_CACHE_DIR)")
    group.add_argument("--workers", type=int, default=None, metavar="N",
                       help="service worker pool size ($REPRO_WORKERS)")
    group.add_argument("--exec", dest="exec_mode", default=None,
                       choices=("compiled", "interp"),
                       help="UHL execution engine ($REPRO_EXEC)")
    group.add_argument("--dse", dest="dse_mode", default=None,
                       choices=("batched", "point"),
                       help="DSE lowering: whole-space tensor sweeps or "
                            "point-at-a-time ($REPRO_DSE)")
    group.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retry failed/timed-out jobs up to N times "
                            "($REPRO_RETRIES)")
    _add_obs_flags(group)
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PSA-flows: auto-generate diverse heterogeneous "
                    "designs from a single high-level source")
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_parent()

    sub.add_parser("list", help="list the benchmark applications") \
        .set_defaults(func=cmd_list)

    run = sub.add_parser("run", parents=[common],
                         help="run the Fig. 4 PSA-flow on an app")
    run.add_argument("app", choices=sorted(ALL_APPS))
    run.add_argument("--mode", choices=("informed", "uninformed"),
                     default="informed")
    run.add_argument("--export-dir", default=None,
                     help="export every generated design here")
    run.add_argument("--trace", action="store_true",
                     help="print the full decision trace")
    run.add_argument("--time", action="store_true",
                     help="print a per-phase wall-time breakdown "
                          "(parse / analysis exec / DSE / codegen)")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="dump the flow result (designs, decisions, "
                          "profile) as JSON")
    run.add_argument("--timeline", action="store_true",
                     help="print an ASCII span timeline of the run")
    run.set_defaults(func=cmd_run)

    ev = sub.add_parser("eval", parents=[common],
                        help="regenerate the paper's experiments")
    ev.add_argument("experiment",
                    choices=("fig5", "table1", "fig6", "table2",
                             "energy", "report", "all"))
    ev.add_argument("--server", default=None, metavar="URL",
                    help="run every flow on a `repro serve` instance "
                         "($REPRO_SERVER)")
    ev.set_defaults(func=cmd_eval)

    batch = sub.add_parser(
        "batch", parents=[common],
        help="run many PSA-flows through the design service")
    batch.add_argument("--all", action="store_true",
                       help="all apps x all modes (10 jobs)")
    batch.add_argument("--apps", default=None, metavar="A,B",
                       help="comma-separated app subset")
    batch.add_argument("--modes", default=None, metavar="M1,M2",
                       help="comma-separated mode subset "
                            "(informed,uninformed)")
    batch.add_argument("--jobs", type=int, default=None, metavar="N",
                       dest="workers",
                       help="worker count (alias for --workers)")
    batch.add_argument("--pool", choices=("auto", "thread", "process"),
                       default="auto",
                       help="worker pool kind (auto: processes when "
                            "workers > 1, thread fallback)")
    batch.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job attempt timeout in seconds")
    batch.add_argument("--telemetry", action="store_true",
                       help="print the fleet telemetry report")
    batch.add_argument("--json", default=None, metavar="PATH",
                       help="dump fleet telemetry as JSON")
    batch.add_argument("--server", default=None, metavar="URL",
                       help="run the batch against a `repro serve` "
                            "instance instead of a local service")
    batch.set_defaults(func=cmd_batch)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="serve the /v1 design-job HTTP API over a DesignService")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--max-queue", type=int, default=8, metavar="N",
                       help="max uncached jobs in flight before "
                            "shedding with 429 (default 8)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="S",
                       help="graceful-shutdown drain budget (default 30)")
    serve.add_argument("--peers", default=None, metavar="URL,URL",
                       help="fleet peers this runner may fetch cached "
                            "results from ($REPRO_FLEET_PEERS)")
    serve.set_defaults(func=cmd_serve)

    router = sub.add_parser(
        "router", parents=[common],
        help="shard /v1 jobs across a fleet of `repro serve` runners")
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=8000,
                        help="TCP port (0 picks a free one)")
    router.add_argument("--runners", default=None, metavar="URL,URL",
                        help="comma-separated runner base URLs "
                             "($REPRO_FLEET_RUNNERS)")
    router.add_argument("--steal-threshold", type=int, default=None,
                        metavar="N",
                        help="owner queue depth past which jobs go to "
                             "the least-loaded runner "
                             "($REPRO_FLEET_STEAL_THRESHOLD)")
    router.add_argument("--probe-interval", type=float, default=None,
                        metavar="S",
                        help="runner health-probe period "
                             "($REPRO_FLEET_PROBE_INTERVAL)")
    router.add_argument("--journal-dir", default=None, metavar="DIR",
                        help="write-ahead journal + lease directory; "
                             "enables crash recovery and failover "
                             "($REPRO_JOURNAL_DIR)")
    router.add_argument("--standby-of", default=None, metavar="URL",
                        help="run as the warm standby of this primary "
                             "router ($REPRO_FLEET_STANDBY_OF)")
    router.add_argument("--node-name", default=None, metavar="NAME",
                        help="journal/lease identity of this router "
                             "process (default: primary or standby)")
    router.set_defaults(func=cmd_router)

    obs_cmd = sub.add_parser(
        "obs", help="live fleet console and stitched-trace viewer")
    obs_sub = obs_cmd.add_subparsers(dest="action", required=True)
    top = obs_sub.add_parser(
        "top", help="ASCII dashboard over /v1/obs/summary + /metrics")
    top.add_argument("--server", default=None, metavar="URL",
                     help="router or runner base URL ($REPRO_SERVER, "
                          "default http://127.0.0.1:8000)")
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="refresh period (default 2s)")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (no ANSI clear)")
    top.set_defaults(func=cmd_obs)
    trace = obs_sub.add_parser(
        "trace", help="fetch one job's whole-fleet stitched trace")
    trace.add_argument("job_id")
    trace.add_argument("--server", default=None, metavar="URL",
                       help="router base URL ($REPRO_SERVER)")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="write the Perfetto-loadable JSON here")
    trace.add_argument("--timeline", action="store_true",
                       help="also print the ASCII timeline (default "
                            "when --out is not given)")
    trace.set_defaults(func=cmd_obs)

    config = sub.add_parser(
        "config", parents=[common],
        help="print the resolved REPRO_* configuration as JSON")
    fleet = config.add_argument_group(
        "fleet settings (REPRO_FLEET_*; see `serve` and `router`)")
    fleet.add_argument("--runners", default=None, metavar="URL,URL",
                       help="router: runner base URLs")
    fleet.add_argument("--peers", default=None, metavar="URL,URL",
                       help="runner: peer URLs for cache read-through")
    fleet.add_argument("--steal-threshold", type=int, default=None,
                       metavar="N", help="router: owner queue depth "
                       "that triggers work stealing")
    fleet.add_argument("--probe-interval", type=float, default=None,
                       metavar="S", help="router: seconds between "
                       "runner health probes")
    config.set_defaults(func=cmd_config)

    svc = sub.add_parser(
        "service", help="inspect/maintain the persistent result cache")
    svc.add_argument("action",
                     choices=("stats", "ls", "purge", "dead-letter"))
    svc.add_argument("--cache-dir", required=True, metavar="DIR")
    svc.add_argument("--clear", action="store_true",
                     help="with dead-letter: release every "
                          "quarantined job")
    svc.set_defaults(func=cmd_service)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # e.g. `... service ls | head`; die quietly like other CLIs
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
