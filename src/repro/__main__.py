"""Top-level CLI: drive PSA-flows from the shell.

    python -m repro list
    python -m repro run <app> [--mode informed|uninformed]
                             [--export-dir DIR] [--trace]
    python -m repro eval <fig5|table1|fig6|table2|energy|report|all>
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.apps.registry import ALL_APPS, get_app
from repro.flow.engine import FlowEngine


def cmd_list(_args) -> int:
    print(f"{'app':14s} {'display name':14s} {'ref LOC':>7s}  summary")
    for name in sorted(ALL_APPS):
        app = ALL_APPS[name]
        print(f"{name:14s} {app.display_name:14s} "
              f"{app.reference_loc:7d}  {app.summary}")
    return 0


def cmd_run(args) -> int:
    app = get_app(args.app)
    engine = FlowEngine()
    result = engine.run(app, mode=args.mode)
    if args.trace:
        print(result.explain())
        print()
    print(f"app: {app.display_name}   mode: {args.mode}")
    print(f"informed selection: {result.selected_target}")
    print(f"reference hotspot (1-thread CPU): "
          f"{result.reference_time_s * 1e3:.3f} ms")
    for design in result.designs:
        if design.synthesizable:
            print(f"  {design.metadata.get('device_label'):12s} "
                  f"{design.speedup:8.1f}x   "
                  f"{design.predicted_time_s * 1e3:9.3f} ms   "
                  f"+{design.loc_delta_pct:.0f}% LOC")
        else:
            print(f"  {design.metadata.get('device_label'):12s} "
                  f"unsynthesizable: {design.failure_reason}")
    if args.json:
        from repro.flow.serialize import dump_result

        dump_result(result, args.json)
        print(f"  result JSON written to {args.json}")
    if args.export_dir:
        os.makedirs(args.export_dir, exist_ok=True)
        for design in result.designs:
            label = design.metadata.get("device_label", "design")
            path = os.path.join(args.export_dir,
                                f"{app.name}_{label}.cpp")
            design.export(path)
            print(f"  exported {path}")
    return 0


def cmd_eval(args) -> int:
    from repro.evalharness.__main__ import main as eval_main

    return eval_main([args.experiment])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PSA-flows: auto-generate diverse heterogeneous "
                    "designs from a single high-level source")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark applications") \
        .set_defaults(func=cmd_list)

    run = sub.add_parser("run", help="run the Fig. 4 PSA-flow on an app")
    run.add_argument("app", choices=sorted(ALL_APPS))
    run.add_argument("--mode", choices=("informed", "uninformed"),
                     default="informed")
    run.add_argument("--export-dir", default=None,
                     help="export every generated design here")
    run.add_argument("--trace", action="store_true",
                     help="print the full decision trace")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="dump the flow result (designs, decisions, "
                          "profile) as JSON")
    run.set_defaults(func=cmd_run)

    ev = sub.add_parser("eval", help="regenerate the paper's experiments")
    ev.add_argument("experiment",
                    choices=("fig5", "table1", "fig6", "table2",
                             "energy", "report", "all"))
    ev.set_defaults(func=cmd_eval)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
