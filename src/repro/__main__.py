"""Top-level CLI: drive PSA-flows from the shell.

    python -m repro list
    python -m repro run <app> [--mode informed|uninformed]
                             [--export-dir DIR] [--trace] [--time]
                             [--timeline]
    python -m repro eval <fig5|table1|fig6|table2|energy|report|all>
    python -m repro batch [--all | --apps a,b] [--modes m1,m2]
                          [--jobs N] [--cache-dir DIR] [--pool auto]
                          [--timeout S] [--retries N]
                          [--telemetry] [--json PATH]
    python -m repro service <stats|ls|purge|dead-letter> --cache-dir DIR
                            [--clear]

``run``, ``eval`` and ``batch`` all accept ``--trace-out PATH`` (write
a Perfetto-loadable Chrome trace of the run) and ``--metrics-out PATH``
(write the Prometheus text dump of the ``repro.obs`` registry).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import obs
from repro.apps.registry import ALL_APPS, get_app
from repro.flow.engine import FlowEngine


def cmd_list(_args) -> int:
    print(f"{'app':14s} {'display name':14s} {'ref LOC':>7s}  summary")
    for name in sorted(ALL_APPS):
        app = ALL_APPS[name]
        print(f"{name:14s} {app.display_name:14s} "
              f"{app.reference_loc:7d}  {app.summary}")
    return 0


def _render_phases(spans) -> str:
    """``run --time``: phase breakdown computed from ``repro.obs`` spans.

    Parse and dynamic program execution come from the ``parse`` /
    ``execute_unit`` chokepoint spans (so the execution row also counts
    runs that happen *inside* analysis and DSE tasks); task wall times
    bucket by the ``kind`` attribute the flow-task spans carry; the
    total is the root flow span."""
    from repro.lang.engine import execution_mode

    parse_s = sum(s.wall_s for s in spans if s.name == "parse")
    execs = [s for s in spans if s.name == "execute_unit"]
    kinds = {}
    for s in spans:
        kind = s.attrs.get("kind")
        if kind:
            kinds[kind] = kinds.get(kind, 0.0) + s.wall_s
    total_s = sum(s.wall_s for s in spans if s.parent_id is None)
    rows = [
        ("parse", parse_s, ""),
        ("analysis exec", sum(s.wall_s for s in execs),
         f"({len(execs)} program runs, engine={execution_mode()})"),
        ("analysis tasks", kinds.get("A", 0.0), "(incl. exec)"),
        ("transforms", kinds.get("T", 0.0), ""),
        ("DSE", kinds.get("O", 0.0), "(incl. exec)"),
        ("codegen", kinds.get("CG", 0.0), ""),
        ("total flow", total_s, ""),
    ]
    width = max(len(name) for name, _, _ in rows)
    lines = ["phase breakdown (wall):"]
    for name, secs, note in rows:
        suffix = f"   {note}" if note else ""
        lines.append(f"  {name:{width}s} {secs * 1e3:9.1f} ms{suffix}")
    return "\n".join(lines)


def cmd_run(args) -> int:
    app = get_app(args.app)
    engine = FlowEngine()
    want_spans = (getattr(args, "time", False) or args.trace_out
                  or args.timeline)
    collector = obs.add_sink(obs.SpanCollector()) if want_spans else None
    try:
        result = engine.run(app, mode=args.mode)
    finally:
        if collector is not None:
            obs.remove_sink(collector)
    spans = collector.snapshot() if collector is not None else []
    if getattr(args, "time", False):
        print(_render_phases(spans))
        print()
    if args.timeline:
        print(obs.ascii_timeline(spans))
        print()
    if args.trace:
        print(result.explain())
        print()
    print(f"app: {app.display_name}   mode: {args.mode}")
    print(f"informed selection: {result.selected_target}")
    print(f"reference hotspot (1-thread CPU): "
          f"{result.reference_time_s * 1e3:.3f} ms")
    for design in result.designs:
        if design.synthesizable:
            print(f"  {design.metadata.get('device_label'):12s} "
                  f"{design.speedup:8.1f}x   "
                  f"{design.predicted_time_s * 1e3:9.3f} ms   "
                  f"+{design.loc_delta_pct:.0f}% LOC")
        else:
            print(f"  {design.metadata.get('device_label'):12s} "
                  f"unsynthesizable: {design.failure_reason}")
    if args.json:
        from repro.flow.serialize import dump_result

        dump_result(result, args.json)
        print(f"  result JSON written to {args.json}")
    if args.export_dir:
        os.makedirs(args.export_dir, exist_ok=True)
        for design in result.designs:
            label = design.metadata.get("device_label", "design")
            path = os.path.join(args.export_dir,
                                f"{app.name}_{label}.cpp")
            design.export(path)
            print(f"  exported {path}")
    if args.trace_out:
        obs.write_chrome_trace(spans, args.trace_out)
        print(f"  chrome trace ({len(spans)} spans) written to "
              f"{args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(obs.REGISTRY.to_prometheus())
        print(f"  metrics written to {args.metrics_out}")
    return 0


def cmd_eval(args) -> int:
    from repro.evalharness.__main__ import main as eval_main

    argv = [args.experiment]
    if args.trace_out:
        argv += ["--trace-out", args.trace_out]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    return eval_main(argv)


def cmd_batch(args) -> int:
    import json as _json

    from repro.service import (
        DesignService, JobValidationError, expand_jobs, run_batch,
    )

    apps = args.apps.split(",") if args.apps else None
    modes = args.modes.split(",") if args.modes else None
    if not args.all and apps is None:
        print("batch: select work with --all or --apps a,b "
              "(optionally --modes informed,uninformed)")
        return 2
    if args.jobs < 1:
        print(f"batch: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    job_kwargs = {}
    if args.timeout is not None:
        job_kwargs["timeout_s"] = args.timeout
    if args.retries is not None:
        job_kwargs["retries"] = args.retries
    try:
        jobs = expand_jobs(apps, modes, **job_kwargs)
    except (KeyError, JobValidationError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"batch: {message}", file=sys.stderr)
        return 2

    def show(item):
        if item.ok:
            best = (f"best {item.best_speedup:7.1f}x ({item.best_label})"
                    if item.best_speedup is not None
                    else "no synthesizable design")
            print(f"[{item.source:12s}] {item.job.label:26s} {best}"
                  f"{item.wall_s:8.2f}s")
        else:
            print(f"[{item.source:12s}] {item.job.label:26s} "
                  f"FAILED: {item.error}")

    with obs.trace_session(args.trace_out, args.metrics_out,
                           root="batch", jobs=len(jobs)), \
         DesignService(cache_dir=args.cache_dir, workers=args.jobs,
                       pool=args.pool) as service:
        if service.scheduler.fallback_note:
            print(f"note: {service.scheduler.fallback_note}")
        print(f"batch: {len(jobs)} jobs on {args.jobs} "
              f"{service.scheduler.mode} worker(s)"
              + (f", cache at {args.cache_dir}" if args.cache_dir else ""))
        report = run_batch(service, jobs, on_item=show)
        counters = service.telemetry.counters
        print(f"done: {len(report.items) - len(report.failed)}/"
              f"{len(report.items)} ok | "
              f"cache hits {service.telemetry.cache_hits} "
              f"(disk {counters['cache_hit_disk']}, "
              f"memory {counters['cache_hit_memory']}) | "
              f"misses {counters['cache_miss']} | "
              f"runs {counters['jobs_run']}")
        if args.telemetry:
            print()
            print(service.telemetry.render_ascii())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(service.telemetry.to_dict(), fh, indent=2)
            print(f"telemetry JSON written to {args.json}")
    return 0 if report.ok else 1


def cmd_service(args) -> int:
    from repro.service import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        entries = list(cache.entries())
        print(f"cache at {cache.root}")
        print(f"entries: {len(entries)}   "
              f"size: {cache.size_bytes() / 1024:.1f} KiB")
        by_app = {}
        for entry in entries:
            job = entry.get("job") or {}
            label = f"{job.get('app', '?')}/{job.get('mode', '?')}"
            by_app[label] = by_app.get(label, 0) + 1
        for label in sorted(by_app):
            print(f"  {label:26s} {by_app[label]} entry(ies)")
    elif args.action == "ls":
        for entry in cache.entries():
            job = entry.get("job") or {}
            designs = (entry.get("result") or {}).get("designs") or []
            speedups = [d.get("speedup") for d in designs
                        if d.get("speedup") is not None]
            best = f"{max(speedups):8.1f}x" if speedups else "     n/a"
            print(f"{entry.get('key', '?')[:12]}  "
                  f"{job.get('app', '?'):12s} {job.get('mode', '?'):11s} "
                  f"{len(designs)} designs  best {best}")
    elif args.action == "purge":
        removed = cache.purge()
        print(f"purged {removed} entry(ies) from {cache.root}")
    elif args.action == "dead-letter":
        from repro.resilience import DEAD_LETTER_DIRNAME, DeadLetterQueue

        dlq = DeadLetterQueue(os.path.join(args.cache_dir,
                                           DEAD_LETTER_DIRNAME))
        if args.clear:
            released = dlq.purge()
            print(f"released {released} dead-lettered job(s)")
            return 0
        entries = dlq.entries()
        quarantined_files = list(cache.quarantined())
        if not entries and not quarantined_files:
            print(f"dead-letter queue at {dlq.root}: empty")
            return 0
        for record in entries:
            job = record.get("job") or {}
            print(f"{record.get('key', '?')[:12]}  "
                  f"{job.get('app', '?'):12s} {job.get('mode', '?'):11s} "
                  f"crashes={record.get('crashes', 0)} "
                  f"attempts={record.get('attempts', 0)}  "
                  f"{record.get('reason', '?')}")
        if quarantined_files:
            print(f"({len(quarantined_files)} corrupt cache file(s) "
                  f"in {os.path.join(cache.root, '.quarantine')})")
    return 0


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write a Chrome trace-event JSON of the run "
                          "(load in Perfetto / chrome://tracing)")
    sub.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the Prometheus text metrics dump")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PSA-flows: auto-generate diverse heterogeneous "
                    "designs from a single high-level source")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark applications") \
        .set_defaults(func=cmd_list)

    run = sub.add_parser("run", help="run the Fig. 4 PSA-flow on an app")
    run.add_argument("app", choices=sorted(ALL_APPS))
    run.add_argument("--mode", choices=("informed", "uninformed"),
                     default="informed")
    run.add_argument("--export-dir", default=None,
                     help="export every generated design here")
    run.add_argument("--trace", action="store_true",
                     help="print the full decision trace")
    run.add_argument("--time", action="store_true",
                     help="print a per-phase wall-time breakdown "
                          "(parse / analysis exec / DSE / codegen)")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="dump the flow result (designs, decisions, "
                          "profile) as JSON")
    run.add_argument("--timeline", action="store_true",
                     help="print an ASCII span timeline of the run")
    _add_obs_flags(run)
    run.set_defaults(func=cmd_run)

    ev = sub.add_parser("eval", help="regenerate the paper's experiments")
    ev.add_argument("experiment",
                    choices=("fig5", "table1", "fig6", "table2",
                             "energy", "report", "all"))
    _add_obs_flags(ev)
    ev.set_defaults(func=cmd_eval)

    batch = sub.add_parser(
        "batch", help="run many PSA-flows through the design service")
    batch.add_argument("--all", action="store_true",
                       help="all apps x all modes (10 jobs)")
    batch.add_argument("--apps", default=None, metavar="A,B",
                       help="comma-separated app subset")
    batch.add_argument("--modes", default=None, metavar="M1,M2",
                       help="comma-separated mode subset "
                            "(informed,uninformed)")
    batch.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker count (default 1)")
    batch.add_argument("--pool", choices=("auto", "thread", "process"),
                       default="auto",
                       help="worker pool kind (auto: processes when "
                            "--jobs > 1, thread fallback)")
    batch.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent result cache directory")
    batch.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job attempt timeout in seconds")
    batch.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retry failed/timed-out jobs up to N times")
    batch.add_argument("--telemetry", action="store_true",
                       help="print the fleet telemetry report")
    batch.add_argument("--json", default=None, metavar="PATH",
                       help="dump fleet telemetry as JSON")
    _add_obs_flags(batch)
    batch.set_defaults(func=cmd_batch)

    svc = sub.add_parser(
        "service", help="inspect/maintain the persistent result cache")
    svc.add_argument("action",
                     choices=("stats", "ls", "purge", "dead-letter"))
    svc.add_argument("--cache-dir", required=True, metavar="DIR")
    svc.add_argument("--clear", action="store_true",
                     help="with dead-letter: release every "
                          "quarantined job")
    svc.set_defaults(func=cmd_service)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # e.g. `... service ls | head`; die quietly like other CLIs
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
