"""Wire schema shared by the HTTP server and :class:`ReproClient`.

The contract the issue pins down: every terminal job outcome maps to
**one stable machine-readable error body**, and the mapping is a
bijection -- the client rebuilds the *same* exception type (with its
fields) that :meth:`JobHandle.result` would have raised in-process::

    {"error": {"code": "quarantined", "message": ..., ...extras}}

=================  ======  ===========================================
code               status  in-process exception
=================  ======  ===========================================
``pending``        202     :class:`JobResultPending` (still running)
``overloaded``     429     :class:`ServiceOverloaded` (breaker open)
``busy``           429     server accept queue full (bounded)
``quarantined``    503     :class:`JobQuarantined` (dead-lettered)
``timeout``        504     :class:`JobTimeout`
``cancelled``      409     :class:`JobCancelled`
``failed``         500     :class:`JobFailed`
``invalid_job``    400     :class:`JobValidationError`
``not_found``      404     :class:`JobNotFound`
``unavailable``    503     server draining for shutdown
``internal``       500     anything else
=================  ======  ===========================================

``429``/``503``/``202`` responses carry a ``Retry-After`` header (the
payload mirrors it as ``retry_after_s``); the client honors it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.service.core import ServiceOverloaded
from repro.service.jobs import FlowJob, JobValidationError
from repro.service.scheduler import (
    JobCancelled, JobFailed, JobQuarantined, JobResultPending, JobTimeout,
)

#: API version prefix every job route lives under
API_VERSION = "v1"

#: fields a POST /v1/jobs body may set (everything else is rejected --
#: unknown keys are typos, not forward compatibility)
JOB_FIELDS = ("app", "mode", "intensity_threshold", "scale", "priority",
              "timeout_s", "retries", "dse")


class JobNotFound(KeyError):
    """No job with that id has been submitted to this server."""

    def __init__(self, message: str):
        # bypass KeyError's repr-quoting of the message
        Exception.__init__(self, message)
        self.message = message

    def __str__(self):
        return self.message


class ServerError(RuntimeError):
    """The server answered with an error the taxonomy doesn't name."""

    def __init__(self, message: str, status: int = 500,
                 code: str = "internal"):
        super().__init__(message)
        self.status = status
        self.code = code


# ----------------------------------------------------------------------
# Job specs over the wire
# ----------------------------------------------------------------------

def job_from_payload(payload: Dict[str, Any]) -> FlowJob:
    """Validated :class:`FlowJob` from a POST body (raises
    :class:`JobValidationError`)."""
    if not isinstance(payload, dict):
        raise JobValidationError(
            f"job body must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - set(JOB_FIELDS)
    if unknown:
        raise JobValidationError(
            f"unknown job field(s) {sorted(unknown)}; "
            f"valid: {list(JOB_FIELDS)}")
    if "app" not in payload:
        raise JobValidationError("job body must name an 'app'")
    try:
        return FlowJob(**payload)
    except TypeError as exc:
        raise JobValidationError(str(exc)) from None


def job_to_payload(job: FlowJob) -> Dict[str, Any]:
    return {
        "app": job.app, "mode": job.mode,
        "intensity_threshold": job.intensity_threshold,
        "scale": job.scale, "priority": job.priority,
        "timeout_s": job.timeout_s, "retries": job.retries,
        "dse": job.dse,
    }


# ----------------------------------------------------------------------
# Error taxonomy, both directions
# ----------------------------------------------------------------------

def _body(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    error = {"code": code, "message": message}
    error.update({k: v for k, v in extra.items() if v is not None})
    return {"error": error}


def error_to_payload(exc: BaseException) -> Tuple[int, Dict[str, Any]]:
    """``(http_status, json_body)`` for any job-path exception."""
    if isinstance(exc, JobResultPending):
        return 202, _body("pending", str(exc), key=exc.key,
                          status=exc.status, attempts=exc.attempts,
                          retry_after_s=1.0)
    if isinstance(exc, ServiceOverloaded):
        return 429, _body("overloaded", str(exc),
                          retry_after_s=exc.retry_after_s or 1.0)
    if isinstance(exc, JobQuarantined):
        return 503, _body("quarantined", str(exc), key=exc.key,
                          crashes=exc.crashes)
    if isinstance(exc, JobTimeout):
        return 504, _body("timeout", str(exc),
                          status=getattr(exc, "status", None),
                          attempts=getattr(exc, "attempts", None))
    if isinstance(exc, JobCancelled):
        return 409, _body("cancelled", str(exc))
    if isinstance(exc, JobFailed):
        return 500, _body("failed", str(exc))
    if isinstance(exc, JobValidationError):
        return 400, _body("invalid_job", str(exc))
    if isinstance(exc, JobNotFound):
        return 404, _body("not_found", str(exc))
    if isinstance(exc, ServerError):
        return exc.status, _body(exc.code, str(exc))
    return 500, _body("internal", f"{type(exc).__name__}: {exc}")


def error_from_payload(status: int,
                       payload: Optional[Dict[str, Any]]) -> Exception:
    """The in-process exception a wire error stands for (the client
    raises exactly what :meth:`JobHandle.result` would have)."""
    error = (payload or {}).get("error") or {}
    code = error.get("code") or "internal"
    message = error.get("message") or f"HTTP {status}"
    if code == "pending":
        return JobResultPending(
            error.get("key", ""), error.get("status", "pending"),
            int(error.get("attempts", 0)), None)
    if code in ("overloaded", "busy"):
        return ServiceOverloaded(
            message, retry_after_s=float(error.get("retry_after_s", 0.0)))
    if code == "quarantined":
        return JobQuarantined(message, key=error.get("key", ""),
                              crashes=int(error.get("crashes", 0)))
    if code == "timeout":
        # the message already embeds any status/attempts detail;
        # restore the structured fields without re-appending it
        exc = JobTimeout(message)
        exc.status = error.get("status")
        attempts = error.get("attempts")
        exc.attempts = int(attempts) if attempts is not None else None
        return exc
    if code == "cancelled":
        return JobCancelled(message)
    if code == "failed":
        return JobFailed(message)
    if code == "invalid_job":
        return JobValidationError(message)
    if code == "not_found":
        return JobNotFound(message)
    return ServerError(message, status=status, code=code)


def retry_after_of(payload: Dict[str, Any]) -> Optional[float]:
    """The retry hint carried in an error body, if any."""
    try:
        value = payload["error"]["retry_after_s"]
    except (KeyError, TypeError):
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None
