"""Shared asyncio HTTP/1.1 plumbing for repro's stdlib servers.

:class:`ReproServer` (the single-node job API) and the fleet router
(:mod:`repro.fleet.router`) both speak the same tiny HTTP dialect:
one request per connection, ``Content-Length`` framing, JSON bodies,
``Connection: close``.  :class:`HttpServerBase` owns that dialect --
head/body parsing with bounded bodies, response encoding, the
connection loop with taxonomy error mapping -- so each server only
implements :meth:`_route` and its handlers.

Handlers are coroutines ``handler(writer, body, headers, *args)``
returning the HTTP status they sent (0 suppresses accounting, e.g. a
stream the peer closed).  ``headers`` is a lower-cased name -> value
dict, which is how request metadata like the router's
``X-Repro-Parent`` trace context reaches a handler.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from repro.server import protocol
from repro.server.protocol import ServerError

#: request bodies past this are refused (jobs are tiny)
MAX_BODY_BYTES = 64 * 1024

JSON_TYPE = "application/json"

REASONS = {200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
           400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
           409: "Conflict", 413: "Payload Too Large",
           429: "Too Many Requests", 500: "Internal Server Error",
           502: "Bad Gateway", 503: "Service Unavailable",
           504: "Gateway Timeout"}


class HttpServerBase:
    """One-request-per-connection HTTP server core (stdlib asyncio)."""

    host: str = "127.0.0.1"
    port: int = 0

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        route = "unparsed"
        t0 = time.monotonic()
        try:
            method, target, headers = await self._read_head(reader)
            body = await self._read_body(reader, headers)
            path, _, raw_query = target.partition("?")
            query = dict(urllib.parse.parse_qsl(raw_query))
            route, handler, args = self._route(method, path, query)
            status = await handler(writer, body, headers, *args)
        except ConnectionError:
            status = 0
        except Exception as exc:                # noqa: BLE001
            status, payload = protocol.error_to_payload(exc)
            try:
                await self._send_json(writer, status, payload)
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:                   # noqa: BLE001
                pass
        if status:
            self._observe_request(route, status, time.monotonic() - t0)

    def _route(self, method: str, path: str, query: Dict[str, str]):
        """Return ``(route_name, handler, args)`` or raise ServerError.

        ``query`` is the parsed query string; routes that take
        parameters (e.g. ``/v1/obs/spans?since=N``) thread the values
        through as handler args.
        """
        raise NotImplementedError

    def _observe_request(self, route: str, status: int,
                         elapsed_s: float) -> None:
        """Per-request accounting hook; default is no accounting."""

    # ------------------------------------------------------------------
    # Request parsing
    # ------------------------------------------------------------------

    async def _read_head(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ServerError("malformed request line", status=400,
                              code="bad_request")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServerError(f"body of {length} bytes refused",
                              status=413, code="too_large")
        return await reader.readexactly(length) if length else b""

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    body: bytes, content_type: str,
                    extra: Optional[Dict[str, str]] = None) -> int:
        head = [f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()
        return status

    async def _send_json(self, writer, status: int, payload: Any,
                         extra: Optional[Dict[str, str]] = None) -> int:
        body = json.dumps(payload).encode("utf-8")
        headers = dict(extra or {})
        retry = protocol.retry_after_of(payload) if isinstance(
            payload, dict) else None
        if retry is not None:
            headers.setdefault("Retry-After", str(max(1, round(retry))))
        return await self._send(writer, status, body, JSON_TYPE, headers)


def parse_trace_parent(headers: Dict[str, str]
                       ) -> Optional[Dict[str, str]]:
    """The caller's span context, or None.

    Two encodings are accepted: the W3C-style ``traceparent`` header
    (``00-<trace_id>-<span_id>-01``, stamped by :class:`ReproClient`
    and the fleet router) and the older JSON ``X-Repro-Parent``
    (``{"trace_id": ..., "span_id": ...}``).  ``traceparent`` wins
    when both are present.  A malformed value is ignored rather than
    failing the job -- the receiver opens a fresh trace root.
    """
    from repro.obs.collect import parse_traceparent

    ctx = parse_traceparent(headers.get("traceparent"))
    if ctx is not None:
        return ctx
    raw = headers.get("x-repro-parent")
    if not raw:
        return None
    try:
        ctx = json.loads(raw)
    except (ValueError, TypeError):
        return None
    if (isinstance(ctx, dict) and
            isinstance(ctx.get("trace_id"), str) and
            isinstance(ctx.get("span_id"), str)):
        return {"trace_id": ctx["trace_id"], "span_id": ctx["span_id"]}
    return None
