"""repro.server -- the asyncio HTTP front end over DesignService.

Stdlib-only: a small HTTP/1.1 layer on ``asyncio`` streams serving the
``/v1`` job API (submit / poll / fetch / SSE event stream), the
benchmark catalog, Prometheus ``/metrics`` and ``/healthz``.  See
:mod:`repro.server.core` for the server, :mod:`repro.server.protocol`
for the wire schema and the error taxonomy shared with
:class:`repro.client.ReproClient`.

Start one from the shell::

    python -m repro serve --port 8000 --workers 4 --cache-dir .cache

or programmatically::

    from repro import api
    from repro.server import ReproServer

    server = ReproServer(api.open_service(workers=4), port=8000)
    server.run()          # blocks; SIGINT/SIGTERM drains and exits
"""

from repro.server.core import ReproServer
from repro.server.protocol import (
    JobNotFound, ServerError, error_from_payload, error_to_payload,
    job_from_payload,
)

__all__ = [
    "ReproServer", "JobNotFound", "ServerError",
    "error_from_payload", "error_to_payload", "job_from_payload",
]
