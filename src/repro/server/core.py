"""The asyncio HTTP front end over :class:`DesignService`.

Stdlib only: HTTP/1.1 parsed directly off ``asyncio`` streams, one
request per connection.  The interesting part is not the parsing but
the plumbing between three worlds:

- **service threads** complete jobs and fire listener callbacks;
- **flow worker threads** execute tasks and fire Tracer callbacks
  (installed through :meth:`DesignService.set_tracer_factory`);
- **the event loop** owns every per-job event history and SSE
  subscriber queue.

All cross-thread traffic goes through ``loop.call_soon_threadsafe``
into :meth:`_publish`, so job state only ever mutates on the loop and
SSE ordering is the publish order.

Backpressure is enforced end-to-end: the service's admission breaker
surfaces as ``429 overloaded``, and on top of it the server keeps a
**bounded accept queue** -- at most ``max_queue`` uncached jobs in
flight; past that, new work is shed with ``429 busy`` while cached
results (served via :meth:`DesignService.lookup`) keep flowing.
Graceful shutdown flips to draining (new jobs ``503 unavailable``),
waits out in-flight jobs up to ``drain_timeout_s``, then closes every
SSE stream with a ``shutdown`` event.

Live SSE task events stream in thread-pool execution mode (the
default); with process workers the tracer runs in the child and ships
back at completion, so remote clients still get ``queued`` /
``scheduled`` / ``done`` but per-task frames only for thread mode.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro import api, obs
from repro.config import ReproConfig
from repro.flow.serialize import result_to_dict
from repro.server import protocol
from repro.server.http import (
    HttpServerBase, MAX_BODY_BYTES, parse_trace_parent,
)
from repro.server.protocol import JobNotFound, ServerError
from repro.service import DesignService
from repro.service.core import ServiceOverloaded
from repro.service.jobs import FlowJob, JobValidationError
from repro.service.telemetry import Tracer

__all__ = ["ReproServer", "MAX_BODY_BYTES", "TERMINAL"]

log = logging.getLogger("repro.server")

#: job states with nothing left to wait for
TERMINAL = ("succeeded", "failed", "quarantined", "timeout", "cancelled")


class _JobState:
    """Everything the server remembers about one submitted job."""

    __slots__ = ("job", "submission", "status", "source", "history",
                 "subscribers", "created_s", "finished_s", "counted")

    def __init__(self, job: FlowJob):
        self.job = job
        self.submission = None            # ServiceResult once accepted
        self.status = "queued"
        self.counted = False              # holds an accept-queue slot
        self.source: Optional[str] = None
        self.history: List[Tuple[int, str, Dict[str, Any]]] = []
        self.subscribers: List[asyncio.Queue] = []
        self.created_s = time.time()
        self.finished_s: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.status in TERMINAL

    def to_payload(self, key: str) -> Dict[str, Any]:
        data = {"id": key, "app": self.job.app, "mode": self.job.mode,
                "status": self.status, "done": self.done,
                "created_s": self.created_s, "events": len(self.history)}
        if self.source is not None:
            data["source"] = self.source
        if self.finished_s is not None:
            data["wall_s"] = round(self.finished_s - self.created_s, 6)
        return data


class ReproServer(HttpServerBase):
    """Serves the ``/v1`` design-job API over one :class:`DesignService`.

    With no ``service`` the server builds its own from ``config``
    (default: :meth:`ReproConfig.from_env`) and owns its lifecycle.
    """

    def __init__(self, service: Optional[DesignService] = None,
                 host: str = "127.0.0.1", port: int = 8000,
                 max_queue: int = 8, drain_timeout_s: float = 30.0,
                 config: Optional[ReproConfig] = None):
        self._own_service = service is None
        self.service = service or api.open_service(config)
        self.config = config if config is not None \
            else ReproConfig.from_env()
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.drain_timeout_s = drain_timeout_s
        self.draining = False
        # fleet-observability surface: a span ring buffer the collector
        # drains (opt-in via obs_buffer), an SLO burn tracker, and an
        # opt-in sampling profiler (profile_hz)
        self.span_buffer: Optional[obs.SpanBuffer] = (
            obs.SpanBuffer(self.config.obs_buffer)
            if self.config.obs_buffer > 0 else None)
        self.slo = obs.SLOTracker(
            "server", target=self.config.slo_target,
            latency_s=self.config.slo_latency_s)
        self.profiler: Optional[obs.StackProfiler] = (
            obs.StackProfiler(self.config.profile_hz)
            if self.config.profile_hz > 0 else None)
        self._jobs: Dict[str, _JobState] = {}
        self._inflight = 0                # uncached jobs not yet done
        self._seq = 0                     # global SSE event id
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._idle = asyncio.Event()
        reg = obs.REGISTRY
        self._m_requests = reg.counter(
            "repro_http_requests_total", "HTTP requests served",
            labelnames=("route", "status"))
        self._m_latency = reg.histogram(
            "repro_http_request_seconds", "HTTP request latency",
            labelnames=("route",))
        self._m_inflight = reg.gauge(
            "repro_server_jobs_inflight", "uncached jobs being executed")
        self._m_shed = reg.counter(
            "repro_server_jobs_shed_total", "jobs refused for backpressure",
            labelnames=("reason",))
        self._m_sse = reg.gauge(
            "repro_server_sse_subscribers", "open SSE event streams")
        self._m_inflight.set(0)       # present in /metrics from boot
        self._m_sse.set(0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and begin serving (non-blocking; use from async code)."""
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self.service.add_listener(self._on_service_event)
        self.service.set_tracer_factory(self._tracer_for)
        if self.span_buffer is not None:
            obs.add_sink(self.span_buffer)
        self.slo.attach(obs.REGISTRY)
        if self.profiler is not None:
            self.profiler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("serving on http://%s:%d", self.host, self.port)

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work, optionally drain in-flight jobs, close."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(),
                                       self.drain_timeout_s)
            except asyncio.TimeoutError:
                log.warning("drain timed out with %d job(s) in flight",
                            self._inflight)
        # wake every SSE stream so connections close promptly
        for state in self._jobs.values():
            self._fanout(state, "shutdown", {"draining": True})
        self.service.remove_listener(self._on_service_event)
        self.service.set_tracer_factory(None)
        if self.span_buffer is not None:
            obs.remove_sink(self.span_buffer)
        self.slo.detach()
        if self.profiler is not None:
            self.profiler.stop()
        if self._own_service:
            self.service.close()

    def run(self) -> None:
        """Serve until SIGINT/SIGTERM, then drain and exit (blocking)."""
        async def main():
            await self.start()
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass
            await stop.wait()
            log.info("signal received: draining")
            await self.shutdown(drain=True)

        asyncio.run(main())

    # ------------------------------------------------------------------
    # Cross-thread event plumbing
    # ------------------------------------------------------------------

    def _publish_threadsafe(self, key: str, event: str,
                            data: Dict[str, Any]) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._publish, key, event, data)

    def _publish(self, key: str, event: str, data: Dict[str, Any]) -> None:
        """Record one job event and fan it out (loop thread only)."""
        state = self._jobs.get(key)
        if state is None:
            return
        if event == "done":
            status = data.get("status") or "succeeded"
            if not state.done:      # first terminal event wins
                state.status = status
                state.finished_s = time.time()
                if state.source is None:
                    state.source = data.get("source", "run")
                if state.counted:
                    state.counted = False
                    self._job_settled()
        elif event == "scheduled":
            state.status = "running"
        self._fanout(state, event, data)

    def _fanout(self, state: _JobState, event: str,
                data: Dict[str, Any]) -> None:
        self._seq += 1
        record = (self._seq, event, data)
        state.history.append(record)
        for queue in list(state.subscribers):
            queue.put_nowait(record)

    def _job_settled(self) -> None:
        self._inflight = max(0, self._inflight - 1)
        self._m_inflight.set(self._inflight)
        if self._inflight == 0:
            self._idle.set()

    def _on_service_event(self, event: str, job: FlowJob, key: str,
                          info: Dict[str, Any]) -> None:
        """DesignService listener (runs on service/worker threads)."""
        if event == "scheduled":
            self._publish_threadsafe(key, "scheduled", {"id": key})
        elif event == "done":
            self._publish_threadsafe(key, "done", {
                "id": key, "status": info.get("status", "succeeded"),
                "attempts": info.get("attempts"),
                "wall_s": info.get("wall_s"),
                "error": info.get("error"),
            })
        elif event == "lookup" and info.get("source") == "dead-letter":
            self._publish_threadsafe(key, "done", {
                "id": key, "status": "quarantined",
                "source": "dead-letter"})

    def _tracer_for(self, job: FlowJob, key: str) -> Tracer:
        """Per-job Tracer streaming task/branch frames to subscribers."""
        return Tracer(
            on_task=lambda span: self._publish_threadsafe(
                key, "task", span.to_dict()),
            on_branch_event=lambda event: self._publish_threadsafe(
                key, "branch", event.to_dict()))

    # ------------------------------------------------------------------
    # HTTP layer (parsing/response plumbing lives in HttpServerBase)
    # ------------------------------------------------------------------

    def _observe_request(self, route: str, status: int,
                         elapsed_s: float) -> None:
        self._m_requests.inc(route=route, status=str(status))
        self._m_latency.observe(elapsed_s, route=route)
        # SLO accounting: server-caused failures burn the budget;
        # client errors and deliberate shedding (4xx) do not
        self.slo.observe(ok=status < 500, latency_s=elapsed_s)

    def _route(self, method: str, path: str, query):
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            return "healthz", self._h_healthz, ()
        if path == "/metrics" and method == "GET":
            return "metrics", self._h_metrics, ()
        if parts[:1] == [protocol.API_VERSION]:
            rest = parts[1:]
            if rest == ["obs", "spans"] and method == "GET":
                return "obs_spans", self._h_obs_spans, (
                    query.get("since", "0"),)
            if rest == ["obs", "profile"] and method == "GET":
                return "obs_profile", self._h_obs_profile, ()
            if rest == ["obs", "summary"] and method == "GET":
                return "obs_summary", self._h_obs_summary, ()
            if rest == ["apps"] and method == "GET":
                return "apps", self._h_apps, ()
            if rest == ["modes"] and method == "GET":
                return "modes", self._h_modes, ()
            if rest == ["jobs"] and method == "POST":
                return "submit", self._h_submit, ()
            if rest == ["jobs"] and method == "GET":
                return "jobs", self._h_jobs, ()
            if len(rest) == 2 and rest[0] == "jobs" and method == "GET":
                return "job", self._h_job, (rest[1],)
            if (len(rest) == 3 and rest[0] == "jobs"
                    and rest[2] == "result" and method == "GET"):
                return "result", self._h_result, (rest[1],)
            if (len(rest) == 3 and rest[0] == "jobs"
                    and rest[2] == "events" and method == "GET"):
                return "events", self._h_events, (rest[1],)
            if len(rest) == 2 and rest[0] == "cache" and method == "GET":
                return "cache", self._h_cache_entry, (rest[1],)
        raise ServerError(f"no route for {method} {path}",
                          status=404, code="not_found")

    # -- handlers -------------------------------------------------------

    async def _h_healthz(self, writer, body, headers) -> int:
        health = self.service.health()
        health["server"] = {
            "draining": self.draining,
            "inflight": self._inflight,
            "max_queue": self.max_queue,
            "jobs_tracked": len(self._jobs),
        }
        # advisory fields for the fleet collector: the runner's clock
        # (for offset measurement) and SLO burn state.  An SLO burn
        # does NOT flip top-level status -- the router parks non-ok
        # runners unroutable, and shrinking a burning fleet burns it
        # harder.
        health["now"] = obs.now()
        health["slo"] = self.slo.snapshot()
        breaker_open = health["overload"]["state"] != "closed"
        ok = not breaker_open and not self.draining
        health["status"] = "ok" if ok else "degraded"
        return await self._send_json(writer, 200 if ok else 503, health)

    async def _h_metrics(self, writer, body, headers) -> int:
        text = obs.REGISTRY.to_prometheus()
        return await self._send(writer, 200, text.encode("utf-8"),
                                "text/plain; version=0.0.4")

    # -- fleet observability surface ------------------------------------

    async def _h_obs_spans(self, writer, body, headers,
                           since: str) -> int:
        """Drain finished spans past the collector's cursor."""
        try:
            cursor = int(since)
        except (TypeError, ValueError):
            raise ServerError(f"bad since cursor {since!r}",
                              status=400, code="bad_request") from None
        if self.span_buffer is None:
            payload = {"enabled": False, "spans": [], "next": 0,
                       "dropped": 0, "now": obs.now()}
        else:
            spans, next_seq = self.span_buffer.since(cursor)
            payload = {"enabled": True, "spans": spans,
                       "next": next_seq,
                       "dropped": self.span_buffer.dropped,
                       "now": obs.now()}
        return await self._send_json(writer, 200, payload)

    async def _h_obs_profile(self, writer, body, headers) -> int:
        """Folded-stack profiler dump (flamegraph.pl input format)."""
        if self.profiler is None:
            raise ServerError(
                "profiler is off (set REPRO_PROFILE_HZ to enable)",
                status=404, code="not_found")
        text = self.profiler.folded()
        return await self._send(writer, 200,
                                (text + "\n").encode("utf-8"),
                                "text/plain; charset=utf-8")

    async def _h_obs_summary(self, writer, body, headers) -> int:
        payload = {
            "role": "runner",
            "version": repro.__version__,
            "now": obs.now(),
            "slo": self.slo.snapshot(),
            "spans": {
                "enabled": self.span_buffer is not None,
                "buffered": (len(self.span_buffer)
                             if self.span_buffer is not None else 0),
                "dropped": (self.span_buffer.dropped
                            if self.span_buffer is not None else 0),
            },
            "profiler": (self.profiler.snapshot()
                         if self.profiler is not None else None),
        }
        return await self._send_json(writer, 200, payload)

    async def _h_apps(self, writer, body, headers) -> int:
        return await self._send_json(writer, 200, {"apps": api.list_apps()})

    async def _h_modes(self, writer, body, headers) -> int:
        return await self._send_json(writer, 200,
                                     {"modes": api.list_modes()})

    async def _h_jobs(self, writer, body, headers) -> int:
        jobs = [state.to_payload(key)
                for key, state in self._jobs.items()]
        return await self._send_json(writer, 200, {"jobs": jobs})

    async def _h_submit(self, writer, body, headers) -> int:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobValidationError(f"body is not JSON: {exc}") from None
        job = protocol.job_from_payload(payload)
        key = job.key()
        known = self._jobs.get(key)
        if known is not None:
            # content-hash dedup: same spec, same job, no new work
            return await self._send_json(writer, 200,
                                         known.to_payload(key))
        # cached/in-flight results are served even while shedding
        cached = await asyncio.get_running_loop().run_in_executor(
            None, self.service.lookup, job)
        if cached is not None and cached.done():
            state = _JobState(job)
            state.submission = cached
            state.source = cached.source
            self._jobs[key] = state
            self._fanout(state, "queued", {"id": key,
                                           "source": cached.source})
            self._publish(key, "done", {"id": key, "status": "succeeded",
                                        "source": cached.source})
            return await self._send_json(writer, 200,
                                         state.to_payload(key))
        if self.draining:
            self._m_shed.inc(reason="draining")
            return await self._send_json(writer, 503, protocol._body(
                "unavailable", "server is draining for shutdown",
                retry_after_s=self.drain_timeout_s))
        if self._inflight >= self.max_queue:
            self._m_shed.inc(reason="queue_full")
            return await self._send_json(writer, 429, protocol._body(
                "busy", f"accept queue full ({self.max_queue} in flight)",
                retry_after_s=1.0))
        # register BEFORE submitting so listener events find the state
        state = _JobState(job)
        state.counted = True
        self._jobs[key] = state
        self._inflight += 1
        self._m_inflight.set(self._inflight)
        self._idle.clear()
        self._fanout(state, "queued", {"id": key})
        # a forwarding router stamps its span context onto the request;
        # adopting it stitches router->runner traces into one tree
        obs_parent = parse_trace_parent(headers)
        try:
            submission = await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.service.submit(job,
                                                  obs_parent=obs_parent))
        except ServiceOverloaded:
            del self._jobs[key]
            self._job_settled()
            self._m_shed.inc(reason="breaker")
            raise
        except BaseException:
            del self._jobs[key]
            self._job_settled()
            raise
        state.submission = submission
        if submission.source.startswith("cache") and submission.done():
            state.source = submission.source
            self._publish(key, "done", {"id": key, "status": "succeeded",
                                        "source": submission.source})
        elif submission.source == "inflight":
            state.source = "inflight"
            state.status = "running"
            if submission.done():
                self._publish(key, "done",
                              {"id": key, "status": "succeeded",
                               "source": "inflight"})
        return await self._send_json(writer, 201, state.to_payload(key))

    async def _h_cache_entry(self, writer, body, headers,
                             key: str) -> int:
        """Serve one verified *local* cache entry to a fleet peer.

        Reads through ``get_local_entry`` so a PeerFetchCache-backed
        service never chains a peer fetch off a peer fetch.
        """
        cache = self.service.cache
        entry = None
        if cache is not None:
            entry = await asyncio.get_running_loop().run_in_executor(
                None, cache.get_local_entry, key)
        if entry is None:
            raise ServerError(f"no cache entry for {key!r}",
                              status=404, code="not_found")
        return await self._send_json(writer, 200, entry)

    def _state_of(self, key: str) -> _JobState:
        state = self._jobs.get(key)
        if state is None:
            raise JobNotFound(f"no job {key!r} on this server")
        return state

    async def _h_job(self, writer, body, headers, key: str) -> int:
        return await self._send_json(writer, 200,
                                     self._state_of(key).to_payload(key))

    async def _h_result(self, writer, body, headers, key: str) -> int:
        state = self._state_of(key)
        submission = state.submission
        if submission is None or not submission.done():
            # taxonomy satellite: same error the in-process caller gets
            raise protocol.JobResultPending(
                key, state.status, 0, 0.0, label=state.job.label)
        # .result() re-raises the job's terminal error -> error_to_payload
        value = await asyncio.get_running_loop().run_in_executor(
            None, submission.result, 0.0)
        record = result_to_dict(value)
        record["id"] = key
        record["source"] = state.source or submission.source
        return await self._send_json(writer, 200, record)

    async def _h_events(self, writer, body, headers, key: str) -> int:
        state = self._state_of(key)
        # SSE resume: a reconnecting client sends Last-Event-ID (the
        # ``id:`` of the last frame it saw); replay only what it
        # missed.  Event seqs are globally monotone, so the filter is
        # a plain comparison.  A malformed header degrades to a full
        # replay -- never an error on a reconnect path.
        after = None
        raw_last = headers.get("last-event-id")
        if raw_last:
            try:
                after = int(raw_last.strip())
            except ValueError:
                after = None
        head = ["HTTP/1.1 200 OK",
                "Content-Type: text/event-stream",
                "Cache-Control: no-cache",
                "Connection: close"]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        queue: asyncio.Queue = asyncio.Queue()
        replay = [record for record in state.history
                  if after is None or record[0] > after]
        state.subscribers.append(queue)
        self._m_sse.inc()
        try:
            for record in replay:
                if not await self._send_sse(writer, record):
                    return 200
            if state.done or self.draining:
                return 200
            while True:
                record = await queue.get()
                if not await self._send_sse(writer, record):
                    return 200
                if record[1] in ("done", "shutdown"):
                    return 200
        finally:
            try:
                state.subscribers.remove(queue)
            except ValueError:
                pass
            self._m_sse.dec()

    async def _send_sse(self, writer,
                        record: Tuple[int, str, Dict[str, Any]]) -> bool:
        seq, event, data = record
        frame = (f"id: {seq}\nevent: {event}\n"
                 f"data: {json.dumps(data)}\n\n")
        try:
            writer.write(frame.encode("utf-8"))
            await writer.drain()
            return True
        except ConnectionError:
            return False
