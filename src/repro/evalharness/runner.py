"""Shared flow execution, backed by the design-generation service.

Every experiment needs the same uninformed + informed flow runs over
the five benchmarks.  The runner sits on :class:`DesignService`, so
Fig. 5, Table I and Fig. 6 regeneration get in-flight dedup, optional
parallel execution (``workers``/``REPRO_WORKERS``) and persistent
cross-run caching (``cache_dir``/``REPRO_CACHE_DIR``) for free; with
the defaults (one in-process worker, no cache dir) it behaves exactly
like the old serial runner and returns live :class:`FlowResult`
objects.

The experiment modules (fig5/table1/fig6/energy/report) all route
through :func:`shared_runner`, one process-wide instance, instead of
each constructing their own -- identical flows are never re-run when
several experiments are generated in one process.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.apps.registry import PAPER_ORDER
from repro.flow.engine import FlowEngine
from repro.service import DesignService

#: Fig. 5 column order (after the Auto-Selected bar)
DESIGN_LABELS = ("omp", "hip-1080ti", "hip-2080ti",
                 "oneapi-a10", "oneapi-s10")


class EvaluationRunner:
    """Runs and caches PSA-flow executions for the evaluation."""

    def __init__(self, engine: Optional[FlowEngine] = None,
                 service: Optional[DesignService] = None,
                 cache_dir: Optional[str] = None,
                 workers: Optional[int] = None):
        if service is None:
            if cache_dir is None:
                cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
            if workers is None:
                workers = int(os.environ.get("REPRO_WORKERS", "1"))
            # retry budget for transient faults -- chaos runs set this
            # alongside $REPRO_FAULTS so injected worker errors are
            # absorbed instead of failing the experiment
            retries = int(os.environ.get("REPRO_RETRIES", "0"))
            service = DesignService(engine=engine, cache_dir=cache_dir,
                                    workers=workers,
                                    default_retries=retries)
        self.service = service
        self.engine = service.engine

    def run(self, app_name: str, mode: str):
        return self.service.run_pair(app_name, mode)

    def prefetch(self, apps: Optional[List[str]] = None,
                 modes: Optional[List[str]] = None) -> None:
        """Warm every (app, mode) pair through the service's pool."""
        from repro.service.batch import expand_jobs

        for submission in self.service.submit_many(
                expand_jobs(apps or self.all_apps(), modes)):
            submission.result()

    def uninformed(self, app_name: str):
        return self.run(app_name, "uninformed")

    def informed(self, app_name: str):
        return self.run(app_name, "informed")

    def all_apps(self) -> List[str]:
        return list(PAPER_ORDER)

    def speedup(self, app_name: str, label: str) -> Optional[float]:
        """Speedup of one design of the uninformed run (None = n/a)."""
        design = self.uninformed(app_name).design(label)
        if design is None or not design.synthesizable:
            return None
        return design.speedup

    def hotspot_time(self, app_name: str, label: str) -> Optional[float]:
        design = self.uninformed(app_name).design(label)
        if design is None or not design.synthesizable:
            return None
        return design.predicted_time_s

    def close(self) -> None:
        self.service.close()


#: process-wide runner every experiment module shares by default
_SHARED: Optional[EvaluationRunner] = None


def shared_runner() -> EvaluationRunner:
    """The process-wide service-backed runner (created on first use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = EvaluationRunner()
    return _SHARED


def set_shared_runner(runner: Optional[EvaluationRunner]
                      ) -> Optional[EvaluationRunner]:
    """Swap the shared runner (tests, custom services); returns the old."""
    global _SHARED
    previous, _SHARED = _SHARED, runner
    return previous
