"""Shared flow execution, backed by the design-generation service.

Every experiment needs the same uninformed + informed flow runs over
the five benchmarks.  The runner sits on :class:`DesignService`, so
Fig. 5, Table I and Fig. 6 regeneration get in-flight dedup, optional
parallel execution and persistent cross-run caching for free; the
service configuration comes from :class:`repro.config.ReproConfig`
(``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` / ``REPRO_RETRIES``) with
constructor arguments taking precedence.  With the defaults (one
in-process worker, no cache dir) it behaves exactly like the old
serial runner and returns live :class:`FlowResult` objects.

The runner can also execute **remotely**: give it a
:class:`repro.client.ReproClient` (or set ``$REPRO_SERVER`` / pass
``server_url``) and every flow runs on a ``python -m repro serve``
instance instead of in this process, returning the deserialized
:class:`FlowResultRecord` -- the same read API either way.

The experiment modules (fig5/table1/fig6/energy/report) all route
through :func:`repro.api.shared_runner`, one process-wide instance,
instead of each constructing their own -- identical flows are never
re-run when several experiments are generated in one process.
(``shared_runner`` / ``set_shared_runner`` are re-exported here for
backward compatibility but their canonical home is :mod:`repro.api`.)
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional

from repro.apps.registry import PAPER_ORDER
from repro.config import ReproConfig
from repro.flow.engine import FlowEngine
from repro.service import DesignService

#: Fig. 5 column order (after the Auto-Selected bar)
DESIGN_LABELS = ("omp", "hip-1080ti", "hip-2080ti",
                 "oneapi-a10", "oneapi-s10")


class EvaluationRunner:
    """Runs and caches PSA-flow executions for the evaluation."""

    def __init__(self, engine: Optional[FlowEngine] = None,
                 service: Optional[DesignService] = None,
                 cache_dir: Optional[str] = None,
                 workers: Optional[int] = None,
                 client=None,
                 server_url: Optional[str] = None):
        if client is None:
            server_url = server_url or os.environ.get("REPRO_SERVER") \
                or None
            if server_url:
                from repro.client import ReproClient

                client = ReproClient(server_url)
        self.client = client
        if client is not None:
            # remote mode: flows run on the server, nothing local to own
            self.service = None
            self.engine = engine or FlowEngine()
            self._results = {}
            return
        if service is None:
            from repro import api

            cfg = ReproConfig.resolve(
                cli={"cache_dir": cache_dir, "workers": workers})
            service = api.open_service(cfg, engine=engine)
        self.service = service
        self.engine = service.engine
        self._results = {}

    def run(self, app_name: str, mode: str):
        if self.client is not None:
            # memoized locally: the experiments re-read the same pair
            key = (app_name, mode)
            if key not in self._results:
                self._results[key] = self.client.run_flow(app_name, mode)
            return self._results[key]
        return self.service.run_pair(app_name, mode)

    def prefetch(self, apps: Optional[List[str]] = None,
                 modes: Optional[List[str]] = None) -> None:
        """Warm every (app, mode) pair through the service's pool."""
        from repro.service.batch import expand_jobs

        if self.client is not None:
            for job in expand_jobs(apps or self.all_apps(), modes):
                self.run(job.app, job.mode)
            return
        for submission in self.service.submit_many(
                expand_jobs(apps or self.all_apps(), modes)):
            submission.result()

    def uninformed(self, app_name: str):
        return self.run(app_name, "uninformed")

    def informed(self, app_name: str):
        return self.run(app_name, "informed")

    def all_apps(self) -> List[str]:
        return list(PAPER_ORDER)

    def speedup(self, app_name: str, label: str) -> Optional[float]:
        """Speedup of one design of the uninformed run (None = n/a)."""
        design = self.uninformed(app_name).design(label)
        if design is None or not design.synthesizable:
            return None
        return design.speedup

    def hotspot_time(self, app_name: str, label: str) -> Optional[float]:
        design = self.uninformed(app_name).design(label)
        if design is None or not design.synthesizable:
            return None
        return design.predicted_time_s

    def close(self) -> None:
        if self.service is not None:
            self.service.close()


#: names that moved to repro.api (PR 5); kept importable here
_MOVED_TO_API = ("shared_runner", "set_shared_runner")


def __getattr__(name: str):
    if name in _MOVED_TO_API:
        warnings.warn(
            f"repro.evalharness.runner.{name} moved to repro.api.{name}; "
            f"update the import (this shim will be removed)",
            DeprecationWarning, stacklevel=2)
        from repro import api

        return getattr(api, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
