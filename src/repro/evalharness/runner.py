"""Shared flow execution with caching.

Every experiment needs the same uninformed + informed flow runs over the
five benchmarks; the runner executes each (app, mode) pair once and
caches the :class:`FlowResult` so Fig. 5, Table I and Fig. 6 can be
regenerated from one pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.registry import ALL_APPS, PAPER_ORDER, get_app
from repro.flow.engine import FlowEngine, FlowResult

#: Fig. 5 column order (after the Auto-Selected bar)
DESIGN_LABELS = ("omp", "hip-1080ti", "hip-2080ti",
                 "oneapi-a10", "oneapi-s10")


class EvaluationRunner:
    """Runs and caches PSA-flow executions for the evaluation."""

    def __init__(self, engine: Optional[FlowEngine] = None):
        self.engine = engine or FlowEngine()
        self._cache: Dict[Tuple[str, str], FlowResult] = {}

    def run(self, app_name: str, mode: str) -> FlowResult:
        key = (app_name, mode)
        result = self._cache.get(key)
        if result is None:
            result = self.engine.run(get_app(app_name), mode=mode)
            self._cache[key] = result
        return result

    def uninformed(self, app_name: str) -> FlowResult:
        return self.run(app_name, "uninformed")

    def informed(self, app_name: str) -> FlowResult:
        return self.run(app_name, "informed")

    def all_apps(self) -> List[str]:
        return list(PAPER_ORDER)

    def speedup(self, app_name: str, label: str) -> Optional[float]:
        """Speedup of one design of the uninformed run (None = n/a)."""
        design = self.uninformed(app_name).design(label)
        if design is None or not design.synthesizable:
            return None
        return design.speedup

    def hotspot_time(self, app_name: str, label: str) -> Optional[float]:
        design = self.uninformed(app_name).design(label)
        if design is None or not design.synthesizable:
            return None
        return design.predicted_time_s
