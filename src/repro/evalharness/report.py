"""Full reproduction report writer.

Renders every regenerated experiment (Fig. 5, Table I, Fig. 6,
Table II, the energy extension) plus per-app flow traces into one
markdown document -- the "new way of understanding and documenting
design development" the paper's conclusion describes, in file form.

    python -m repro.evalharness report [path]
"""

from __future__ import annotations

from typing import Optional

from repro.evalharness.energy import render_energy, run_energy
from repro.evalharness.fig5 import render_fig5, run_fig5
from repro.evalharness.fig6 import render_fig6, run_fig6
from repro.api import shared_runner
from repro.evalharness.runner import EvaluationRunner
from repro.evalharness.table1 import render_table1, run_table1
from repro.evalharness.table2 import render_table2


def build_report(runner: Optional[EvaluationRunner] = None) -> str:
    runner = runner or shared_runner()
    sections = [
        "# PSA-flow reproduction report",
        "",
        "Regenerated from `repro` -- every flow run, decision, design "
        "and model prediction below is reproducible with "
        "`python -m repro.evalharness all`.",
        "",
        "## Fig. 5 -- hotspot speedups",
        "",
        "```",
        render_fig5(run_fig5(runner)),
        "```",
        "",
        "## Table I -- added lines of code",
        "",
        "```",
        render_table1(run_table1(runner)),
        "```",
        "",
        "## Fig. 6 -- cost trade-offs",
        "",
        "```",
        render_fig6(run_fig6(runner)),
        "```",
        "",
        "## Energy (SS IV-D extension)",
        "",
        "```",
        render_energy(run_energy(runner)),
        "```",
        "",
        "## Table II -- related work",
        "",
        "```",
        render_table2(),
        "```",
        "",
        "## Decision traces",
        "",
    ]
    for app_name in runner.all_apps():
        result = runner.informed(app_name)
        sections += [
            f"### {result.app.display_name} (informed)",
            "",
            "```",
            result.explain(),
            "```",
            "",
        ]
    return "\n".join(sections)


def write_report(path: str,
                 runner: Optional[EvaluationRunner] = None) -> str:
    text = build_report(runner)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text


def main(path: str = "reproduction_report.md") -> None:
    write_report(path)
    print(f"report written to {path}")


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "reproduction_report.md")
