"""Terminal rendering: ASCII tables and horizontal bar charts."""

from __future__ import annotations

from typing import List, Optional, Sequence


def table(headers: Sequence[str], rows: Sequence[Sequence[str]],
          title: str = "") -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))

    def line(cells):
        return " | ".join(str(c).rjust(widths[i]) if i else
                          str(c).ljust(widths[i])
                          for i, c in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    for row in rows:
        out.append(line(row))
    return "\n".join(out)


def bars(labels: Sequence[str], values: Sequence[Optional[float]],
         title: str = "", width: int = 50, unit: str = "x") -> str:
    """Horizontal bar chart; None values render as 'n/a'."""
    out = [title] if title else []
    numeric = [v for v in values if v is not None]
    peak = max(numeric) if numeric else 1.0
    label_width = max(len(l) for l in labels) if labels else 0
    for label, value in zip(labels, values):
        if value is None:
            out.append(f"  {label.ljust(label_width)} |  n/a "
                       "(not synthesizable)")
            continue
        length = max(1, int(round(width * value / peak)))
        out.append(f"  {label.ljust(label_width)} |{'#' * length} "
                   f"{value:.1f}{unit}")
    return "\n".join(out)


def format_speedup(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if value >= 100:
        return f"{value:.0f}x"
    return f"{value:.1f}x"


def format_pct(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    return f"+{value:.0f}%"
