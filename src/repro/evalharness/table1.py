"""Table I: added lines of code per generated design.

"The generation of five new implementations for a single application
requires, on average, an additional 212% of the reference source-code
LOC."  The harness renders every design of the uninformed flow, counts
its non-blank non-comment lines, and reports the delta against the
reference high-level source -- excluding, as the paper does, the
unsynthesisable Rush Larsen FPGA designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.registry import get_app
from repro.evalharness.render import format_pct, table
from repro.api import shared_runner
from repro.evalharness.runner import DESIGN_LABELS, EvaluationRunner

#: the paper's Table I (percent added LOC; None = excluded/unavailable)
PAPER_TABLE1: Dict[str, Dict[str, Optional[float]]] = {
    "rush_larsen": {"omp": 0.4, "hip-1080ti": 6, "hip-2080ti": 6,
                    "oneapi-a10": None, "oneapi-s10": None, "total": None},
    "nbody": {"omp": 2, "hip-1080ti": 37, "hip-2080ti": 37,
              "oneapi-a10": 52, "oneapi-s10": 69, "total": 197},
    "bezier": {"omp": 2, "hip-1080ti": 26, "hip-2080ti": 26,
               "oneapi-a10": 34, "oneapi-s10": 42, "total": 130},
    "adpredictor": {"omp": 2, "hip-1080ti": 31, "hip-2080ti": 31,
                    "oneapi-a10": 42, "oneapi-s10": 63, "total": 169},
    "kmeans": {"omp": 4, "hip-1080ti": 81, "hip-2080ti": 81,
               "oneapi-a10": 101, "oneapi-s10": 147, "total": 414},
}

PAPER_AVERAGE = {"omp": 2, "hip-1080ti": 36, "hip-2080ti": 36,
                 "oneapi-a10": 57, "oneapi-s10": 81, "total": 212}


@dataclass
class Table1Row:
    app: str
    display_name: str
    reference_loc: int
    deltas_pct: Dict[str, Optional[float]]

    @property
    def total_pct(self) -> Optional[float]:
        """Sum over the five designs (None when any is excluded)."""
        values = [self.deltas_pct[l] for l in DESIGN_LABELS]
        if any(v is None for v in values):
            return None
        return sum(values)


def run_table1(runner: Optional[EvaluationRunner] = None) -> List[Table1Row]:
    runner = runner or shared_runner()
    rows: List[Table1Row] = []
    for app_name in runner.all_apps():
        app = get_app(app_name)
        result = runner.uninformed(app_name)
        deltas: Dict[str, Optional[float]] = {}
        for label in DESIGN_LABELS:
            design = result.design(label)
            if design is None or not design.synthesizable:
                # "the generated CPU+FPGA designs for Rush Larsen are
                # not synthesizable ... excluded from our LOC evaluation"
                deltas[label] = None
            else:
                deltas[label] = design.loc_delta_pct
        rows.append(Table1Row(app_name, app.display_name,
                              app.reference_loc, deltas))
    return rows


def averages(rows: List[Table1Row]) -> Dict[str, float]:
    """Column means over the apps that have a value (paper's last row)."""
    out: Dict[str, float] = {}
    for label in DESIGN_LABELS:
        values = [r.deltas_pct[label] for r in rows
                  if r.deltas_pct[label] is not None]
        out[label] = sum(values) / len(values) if values else float("nan")
    totals = [r.total_pct for r in rows if r.total_pct is not None]
    out["total"] = sum(totals) / len(totals) if totals else float("nan")
    return out


def render_table1(rows: List[Table1Row], show_paper: bool = True) -> str:
    headers = (["Application", "ref LOC"] + list(DESIGN_LABELS)
               + ["Total (5)"])
    body = []
    for row in rows:
        body.append(
            [row.display_name, str(row.reference_loc)]
            + [format_pct(row.deltas_pct[l]) for l in DESIGN_LABELS]
            + [format_pct(row.total_pct)])
        if show_paper:
            paper = PAPER_TABLE1[row.app]
            body.append(
                ["  (paper)", ""]
                + [format_pct(paper[l]) for l in DESIGN_LABELS]
                + [format_pct(paper["total"])])
    avg = averages(rows)
    body.append(["Average", ""]
                + [format_pct(avg[l]) for l in DESIGN_LABELS]
                + [format_pct(avg["total"])])
    if show_paper:
        body.append(["  (paper)", ""]
                    + [format_pct(PAPER_AVERAGE[l]) for l in DESIGN_LABELS]
                    + [format_pct(PAPER_AVERAGE["total"])])
    return table(headers, body,
                 title="Table I -- added LOC per generated design "
                       "(measured vs paper)")


def main() -> str:
    text = render_table1(run_table1())
    print(text)
    return text


if __name__ == "__main__":
    main()
