"""Energy-efficiency analysis (paper §IV-D extension).

"Similar analysis could be used to identify the most energy efficient
implementation for a specific application."  For every benchmark and
every synthesisable design of the uninformed flow, compute the energy
of one hotspot execution and report the most energy-efficient target
alongside the fastest -- they frequently differ, which is the point.

    python -m repro.evalharness energy
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.registry import get_app
from repro.evalharness.render import table
from repro.api import shared_runner
from repro.evalharness.runner import DESIGN_LABELS, EvaluationRunner
from repro.platforms.power import energy_joules


@dataclass
class EnergyRow:
    app: str
    display_name: str
    #: label -> energy in joules per hotspot execution (None = n/a)
    energy_j: Dict[str, Optional[float]]
    fastest: str
    most_efficient: str

    @property
    def efficiency_differs_from_speed(self) -> bool:
        return self.fastest != self.most_efficient


def run_energy(runner: Optional[EvaluationRunner] = None) -> List[EnergyRow]:
    runner = runner or shared_runner()
    rows: List[EnergyRow] = []
    for app_name in runner.all_apps():
        result = runner.uninformed(app_name)
        energy: Dict[str, Optional[float]] = {}
        for label in DESIGN_LABELS:
            design = result.design(label)
            if design is None or not design.synthesizable:
                energy[label] = None
                continue
            energy[label] = energy_joules(
                design.device, design.predicted_time_s, kind=design.kind)
        valid = {k: v for k, v in energy.items() if v is not None}
        most_efficient = min(valid, key=valid.get)
        fastest_design = max(result.synthesizable_designs,
                             key=lambda d: d.speedup)
        rows.append(EnergyRow(
            app=app_name,
            display_name=get_app(app_name).display_name,
            energy_j=energy,
            fastest=fastest_design.metadata.get("device_label"),
            most_efficient=most_efficient,
        ))
    return rows


def render_energy(rows: List[EnergyRow]) -> str:
    headers = (["Application"] + [f"E({l}) mJ" for l in DESIGN_LABELS]
               + ["fastest", "most efficient"])
    body = []
    for row in rows:
        cells = [row.display_name]
        for label in DESIGN_LABELS:
            value = row.energy_j[label]
            cells.append("n/a" if value is None else f"{value * 1e3:.2f}")
        cells += [row.fastest, row.most_efficient
                  + (" *" if row.efficiency_differs_from_speed else "")]
        body.append(cells)
    notes = ["", "* most energy-efficient target differs from the fastest",
             "energy = board power(utilisation) x hotspot time, one "
             "execution"]
    return table(headers, body,
                 title="Energy per hotspot execution (SS IV-D extension)") \
        + "\n" + "\n".join(notes)


def main() -> str:
    text = render_energy(run_energy())
    print(text)
    return text


if __name__ == "__main__":
    main()
