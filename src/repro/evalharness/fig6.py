"""Fig. 6: relative cost of FPGA vs GPU execution over resource prices.

"Fig. 6 shows the relative cost of FPGA and GPU execution for three
applications based on the Stratix10 and 2080 Ti results from Fig. 5":

- AdPredictor executes fastest on the Stratix10, yet "if the FPGA price
  per unit time is > 3.2 times the GPU price, it is more cost effective
  to execute on the CPU+GPU 2080 Ti platform";
- "if the GPU price is > 2.5 times the FPGA price, it is more cost
  effective to execute Bezier on the Stratix10 CPU+FPGA platform,
  despite being slower".

The harness sweeps the FPGA/GPU price ratio over the figure's 1/4..4
range, computes cost(FPGA)/cost(GPU) per application from the measured
hotspot times, and reports each crossover (the price ratio at which the
two platforms cost the same = t_gpu / t_fpga).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.registry import get_app
from repro.evalharness.render import table
from repro.api import shared_runner
from repro.evalharness.runner import EvaluationRunner
from repro.flow.cost import CostEvaluator

#: apps shown in the paper's Fig. 6
FIG6_APPS = ("adpredictor", "bezier", "kmeans")

#: crossover price ratios the paper quotes (FPGA price / GPU price)
PAPER_FIG6_CROSSOVERS: Dict[str, float] = {
    "adpredictor": 3.2,   # FPGA 3.2x faster: stays cheaper until 3.2
    "bezier": 1 / 2.5,    # GPU 2.5x faster: FPGA cheaper below 1/2.5
}

#: the Fig. 6 x-axis
PRICE_RATIOS = (0.25, 1 / 3, 0.5, 1.0, 2.0, 3.0, 4.0)

FPGA_LABEL = "oneapi-s10"
GPU_LABEL = "hip-2080ti"


@dataclass
class Fig6Row:
    app: str
    display_name: str
    t_fpga_s: float
    t_gpu_s: float
    #: cost(FPGA)/cost(GPU) per swept price ratio
    relative_costs: Dict[float, float]
    #: FPGA/GPU price ratio at which costs are equal
    crossover: float

    def fpga_cheaper_at(self, price_ratio: float) -> bool:
        return self.relative_costs[price_ratio] < 1.0


def run_fig6(runner: Optional[EvaluationRunner] = None) -> List[Fig6Row]:
    runner = runner or shared_runner()
    evaluator = CostEvaluator()
    rows: List[Fig6Row] = []
    for app_name in FIG6_APPS:
        t_fpga = runner.hotspot_time(app_name, FPGA_LABEL)
        t_gpu = runner.hotspot_time(app_name, GPU_LABEL)
        if t_fpga is None or t_gpu is None:
            continue
        relative = {}
        for ratio in PRICE_RATIOS:
            # price ratio = p_fpga / p_gpu; absolute scale cancels
            cost_fpga = t_fpga * ratio
            cost_gpu = t_gpu * 1.0
            relative[ratio] = cost_fpga / cost_gpu
        crossover = evaluator.crossover_price_ratio(t_fpga, t_gpu)
        rows.append(Fig6Row(app_name, get_app(app_name).display_name,
                            t_fpga, t_gpu, relative, crossover))
    return rows


def render_fig6(rows: List[Fig6Row]) -> str:
    headers = (["App", "t_S10", "t_2080Ti"]
               + [f"p={r:.2f}" for r in PRICE_RATIOS]
               + ["crossover", "paper"])
    body = []
    for row in rows:
        paper = PAPER_FIG6_CROSSOVERS.get(row.app)
        body.append(
            [row.display_name,
             f"{row.t_fpga_s * 1e3:.2f} ms",
             f"{row.t_gpu_s * 1e3:.2f} ms"]
            + [f"{row.relative_costs[r]:.2f}" for r in PRICE_RATIOS]
            + [f"{row.crossover:.2f}",
               f"{paper:.2f}" if paper is not None else "-"])
    notes = [
        "",
        "cells: cost(Stratix10) / cost(2080 Ti) at FPGA/GPU price ratio p",
        "cell < 1 -> FPGA is more cost effective at that price ratio",
        "crossover: price ratio p at which both platforms cost the same",
    ]
    return table(headers, body,
                 title="Fig. 6 -- relative FPGA vs GPU execution cost") \
        + "\n" + "\n".join(notes)


def main() -> str:
    text = render_fig6(run_fig6())
    print(text)
    return text


if __name__ == "__main__":
    main()
