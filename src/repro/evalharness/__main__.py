"""Command-line entry: ``python -m repro.evalharness <experiment>``."""

from __future__ import annotations

import sys

from repro import obs
from repro.evalharness.energy import render_energy, run_energy
from repro.evalharness.fig5 import render_fig5, run_fig5
from repro.evalharness.fig6 import render_fig6, run_fig6
from repro.api import shared_runner
from repro.evalharness.table1 import render_table1, run_table1
from repro.evalharness.report import write_report
from repro.evalharness.table2 import render_table2

USAGE = """usage: python -m repro.evalharness <experiment> \
[--trace-out PATH] [--metrics-out PATH]

experiments:
  fig5     hotspot speedups of all generated designs
  table1   added LOC per generated design
  fig6     relative FPGA vs GPU execution cost
  table2   related-work capability matrix
  energy   energy per hotspot execution (SS IV-D extension)
  report   write the full markdown reproduction report
  all      everything above (flows are run once and shared)

options:
  --trace-out PATH     write a Chrome trace-event JSON (Perfetto)
  --metrics-out PATH   write the Prometheus text metrics dump
"""


def _pop_option(argv, name):
    """Extract ``name VALUE`` or ``name=VALUE`` from argv, if present."""
    for i, arg in enumerate(argv):
        if arg == name and i + 1 < len(argv):
            value = argv[i + 1]
            del argv[i:i + 2]
            return value
        if arg.startswith(name + "="):
            del argv[i]
            return arg.split("=", 1)[1]
    return None


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    trace_out = _pop_option(argv, "--trace-out")
    metrics_out = _pop_option(argv, "--metrics-out")
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    which = argv[0]
    with obs.trace_session(trace_out, metrics_out,
                           root=f"eval {which}", experiment=which):
        return _dispatch(which)


def _dispatch(which: str) -> int:
    runner = shared_runner()
    if which == "fig5":
        print(render_fig5(run_fig5(runner)))
    elif which == "table1":
        print(render_table1(run_table1(runner)))
    elif which == "fig6":
        print(render_fig6(run_fig6(runner)))
    elif which == "table2":
        print(render_table2())
    elif which == "energy":
        print(render_energy(run_energy(runner)))
    elif which == "report":
        write_report("reproduction_report.md", runner)
        print("report written to reproduction_report.md")
    elif which == "all":
        print(render_fig5(run_fig5(runner)))
        print()
        print(render_table1(run_table1(runner)))
        print()
        print(render_fig6(run_fig6(runner)))
        print()
        print(render_energy(run_energy(runner)))
        print()
        print(render_table2())
    else:
        print(USAGE)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
