"""Experiment harness: regenerates every table and figure of the paper.

- :mod:`fig5` -- accelerated hotspot speedups of all generated designs
  (informed + uninformed PSA-flow runs over the five benchmarks);
- :mod:`table1` -- added lines of code per generated design;
- :mod:`fig6` -- relative FPGA-vs-GPU execution cost over price ratios;
- :mod:`table2` -- the related-work capability matrix (encoded data);
- :mod:`runner` -- shared flow execution + result caching;
- :mod:`render` -- ASCII tables and bar charts for terminal output.

Run from the command line::

    python -m repro.evalharness fig5
    python -m repro.evalharness table1
    python -m repro.evalharness fig6
    python -m repro.evalharness table2
    python -m repro.evalharness all
"""

from repro.evalharness.runner import EvaluationRunner
from repro.evalharness.fig5 import PAPER_FIG5, Fig5Row, run_fig5
from repro.evalharness.table1 import PAPER_TABLE1, Table1Row, run_table1
from repro.evalharness.fig6 import PAPER_FIG6_CROSSOVERS, run_fig6
from repro.evalharness.table2 import TABLE2_ROWS, render_table2

__all__ = [
    "EvaluationRunner",
    "run_fig5", "Fig5Row", "PAPER_FIG5",
    "run_table1", "Table1Row", "PAPER_TABLE1",
    "run_fig6", "PAPER_FIG6_CROSSOVERS",
    "render_table2", "TABLE2_ROWS",
]
