"""Table II: comparison of design approaches (related work).

A qualitative capability matrix; encoded as data with a renderer so the
repository regenerates every table of the paper.  P = partitioning,
M = mapping, O = optimisation.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.evalharness.render import table


class ApproachRow(NamedTuple):
    approach: str
    partition: bool
    mapping: bool
    optimise: bool
    multiple_targets: bool
    scope: str


TABLE2_ROWS: List[ApproachRow] = [
    ApproachRow("Cross-Platform Frameworks [1]-[3]",
                False, False, False, True, "Full App."),
    ApproachRow("HeteroCL [10]", False, False, True, False, "Kernel"),
    ApproachRow("Halide [11]", False, False, True, False, "Kernel"),
    ApproachRow("Delite [12]", False, False, True, True, "Full App."),
    ApproachRow("MLIR [13]", False, False, True, True, "Full App."),
    ApproachRow("HLS DSE [14]-[16], [19]", False, False, True, False,
                "Kernel"),
    ApproachRow("StreamBlocks [20]", True, False, False, False,
                "Full App."),
    ApproachRow("GenMat [21]", False, True, True, True, "Kernel"),
    ApproachRow("Design-Flow Patterns [5]", True, False, True, False,
                "Full App."),
    ApproachRow("This Work", True, True, True, True, "Full App."),
]


def _check(flag: bool) -> str:
    return "Y" if flag else ""


def render_table2() -> str:
    headers = ["Approach", "P", "M", "O", "Multi-Target", "Scope"]
    body = [[row.approach, _check(row.partition), _check(row.mapping),
             _check(row.optimise), _check(row.multiple_targets), row.scope]
            for row in TABLE2_ROWS]
    return table(headers, body,
                 title="Table II -- design approaches that partition (P), "
                       "map (M) and/or optimise (O)")


def main() -> str:
    text = render_table2()
    print(text)
    return text


if __name__ == "__main__":
    main()
