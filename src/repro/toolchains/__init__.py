"""Simulated compiler toolchains.

The paper's DSE tasks drive real compilers and read their reports:
``dpcpp`` partial compiles produce HLS resource/II estimates (the
Fig. 2 meta-program checks "estimated LUT usage" and stops at 90%),
``hipcc`` reports registers per thread (Rush Larsen's 255-register
kernel is a headline datum in §IV-B.ii), and ``g++`` builds the host
and OpenMP designs.  These modules reproduce the *reports* from the
same design properties that drive the real tools: operation mix and
precision of the kernel body, unroll pragmas, buffer counts.
"""

from repro.toolchains.reports import (
    CPUCompileReport, GPUCompileReport, HLSReport,
)
from repro.toolchains.gcc import GccToolchain
from repro.toolchains.hipcc import HipccToolchain
from repro.toolchains.dpcpp import DpcppToolchain

__all__ = [
    "CPUCompileReport",
    "GPUCompileReport",
    "HLSReport",
    "GccToolchain",
    "HipccToolchain",
    "DpcppToolchain",
]
