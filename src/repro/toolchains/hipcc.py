"""Simulated hipcc toolchain: per-thread register estimation.

The blocksize DSE needs registers-per-thread to compute occupancy (the
paper: "due to the complexity of the ODE solver logic, the GPU design
requires 255 registers per thread, saturating the GTX 1080 but not the
RTX 2080").  Register pressure in a real compile tracks the number of
simultaneously-live scalars; the estimate below grows with local scalar
declarations and math-library calls (each expansion keeps several
intermediates alive) and saturates at the hardware cap of 255, after
which values spill.
"""

from __future__ import annotations

from repro.lang.builtins import MATH_BUILTINS
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import Call, DeclStmt, FunctionDecl
from repro.toolchains.reports import GPUCompileReport

REGISTER_CAP = 255
BASE_REGISTERS = 16
REGS_PER_LOCAL = 2
REGS_PER_MATH_CALL = 4


def count_kernel_pressure(fn: FunctionDecl) -> tuple:
    """(local scalar decls, math calls) in the kernel body."""
    locals_count = 0
    math_calls = 0
    if fn.body is not None:
        for node in fn.body.walk():
            if isinstance(node, DeclStmt):
                locals_count += sum(
                    1 for var in node.decls
                    if not var.ctype.is_pointer and not var.is_array)
            elif isinstance(node, Call) and node.name in MATH_BUILTINS:
                math_calls += 1
    return locals_count, math_calls


def estimate_registers(fn: FunctionDecl) -> int:
    locals_count, math_calls = count_kernel_pressure(fn)
    estimate = (BASE_REGISTERS
                + REGS_PER_LOCAL * locals_count
                + REGS_PER_MATH_CALL * math_calls)
    return min(REGISTER_CAP, estimate)


class HipccToolchain:
    """``hipcc --offload-arch=...`` stand-in."""

    name = "hipcc"

    def compile(self, ast: Ast, kernel_name: str,
                shared_mem_per_block: int = 0) -> GPUCompileReport:
        fn = ast.function(kernel_name)
        locals_count, math_calls = count_kernel_pressure(fn)
        raw = (BASE_REGISTERS + REGS_PER_LOCAL * locals_count
               + REGS_PER_MATH_CALL * math_calls)
        uses_intrinsics = any(
            isinstance(node, Call) and node.name.startswith("__")
            for node in fn.walk())
        return GPUCompileReport(
            success=True,
            registers_per_thread=min(REGISTER_CAP, raw),
            shared_mem_per_block=shared_mem_per_block,
            uses_intrinsics=uses_intrinsics,
            spilled=raw > REGISTER_CAP,
        )
