"""Compile report dataclasses consumed by DSE tasks and models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class CPUCompileReport:
    """g++ compile of a CPU/OpenMP design."""

    success: bool
    openmp_pragmas: int = 0
    warnings: Tuple[str, ...] = ()


@dataclass
class GPUCompileReport:
    """hipcc compile of a HIP kernel (per-thread resource usage)."""

    success: bool
    registers_per_thread: int = 32
    shared_mem_per_block: int = 0
    uses_intrinsics: bool = False
    spilled: bool = False
    warnings: Tuple[str, ...] = ()


@dataclass
class HLSReport:
    """dpcpp (oneAPI HLS) partial-compile estimate for one FPGA design.

    This is the "high-level design report" the Fig. 2 meta-program
    reads: estimated resource usage plus pipelining facts.  ``fitted``
    reflects the device's overmap threshold (90%).
    """

    device: str
    alms_used: float = 0.0
    dsps_used: float = 0.0
    alm_utilization: float = 0.0
    dsp_utilization: float = 0.0
    ii: float = 1.0
    fmax_mhz: float = 0.0
    unroll_factor: int = 1
    #: a variable-bound inner loop serialises the outer pipeline; the
    #: requested outer unroll was ignored
    variable_inner_loop: bool = False
    warnings: Tuple[str, ...] = ()

    @property
    def utilization(self) -> float:
        """The figure the unroll-until-overmap DSE checks (max of pools)."""
        return max(self.alm_utilization, self.dsp_utilization)

    @property
    def fitted(self) -> bool:
        return self.utilization <= 0.90

    @property
    def overmapped(self) -> bool:
        return not self.fitted
