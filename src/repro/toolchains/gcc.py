"""Simulated g++ toolchain (host and OpenMP designs).

The CPU path needs little from the compiler beyond "it builds" and a
count of the OpenMP worksharing constructs; the performance story lives
in :class:`repro.platforms.cpu.CPUModel`.
"""

from __future__ import annotations

from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import ForStmt, RawStmt
from repro.toolchains.reports import CPUCompileReport


class GccToolchain:
    """``g++ -O2 [-fopenmp]`` stand-in."""

    name = "g++"

    def compile(self, ast: Ast, openmp: bool = False) -> CPUCompileReport:
        """Check the design is well-formed; count OMP pragmas."""
        warnings = []
        pragmas = 0
        for node in ast.unit.walk():
            for pragma in getattr(node, "pragmas", []):
                if pragma.keyword == "omp":
                    pragmas += 1
                    if not isinstance(node, ForStmt):
                        warnings.append(
                            "omp parallel for on a non-loop statement")
        if pragmas and not openmp:
            warnings.append("OpenMP pragmas present but -fopenmp not given")
        return CPUCompileReport(
            success=True,
            openmp_pragmas=pragmas,
            warnings=tuple(warnings),
        )
