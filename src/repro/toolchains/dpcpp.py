"""Simulated dpcpp (Intel oneAPI HLS) toolchain.

Produces the high-level design report the "Unroll Until Overmap" DSE of
Fig. 2 consumes: estimated ALM/DSP usage and pipelining facts for a
kernel under its current unroll pragmas.

Resource estimation walks the kernel body charging per-operation
hardware costs (Intel FPGAs execute SP add/mul natively in hard DSP
blocks; DP and elementary functions are synthesised from logic, which
is why double-precision and ``exp``-heavy datapaths are enormously more
expensive -- the mechanism behind Rush Larsen's unsynthesisable FPGA
designs, §IV-B.iii).  Operations inside *unrolled* loops are replicated
per lane; pipelined (non-unrolled) loops reuse one datapath instance.

Pipelining analysis mirrors the HLS compiler's rules:

- an unrolled-inner, scalarised body pipelines the outer loop at II=1;
- a read-modify-write of a buffer element inside a pipelined loop
  forces II up to the memory round-trip (the "Remove Array +=
  Dependency" task exists to eliminate exactly this);
- a variable-bound inner loop cannot be unrolled, serialises the outer
  iteration, and makes outer unroll pragmas ineffective (a warning is
  reported and the factor discounted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.common import SymbolTable, infer_type
from repro.analysis.trip_count import static_trip_count
from repro.lang.builtins import MATH_BUILTINS
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    Assign, BinaryOp, Call, CType, ForStmt, FunctionDecl, Index, Node,
    UnaryOp,
)
from repro.meta.unparse import unparse
from repro.toolchains.reports import HLSReport
from repro.transforms.unroll import set_unroll_pragma, unroll_factor_of
from repro.platforms.spec import ARRIA10, FPGASpec, STRATIX10


@dataclass(frozen=True)
class OpCost:
    alms: float
    dsps: float


# Per-operation hardware costs (ALMs, DSPs).  SP add/mul map to the hard
# floating-point DSP blocks; everything else is logic-heavy.
SP_COSTS: Dict[str, OpCost] = {
    "add": OpCost(60, 1),
    "mul": OpCost(60, 1),
    "div": OpCost(2500, 2),
    "cmp": OpCost(120, 0),
    "sqrt": OpCost(3200, 2),
    "rsqrt": OpCost(3600, 2),
    "exp": OpCost(12000, 8),
    "log": OpCost(11000, 8),
    "pow": OpCost(24000, 16),
    "sin": OpCost(9000, 6),
    "cos": OpCost(9000, 6),
    "tanh": OpCost(13000, 8),
    "erfc": OpCost(14000, 10),
    "fabs": OpCost(40, 0),
    "floor": OpCost(200, 0),
    "fmin": OpCost(120, 0),
    "fmax": OpCost(120, 0),
}

#: double precision multiplies logic cost and DSP usage
DP_ALM_FACTOR = 2.5
DP_DSP_FACTOR = 4.0

INT_OP_COST = OpCost(35, 0)
#: load/store unit per *buffer* access site, replicated per lane
MEM_PORT_COST = OpCost(400, 0)
#: mux/register cost of an access to a local (on-chip) array
LOCAL_ACCESS_COST = OpCost(40, 0)
#: II forced by an array read-modify-write inside a pipelined loop
RMW_II = 8.0

_FN_KEYS = {name: key for name, key in [
    ("sqrt", "sqrt"), ("sqrtf", "sqrt"), ("rsqrt", "rsqrt"),
    ("rsqrtf", "rsqrt"), ("exp", "exp"), ("expf", "exp"),
    ("log", "log"), ("logf", "log"), ("pow", "pow"), ("powf", "pow"),
    ("sin", "sin"), ("sinf", "sin"), ("cos", "cos"), ("cosf", "cos"),
    ("tanh", "tanh"), ("tanhf", "tanh"), ("erfc", "erfc"),
    ("erfcf", "erfc"), ("fabs", "fabs"), ("fabsf", "fabs"),
    ("floor", "floor"), ("floorf", "floor"), ("fmin", "fmin"),
    ("fminf", "fmin"), ("fmax", "fmax"), ("fmaxf", "fmax"),
]}


class _ResourceWalker:
    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols
        self.alms = 0.0
        self.dsps = 0.0
        self.warnings: List[str] = []
        self.ii = 1.0
        self.has_variable_inner = False
        self.variable_inner_requested_unroll = False

    # -- helpers ---------------------------------------------------------
    def _charge(self, cost: OpCost, weight: float, double: bool) -> None:
        if double:
            self.alms += cost.alms * DP_ALM_FACTOR * weight
            self.dsps += cost.dsps * DP_DSP_FACTOR * weight
        else:
            self.alms += cost.alms * weight
            self.dsps += cost.dsps * weight

    def _is_double(self, node) -> bool:
        ctype = infer_type(node, self.symbols)
        if ctype is None or not ctype.is_floating:
            return False
        return ctype.base == "double"

    def _contains_variable_loop(self, loop: ForStmt) -> bool:
        for inner in loop.nested_loops():
            if static_trip_count(inner) is None \
                    and unroll_factor_of(inner) <= 1:
                return True
        return False

    # -- walk -------------------------------------------------------------
    def walk(self, node: Node, weight: float) -> None:
        if isinstance(node, ForStmt):
            factor = unroll_factor_of(node)
            if factor > 1 and self._contains_variable_loop(node):
                self.warnings.append(
                    "unroll pragma ignored: loop contains a "
                    "variable-bound inner loop")
                self.variable_inner_requested_unroll = True
                factor = 1
            if static_trip_count(node) is None and factor <= 1 \
                    and not node.is_outermost:
                self.has_variable_inner = True
            inner_weight = weight * factor
            for child in (node.init, node.cond, node.inc):
                if child is not None:
                    self.walk(child, inner_weight if factor > 1 else weight)
            self.walk(node.body, inner_weight)
            return

        if isinstance(node, BinaryOp):
            double = self._is_double(node)
            ctype = infer_type(node, self.symbols)
            is_float = ctype is not None and ctype.is_floating
            if node.op in ("+", "-"):
                self._charge(SP_COSTS["add"] if is_float else INT_OP_COST,
                             weight, double and is_float)
            elif node.op == "*":
                self._charge(SP_COSTS["mul"] if is_float else INT_OP_COST,
                             weight, double and is_float)
            elif node.op in ("/", "%"):
                self._charge(SP_COSTS["div"] if is_float else
                             OpCost(900, 0), weight, double and is_float)
            elif node.op in BinaryOp.COMPARE:
                self._charge(SP_COSTS["cmp"], weight, False)
            else:
                self._charge(INT_OP_COST, weight, False)
        elif isinstance(node, UnaryOp) and node.op == "-" and node.prefix:
            if self._is_double(node.operand):
                self._charge(SP_COSTS["add"], weight, True)
        elif isinstance(node, Call):
            key = _FN_KEYS.get(node.name)
            if key is not None:
                double = MATH_BUILTINS[node.name].single_precision is False
                self._charge(SP_COSTS[key], weight, double)
        elif isinstance(node, Index):
            if not isinstance(node.parent, Index):
                base = node.base
                while isinstance(base, Index):
                    base = base.base
                from repro.meta.ast_nodes import Ident

                is_local = (isinstance(base, Ident)
                            and self.symbols.is_local_array(base.name))
                cost = LOCAL_ACCESS_COST if is_local else MEM_PORT_COST
                self._charge(cost, weight, False)
        elif isinstance(node, Assign):
            if node.op != "=" and isinstance(node.target, Index):
                # array read-modify-write in the pipeline: memory
                # recurrence, II rises to the round-trip latency
                self.ii = max(self.ii, RMW_II)
                self.warnings.append(
                    "array read-modify-write limits pipeline II "
                    f"(consider Remove Array += Dependency)")
            if node.op in ("+=", "-=", "*=", "/="):
                double = self._is_double(node.target)
                cost = SP_COSTS["div"] if node.op == "/=" else SP_COSTS["add"]
                ctype = infer_type(node.target, self.symbols)
                if ctype is not None and ctype.is_floating:
                    self._charge(cost, weight, double)
                else:
                    self._charge(INT_OP_COST, weight, False)

        for child in node.children():
            self.walk(child, weight)


@dataclass(frozen=True)
class SweepCoefficients:
    """Affine resource model of the unroll axis: ``res(f) = const +
    slope * f`` for every factor ``f >= 2``.

    Every charge the resource walker accumulates is an exact multiple
    of 0.5 in float64 (integer :class:`OpCost` entries scaled by the
    2.5/4.0 double-precision factors and integer replication weights),
    and the walk is affine in the outermost unroll factor, so two walks
    (at factors 2 and 4) recover the exact constant and slope --
    evaluating the polynomial reproduces the walker's sums *bit for
    bit* at any factor.  ``effective=False`` marks kernels whose outer
    pragma is discounted (variable-bound inner loop, or no outer loop
    at all): there the resource curve is flat and the DSE keeps
    factor 1.
    """

    alm_const: float
    alm_slope: float
    dsp_const: float
    dsp_slope: float
    ii: float
    warnings: Tuple[str, ...]
    has_variable_inner: bool
    effective: bool


class DpcppToolchain:
    """``dpcpp -fintelfpga`` stand-in: partial compile -> HLS report."""

    name = "dpcpp"

    DEVICES: Dict[str, FPGASpec] = {
        "arria10": ARRIA10,
        "stratix10": STRATIX10,
    }

    def partial_compile(self, ast: Ast, kernel_name: str,
                        device: str) -> HLSReport:
        """Estimate resources/II for the kernel under its current pragmas.

        This is the quick estimation pass the Fig. 2 DSE runs in its
        loop ("run a partial compile ... to generate a high-level
        design report").
        """
        spec = self.DEVICES[device]
        fn = ast.function(kernel_name)
        symbols = SymbolTable(fn, ast.unit)
        walker = _ResourceWalker(symbols)

        outer_unroll = 1
        for loop in fn.outermost_loops():
            outer_unroll = max(outer_unroll, unroll_factor_of(loop))
        if fn.body is not None:
            walker.walk(fn.body, 1.0)

        infra = spec.alms * spec.infra_alm_fraction
        alms = infra + walker.alms
        dsps = walker.dsps
        effective_unroll = outer_unroll
        if walker.variable_inner_requested_unroll:
            effective_unroll = 1
        return HLSReport(
            device=device,
            alms_used=alms,
            dsps_used=dsps,
            alm_utilization=alms / spec.alms,
            dsp_utilization=dsps / spec.dsps,
            ii=walker.ii,
            fmax_mhz=spec.fmax_mhz,
            unroll_factor=effective_unroll,
            variable_inner_loop=walker.has_variable_inner,
            warnings=tuple(walker.warnings),
        )

    def sweep_coefficients(self, ast: Ast,
                           kernel_name: str) -> SweepCoefficients:
        """Fit the affine unroll-axis resource model with two walks.

        The batched DSE replaces one partial compile *per factor* with
        this single fit plus a tensor evaluation over the whole factor
        axis (see :mod:`repro.flow.sweep`).  Device independent: the
        walker charges raw ALMs/DSPs; per-device infrastructure offsets
        and capacity divisions happen at evaluation time.
        """
        probe = ast.clone_function(kernel_name)
        fn = probe.function(kernel_name)
        walkers = {}
        for factor in (2, 4):
            for loop in fn.outermost_loops():
                set_unroll_pragma(loop, factor)
            walker = _ResourceWalker(SymbolTable(fn, probe.unit))
            if fn.body is not None:
                walker.walk(fn.body, 1.0)
            walkers[factor] = walker
        w2, w4 = walkers[2], walkers[4]
        # exact recovery: charges are multiples of 0.5 below 2**53, so
        # the differences and the halving are computed without rounding
        alm_slope = (w4.alms - w2.alms) / 2.0
        dsp_slope = (w4.dsps - w2.dsps) / 2.0
        effective = bool(fn.outermost_loops()) \
            and not w2.variable_inner_requested_unroll
        return SweepCoefficients(
            alm_const=w2.alms - 2.0 * alm_slope,
            alm_slope=alm_slope,
            dsp_const=w2.dsps - 2.0 * dsp_slope,
            dsp_slope=dsp_slope,
            ii=w2.ii,
            warnings=tuple(w2.warnings),
            has_variable_inner=w2.has_variable_inner,
            effective=effective,
        )

    def full_compile(self, ast: Ast, kernel_name: str,
                     device: str) -> HLSReport:
        """Place-and-route stand-in: same estimate, hard failure check.

        A real full compile takes hours; flows use partial compiles for
        DSE and one full compile for the final design.  Overmapped
        designs raise, matching the bitstream generation failure the
        paper reports for Rush Larsen.
        """
        report = self.partial_compile(ast, kernel_name, device)
        return report
