"""Hierarchical spans with ``contextvars`` propagation.

A :class:`Span` is one timed region of work -- a service job, a flow
task, a dynamic program execution, a profile-cache lookup -- with a
trace id shared by every span of one logical request, a unique span id,
a parent link, monotonic epoch-aligned start/end timestamps, free-form
attributes and point-in-time events.

``span(name, ...)`` is the single instrumentation primitive.  It is a
context manager; entering it makes the new span the *current* span (a
``contextvars.ContextVar``, so nested work nests correctly across
``with`` blocks and asyncio tasks), exiting records the end timestamp,
marks errors, restores the previous current span and hands the finished
span to every registered sink.  When no sink is registered the whole
layer is off: ``span()`` returns a shared no-op object and the hot
paths pay one ``if`` per call.

Spans cross thread- and process-pool boundaries as dicts.  Capture
``current_context()`` on the submitting side, pass the small dict to
the worker, and either open the worker's root span with
``span(..., parent=ctx)`` (threads) or collect the worker's spans and
re-home them with ``adopt_spans(dicts, ctx)`` (processes): orphan roots
are re-parented under the submitting span and every span is rewritten
onto the submitter's trace id.  Span ids carry the producing process id
so merged traces never collide.

Timestamps come from ``perf_counter`` shifted by a process-start epoch
offset: monotonic within a process, comparable across processes to
wall-clock accuracy -- good enough to lay sibling process lanes on one
Chrome-trace timeline.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: aligns the monotonic clock to the epoch, once per process
_EPOCH_OFFSET = time.time() - time.perf_counter()


def now() -> float:
    """Monotonic, epoch-aligned timestamp (seconds)."""
    return _EPOCH_OFFSET + time.perf_counter()


_counter = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}.{next(_counter):x}"


def new_trace_id() -> str:
    import uuid

    return uuid.uuid4().hex[:16]


@dataclass
class SpanEvent:
    """A point-in-time marker inside a span (DSE sweep point, PSA
    decision, cache verdict)."""

    name: str
    t: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "t": self.t, "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanEvent":
        return cls(data["name"], data["t"], dict(data.get("attrs") or {}))


@dataclass
class Span:
    """One timed, attributed region of work."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    t0: float
    end: Optional[float] = None
    status: str = "ok"              # 'ok' | 'error'
    error: Optional[str] = None     # "ExcType: message" when status=error
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    pid: int = field(default_factory=os.getpid)
    tid: int = field(default_factory=threading.get_ident)

    @property
    def wall_s(self) -> float:
        return (self.end if self.end is not None else now()) - self.t0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        self.events.append(SpanEvent(name, now(), attrs))

    def context(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t0": self.t0,
            "end": self.end,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
            "events": [ev.to_dict() for ev in self.events],
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            t0=data["t0"],
            end=data.get("end"),
            status=data.get("status", "ok"),
            error=data.get("error"),
            attrs=dict(data.get("attrs") or {}),
            events=[SpanEvent.from_dict(ev)
                    for ev in data.get("events") or ()],
        )
        span.pid = data.get("pid", span.pid)
        span.tid = data.get("tid", span.tid)
        return span


# -------------------------------------------------------------------------
# Current-span propagation and sinks.
# -------------------------------------------------------------------------
_current: "contextvars.ContextVar[Optional[Span]]" = \
    contextvars.ContextVar("repro_obs_span", default=None)

_sinks: List[Any] = []
_sinks_lock = threading.Lock()


def enabled() -> bool:
    """True when at least one sink will receive finished spans."""
    return bool(_sinks)


def add_sink(sink: Any) -> Any:
    """Register ``sink`` (anything with ``emit(span)``); returns it."""
    with _sinks_lock:
        if sink not in _sinks:
            _sinks.append(sink)
    return sink


def remove_sink(sink: Any) -> None:
    with _sinks_lock:
        try:
            _sinks.remove(sink)
        except ValueError:
            pass


def _emit(span: Span) -> None:
    for sink in list(_sinks):
        try:
            sink.emit(span)
        except Exception:
            pass  # a broken sink must never take down the flow


def current_span() -> Optional[Span]:
    return _current.get()


def current_context() -> Optional[Dict[str, str]]:
    """The (trace_id, span_id) pair to hand across a pool boundary."""
    span = _current.get()
    return span.context() if span is not None else None


class _NullSpan:
    """Shared no-op stand-in when tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        pass

    @property
    def wall_s(self):
        return 0.0


NULL_SPAN = _NullSpan()


class _SpanScope:
    """The context manager returned by :func:`span`."""

    __slots__ = ("_span", "_token")

    def __init__(self, name: str, parent: Optional[Dict[str, str]],
                 attrs: Dict[str, Any]):
        cur = _current.get()
        if parent is not None and parent.get("span_id"):
            trace_id = parent.get("trace_id") or new_trace_id()
            parent_id = parent["span_id"]
        elif cur is not None:
            trace_id = cur.trace_id
            parent_id = cur.span_id
        else:
            trace_id = new_trace_id()
            parent_id = None
        self._span = Span(name=name, trace_id=trace_id,
                          span_id=_new_id(), parent_id=parent_id,
                          t0=now(), attrs=attrs)
        self._token = None

    def __enter__(self) -> Span:
        self._token = _current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end = now()
        if exc_type is not None and span.status == "ok":
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        if self._token is not None:
            _current.reset(self._token)
        _emit(span)
        return False


def span(name: str, parent: Optional[Dict[str, str]] = None,
         **attrs: Any):
    """Open a span (context manager).  No-op while tracing is off."""
    if not _sinks:
        return NULL_SPAN
    return _SpanScope(name, parent, attrs)


def event(name: str, **attrs: Any) -> None:
    """Attach a point-in-time event to the current span, if any."""
    if not _sinks:
        return
    cur = _current.get()
    if cur is not None:
        cur.event(name, **attrs)


# -------------------------------------------------------------------------
# Collection and cross-boundary adoption.
# -------------------------------------------------------------------------
class SpanCollector:
    """Sink keeping finished spans in memory (CLI exports, tests)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.spans: List[Span] = []

    def emit(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def snapshot(self) -> List[Span]:
        with self._lock:
            return list(self.spans)

    def children_of(self, span_id: Optional[str]) -> List[Span]:
        with self._lock:
            return [s for s in self.spans if s.parent_id == span_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)


def adopt_spans(dicts: Iterable[Dict[str, Any]],
                parent: Optional[Dict[str, str]] = None) -> List[Span]:
    """Re-home serialized spans from a worker under ``parent``.

    Roots of the incoming forest (spans whose parent is not in the
    batch) are re-parented onto the submitting span; every span is
    rewritten onto the submitter's trace id so one job's spans share
    one trace.  The rebuilt spans are emitted to the active sinks and
    returned.
    """
    spans = [Span.from_dict(d) for d in dicts]
    ids = {s.span_id for s in spans}
    for s in spans:
        if parent is not None:
            if s.parent_id is None or s.parent_id not in ids:
                s.parent_id = parent.get("span_id")
            trace_id = parent.get("trace_id")
            if trace_id:
                s.trace_id = trace_id
    if _sinks:
        for s in spans:
            _emit(s)
    return spans
