"""Opt-in sampling stack profiler (folded-stack / flamegraph output).

A daemon thread wakes ``hz`` times a second, snapshots every thread's
stack via ``sys._current_frames()`` and folds each stack bottom-up into
a ``file:func;file:func;...`` key.  :meth:`StackProfiler.folded`
renders the counts in the classic folded-stack format ("stack count"
per line) that ``flamegraph.pl`` / speedscope / inferno consume
directly -- a runner serves it at ``/v1/obs/profile``.

Sampling cost is one C-level dict snapshot plus a frame walk per
thread per tick; at the default 50 Hz this is well under 1% on a busy
process (the bench gate in ``benchmarks/test_obs_overhead.py`` holds
it <= 1.10x on a cold fig5).  The profiler's own sampling thread is
excluded from its samples.  Enabled per process with
``REPRO_PROFILE_HZ`` (0 = off, the default).
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Optional


def fold_frame(frame) -> str:
    """Walk a frame's call chain into ``outer;...;inner`` form."""
    parts: List[str] = []
    while frame is not None:
        code = frame.f_code
        parts.append(f"{os.path.basename(code.co_filename)}"
                     f":{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class StackProfiler:
    """Sampling profiler over ``sys._current_frames()`` (thread-safe).

    ``max_stacks`` bounds the distinct-stack table; once full, samples
    landing on *new* stacks are counted in ``dropped`` instead of
    growing memory without limit on a long-lived server.
    """

    def __init__(self, hz: float = 50.0, max_stacks: int = 10000):
        if hz <= 0:
            raise ValueError(f"profiler hz must be > 0, got {hz}")
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self._interval = 1.0 / self.hz
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0
        self.dropped = 0

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self._interval):
            self.sample_once(skip_ident=me)

    def sample_once(self, skip_ident: Optional[int] = None) -> int:
        """Take one sample of every live thread; returns stacks seen."""
        frames = sys._current_frames()
        seen = 0
        with self._lock:
            for ident, frame in frames.items():
                if ident == skip_ident:
                    continue
                key = fold_frame(frame)
                if (key not in self._counts
                        and len(self._counts) >= self.max_stacks):
                    self.dropped += 1
                    continue
                self._counts[key] = self._counts.get(key, 0) + 1
                seen += 1
            self.samples += 1
        return seen

    def folded(self) -> str:
        """Folded-stack text: one ``stack count`` line per stack."""
        with self._lock:
            items = sorted(self._counts.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self.samples = 0
            self.dropped = 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"hz": self.hz, "running": self.running,
                    "samples": self.samples,
                    "stacks": len(self._counts),
                    "dropped": self.dropped}
