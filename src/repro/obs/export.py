"""Span exporters: JSONL event sink, Chrome trace events, ASCII timeline.

- :class:`JsonlSink` streams every finished span as one JSON line --
  attach it from ``$REPRO_TRACE_DIR`` (one file per process, so pool
  workers never interleave writes) or ``--trace-out``-style CLI flags.
- :func:`chrome_trace` converts finished spans into the Chrome
  trace-event format (``{"traceEvents": [...]}`` with complete ``"X"``
  events and instant ``"i"`` events), loadable in Perfetto and
  ``chrome://tracing``; :func:`write_chrome_trace` dumps it to a file.
- :func:`ascii_timeline` renders the span forest as an indented tree
  with proportional duration bars for the CLI.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.span import Span

SpanLike = Union[Span, Dict[str, Any]]


def _as_span(item: SpanLike) -> Span:
    return item if isinstance(item, Span) else Span.from_dict(item)


class JsonlSink:
    """Append-one-JSON-line-per-span sink (thread-safe)."""

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")

    def emit(self, span: Span) -> None:
        line = json.dumps({"type": "span", **span.to_dict()},
                          sort_keys=True)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


def read_jsonl(path: str) -> List[Span]:
    """Load the spans a :class:`JsonlSink` wrote."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") == "span":
                spans.append(Span.from_dict(data))
    return spans


# -------------------------------------------------------------------------
# Chrome trace events (Perfetto / chrome://tracing).
# -------------------------------------------------------------------------
def chrome_trace(spans: Iterable[SpanLike]) -> Dict[str, Any]:
    """Chrome trace-event JSON for ``spans`` (finished spans only).

    Timestamps are rebased to the earliest span start so the trace
    opens at t=0; span/parent/trace ids travel in ``args`` so tools
    (and the CI validator) can rebuild the hierarchy exactly instead
    of inferring it from stack containment.
    """
    resolved = [_as_span(s) for s in spans]
    resolved = [s for s in resolved if s.end is not None]
    base = min((s.t0 for s in resolved), default=0.0)
    events: List[Dict[str, Any]] = []
    for s in sorted(resolved, key=lambda s: s.t0):
        args = {"span_id": s.span_id, "parent_id": s.parent_id,
                "trace_id": s.trace_id, "status": s.status}
        if s.error:
            args["error"] = s.error
        args.update({k: v for k, v in s.attrs.items()
                     if isinstance(v, (str, int, float, bool))
                     or v is None})
        events.append({
            "name": s.name,
            "cat": str(s.attrs.get("kind", "span")),
            "ph": "X",
            "ts": (s.t0 - base) * 1e6,
            "dur": max(0.0, (s.end - s.t0) * 1e6),
            "pid": s.pid,
            "tid": s.tid,
            "args": args,
        })
        for ev in s.events:
            events.append({
                "name": ev.name,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": (ev.t - base) * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": {"span_id": s.span_id,
                         **{k: v for k, v in ev.attrs.items()
                            if isinstance(v, (str, int, float, bool))
                            or v is None}},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[SpanLike], path: str) -> int:
    """Write :func:`chrome_trace` JSON; returns the event count."""
    trace = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return len(trace["traceEvents"])


# -------------------------------------------------------------------------
# ASCII timeline for the CLI.
# -------------------------------------------------------------------------
def span_depth(spans: Sequence[SpanLike]) -> int:
    """Maximum parent-chain depth of the forest (roots are depth 1)."""
    resolved = [_as_span(s) for s in spans]
    parents = {s.span_id: s.parent_id for s in resolved}
    deepest = 0
    for span_id in parents:
        depth, cursor = 0, span_id
        while cursor is not None and depth <= len(parents):
            depth += 1
            cursor = parents.get(cursor)
        deepest = max(deepest, depth)
    return deepest


def ascii_timeline(spans: Iterable[SpanLike], width: int = 32,
                   max_spans: int = 200) -> str:
    """Indented span tree with proportional [##] duration bars."""
    resolved = sorted((_as_span(s) for s in spans), key=lambda s: s.t0)
    resolved = [s for s in resolved if s.end is not None]
    if not resolved:
        return "(no spans recorded)"
    ids = {s.span_id for s in resolved}
    children: Dict[Optional[str], List[Span]] = {}
    for s in resolved:
        parent = s.parent_id if s.parent_id in ids else None
        children.setdefault(parent, []).append(s)
    t_min = min(s.t0 for s in resolved)
    t_max = max(s.end for s in resolved)
    total = max(t_max - t_min, 1e-9)
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        if len(lines) >= max_spans:
            return
        lo = int((span.t0 - t_min) / total * width)
        hi = max(lo + 1, int((span.end - t_min) / total * width))
        bar = " " * lo + "#" * (hi - lo)
        flag = "" if span.status == "ok" else f"  !{span.error}"
        lines.append(f"[{bar:{width}s}] {'  ' * depth}{span.name} "
                     f"({span.wall_s * 1e3:.1f} ms){flag}")
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 0)
    if len(lines) >= max_spans:
        lines.append(f"... ({len(resolved) - max_spans} more spans)")
    return "\n".join(lines)
