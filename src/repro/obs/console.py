"""`repro obs` console: a live fleet dashboard and trace viewer.

``python -m repro obs top`` polls one endpoint pair -- the router's
``/v1/obs/summary`` and its federated ``/metrics`` -- and renders an
ASCII dashboard: fleet totals, SLO burn rates, then one row per runner
(state, in-flight, shed counts, cache hit tiers, breaker state).  The
rendering is a pure function of ``(summary, samples)`` so tests
snapshot it without a terminal; the loop just clears the screen and
re-renders.  Pointing it at a single runner instead of a router also
works -- the summary says ``role: runner`` and the per-runner table
collapses to local metrics.

``python -m repro obs trace <job_id>`` fetches the stitched
Perfetto JSON from ``/v1/obs/traces/{job_id}`` and either writes it to
a file or folds the Chrome events back into spans for the existing
ASCII timeline renderer.
"""

from __future__ import annotations

import json
import re
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.span import Span

#: one Prometheus sample: (metric name, labels, value)
Sample = Tuple[str, Dict[str, str], float]

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> List[Sample]:
    """Parse the Prometheus text format into ``(name, labels, value)``."""
    samples: List[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, brace, rest = line.partition("{")
        if brace:
            label_blob, _, value_part = rest.rpartition("}")
            labels = {m.group(1): (m.group(2)
                                   .replace(r'\"', '"')
                                   .replace(r"\n", "\n")
                                   .replace(r"\\", "\\"))
                      for m in _LABEL_RE.finditer(label_blob)}
        else:
            name, _, value_part = line.partition(" ")
            labels = {}
        try:
            value = float(value_part.strip().split()[0])
        except (ValueError, IndexError):
            continue
        samples.append((name.strip(), labels, value))
    return samples


def metric_sum(samples: Iterable[Sample], name: str,
               **labels: str) -> float:
    """Sum of samples matching ``name`` and the given label subset."""
    total = 0.0
    for sample_name, sample_labels, value in samples:
        if sample_name != name:
            continue
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            total += value
    return total


def label_values(samples: Iterable[Sample], name: str,
                 label: str) -> List[str]:
    """Sorted distinct values of ``label`` across ``name``'s samples."""
    return sorted({sample_labels[label]
                   for sample_name, sample_labels, _ in samples
                   if sample_name == name and label in sample_labels})


# -------------------------------------------------------------------------
# Rendering (pure: summary dict + samples -> text)
# -------------------------------------------------------------------------
def _fmt_count(value: float) -> str:
    if value >= 10000:
        return f"{value / 1000:.0f}k"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _slo_line(slo: Optional[Dict[str, Any]]) -> str:
    if not slo:
        return "slo: (not configured)"
    windows = slo.get("windows") or {}
    parts = [f"{name} {win.get('burn_rate', 0):.2f}x"
             for name, win in sorted(windows.items())]
    flag = "DEGRADED" if slo.get("degraded") else "ok"
    return (f"slo {slo.get('name', '?')}: target "
            f"{slo.get('target', 0):.2%}  burn [{', '.join(parts)}]  "
            f"-> {flag}")


def render_top(summary: Dict[str, Any],
               samples: List[Sample]) -> str:
    """The dashboard frame as plain text (no ANSI)."""
    lines: List[str] = []
    role = summary.get("role", "runner")
    version = summary.get("version", "?")
    lines.append(f"repro fleet console · {role} v{version} · "
                 f"traces {((summary.get('traces') or {}).get('count', 0))}")
    fleet = summary.get("fleet") or {}
    if fleet:
        lines.append(
            f"runners {fleet.get('healthy', 0)}/{fleet.get('total', 0)} "
            f"healthy · placements {fleet.get('placements', 0)} · "
            f"inflight {fleet.get('inflight', 0)} · breaker "
            f"{(fleet.get('breaker') or {}).get('state', '?')}")
    lines.append(_slo_line(summary.get("slo")))
    lines.append("")

    runners = [r.get("url", "?") for r in summary.get("runners") or ()]
    if not runners:
        # single-node mode: everything under one implicit row
        runners = label_values(samples, "repro_server_jobs_inflight",
                               "runner") or [""]
    header = (f"{'runner':<28} {'state':<10} {'infl':>5} {'shed':>5} "
              f"{'hit:mem':>8} {'hit:disk':>9} {'miss':>6} "
              f"{'brkr':>5} {'burn':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    states = {r.get("url"): r for r in summary.get("runners") or ()}

    for runner in runners:
        sel = {"runner": runner} if runner else {}
        state = states.get(runner, {})
        inflight = metric_sum(samples, "repro_server_jobs_inflight",
                              **sel)
        shed = metric_sum(samples, "repro_server_jobs_shed_total", **sel)
        hit_mem = metric_sum(samples, "repro_profile_cache_total",
                             tier="memory", **sel)
        hit_disk = metric_sum(samples, "repro_profile_cache_total",
                              tier="disk", **sel)
        miss = metric_sum(samples, "repro_profile_cache_total",
                          tier="miss", **sel)
        breakers_open = sum(
            1 for name, labels, value in samples
            if name == "repro_breaker_state" and value > 0
            and all(labels.get(k) == v for k, v in sel.items()))
        burn = metric_sum(samples, "repro_slo_burn_rate",
                          window="fast", **sel)
        label = runner or "(local)"
        lines.append(
            f"{label:<28.28} {state.get('state', 'up'):<10} "
            f"{_fmt_count(inflight):>5} {_fmt_count(shed):>5} "
            f"{_fmt_count(hit_mem):>8} {_fmt_count(hit_disk):>9} "
            f"{_fmt_count(miss):>6} {breakers_open:>5} {burn:>6.2f}")

    reroutes = metric_sum(samples, "repro_fleet_reroutes_total")
    steals = metric_sum(samples, "repro_fleet_steals_total")
    dropped = metric_sum(samples, "repro_metrics_dropped_labels_total")
    lines.append("")
    lines.append(f"fleet: reroutes {_fmt_count(reroutes)} · steals "
                 f"{_fmt_count(steals)} · dropped-label obs "
                 f"{_fmt_count(dropped)}")
    return "\n".join(lines)


# -------------------------------------------------------------------------
# Fetch + loop
# -------------------------------------------------------------------------
def fetch_text(server: str, path: str, timeout_s: float = 10.0) -> str:
    with urllib.request.urlopen(server.rstrip("/") + path,
                                timeout=timeout_s) as resp:
        return resp.read().decode("utf-8")


def fetch_json(server: str, path: str,
               timeout_s: float = 10.0) -> Dict[str, Any]:
    return json.loads(fetch_text(server, path, timeout_s))


def run_top(server: str, interval_s: float = 2.0, once: bool = False,
            stream=None) -> int:
    """Poll and render until interrupted; returns an exit code."""
    out = stream or sys.stdout
    while True:
        try:
            summary = fetch_json(server, "/v1/obs/summary")
            samples = parse_prometheus(fetch_text(server, "/metrics"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: cannot reach {server}: {exc}", file=sys.stderr)
            return 1
        frame = render_top(summary, samples)
        if once:
            print(frame, file=out)
            return 0
        # ANSI clear + home, then the frame
        print("\x1b[2J\x1b[H" + frame, file=out, flush=True)
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0


# -------------------------------------------------------------------------
# Trace viewing
# -------------------------------------------------------------------------
def spans_from_chrome(trace: Dict[str, Any]) -> List[Span]:
    """Fold Chrome ``X`` events back into spans for the ASCII timeline."""
    spans: List[Span] = []
    for event in trace.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        t0 = float(event.get("ts", 0.0)) / 1e6
        spans.append(Span(
            name=event.get("name", "?"),
            trace_id=str(args.get("trace_id") or ""),
            span_id=str(args.get("span_id") or ""),
            parent_id=args.get("parent_id"),
            t0=t0,
            end=t0 + float(event.get("dur", 0.0)) / 1e6,
            status=str(args.get("status", "ok")),
            error=args.get("error"),
            attrs={k: v for k, v in args.items()
                   if k not in ("span_id", "parent_id", "trace_id",
                                "status", "error")},
        ))
    return spans


def run_trace(server: str, job_id: str, out_path: Optional[str] = None,
              timeline: bool = False, stream=None) -> int:
    """Fetch the stitched trace for ``job_id`` and show or save it."""
    out = stream or sys.stdout
    try:
        trace = fetch_json(server, f"/v1/obs/traces/{job_id}")
    except urllib.error.HTTPError as exc:
        print(f"error: {exc.code} fetching trace for {job_id}",
              file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"error: cannot reach {server}: {exc}", file=sys.stderr)
        return 1
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=1)
            fh.write("\n")
        print(f"wrote {len(trace.get('traceEvents', ()))} events to "
              f"{out_path}", file=out)
    if timeline or not out_path:
        from repro.obs.export import ascii_timeline
        spans = spans_from_chrome(trace)
        runners = sorted({str(s.attrs.get("runner"))
                          for s in spans if s.attrs.get("runner")})
        print(f"trace for {job_id}: {len(spans)} spans across "
              f"{len(runners) or 1} node(s)"
              + (f" [{', '.join(runners)}]" if runners else ""),
              file=out)
        print(ascii_timeline(spans, width=40), file=out)
    return 0
