"""repro.obs: one observability layer for every subsystem.

Hierarchical :mod:`spans <repro.obs.span>` (trace/span ids, contextvars
nesting, dict serialization across pool boundaries), a process-wide
:mod:`metrics registry <repro.obs.metrics>` (labeled counters / gauges /
histograms with Prometheus text + JSON dumps), and :mod:`exporters
<repro.obs.export>` (JSONL sink, Chrome trace events, ASCII timeline).

Spans are **off by default** -- ``span()`` is a no-op until a sink is
attached -- and metrics are always on (one lock + dict update per
observation).  Setting ``$REPRO_TRACE_DIR`` attaches a per-process
:class:`JsonlSink` at import time, which is how pool worker processes
inherit tracing; CLI flags (``--trace-out``) attach an in-memory
collector via :func:`trace_session` instead.
"""

from __future__ import annotations

import contextlib
import os
from typing import Optional

from repro.obs.collect import (
    SpanBuffer, TraceStore, align_spans, clock_offset, federate_metrics,
    format_traceparent, parse_traceparent,
)
from repro.obs.export import (
    JsonlSink, ascii_timeline, chrome_trace, read_jsonl, span_depth,
    write_chrome_trace,
)
from repro.obs.metrics import (
    REGISTRY, Counter, Gauge, Histogram, MetricsRegistry, get_registry,
)
from repro.obs.profiler import StackProfiler
from repro.obs.slo import SLOTracker
from repro.obs.span import (
    NULL_SPAN, Span, SpanCollector, SpanEvent, add_sink, adopt_spans,
    current_context, current_span, enabled, event, new_trace_id, now,
    remove_sink, span,
)

__all__ = [
    "SpanBuffer", "TraceStore", "align_spans", "clock_offset",
    "federate_metrics", "format_traceparent", "parse_traceparent",
    "JsonlSink", "ascii_timeline", "chrome_trace", "read_jsonl",
    "span_depth", "write_chrome_trace",
    "REGISTRY", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry",
    "StackProfiler", "SLOTracker",
    "NULL_SPAN", "Span", "SpanCollector", "SpanEvent", "add_sink",
    "adopt_spans", "current_context", "current_span", "enabled",
    "event", "new_trace_id", "now", "remove_sink", "span",
    "configure_from_env", "trace_session",
]

_env_sink: Optional[JsonlSink] = None


def configure_from_env() -> Optional[JsonlSink]:
    """Attach a per-process JSONL sink when ``$REPRO_TRACE_DIR`` is set.

    Idempotent; returns the sink (or None).  Pool worker processes
    inherit the environment, so every process of a traced run writes
    its own ``trace-<pid>.jsonl`` under the same directory.
    """
    global _env_sink
    root = os.environ.get("REPRO_TRACE_DIR") or None
    if root is None or _env_sink is not None:
        return _env_sink
    try:
        path = os.path.join(root, f"trace-{os.getpid()}.jsonl")
        _env_sink = add_sink(JsonlSink(path))
    except OSError:
        _env_sink = None  # unwritable dir: tracing stays off
    return _env_sink


@contextlib.contextmanager
def trace_session(trace_out: Optional[str] = None,
                  metrics_out: Optional[str] = None,
                  root: Optional[str] = None, **root_attrs):
    """CLI session: collect spans, then export on exit.

    Attaches an in-memory collector (when ``trace_out`` is given or a
    span-consuming caller needs one), opens an optional root span, and
    on exit writes the Chrome trace to ``trace_out`` and the Prometheus
    text dump to ``metrics_out``.  Yields the collector (or None when
    nothing was requested).
    """
    if trace_out is None and metrics_out is None:
        yield None
        return
    collector: Optional[SpanCollector] = None
    if trace_out is not None:
        collector = add_sink(SpanCollector())
    try:
        if collector is not None and root is not None:
            with span(root, **root_attrs):
                yield collector
        else:
            yield collector
    finally:
        if collector is not None:
            remove_sink(collector)
            write_chrome_trace(collector.snapshot(), trace_out)
        if metrics_out is not None:
            with open(metrics_out, "w", encoding="utf-8") as fh:
                fh.write(REGISTRY.to_prometheus())


configure_from_env()
