"""Fleet-wide span collection: buffers, trace stitching, federation.

The PR 3 span layer stops at a process boundary crossed by *pools*;
this module carries traces across the *wire* so one job submitted to a
fleet yields ONE stitched trace:

- **traceparent format** -- :func:`format_traceparent` /
  :func:`parse_traceparent` encode a span context as a W3C-style
  ``00-<trace_id>-<span_id>-01`` header value.  ``ReproClient`` and the
  fleet router stamp it onto outgoing requests; the runner adopts it as
  the parent of its ``service.job`` span.  A malformed value parses to
  ``None`` -- the receiver opens a fresh root rather than failing.
- :class:`SpanBuffer` -- a bounded ring-buffer sink every server
  process attaches.  Finished spans are kept as dicts with a monotonic
  sequence number; ``GET /v1/obs/spans?since=N`` drains increments, so
  a central collector can tail a runner without resetting it.
- :class:`TraceStore` -- the router-side aggregate: span batches pulled
  from runners land here keyed by trace id, with the runner's clock
  offset applied (:func:`clock_offset`) and a ``runner`` attribute
  stamped on, so ``GET /v1/obs/traces/{job_id}`` can serve one
  Perfetto-loadable file whose timestamps order correctly across nodes.
- :func:`clock_offset` -- round-trip midpoint offset: the router reads
  the runner's ``now`` next to its own send/receive times and maps
  runner timestamps onto the router clock (probe RTTs are milliseconds
  on a LAN, so the midpoint is accurate to well under the span
  durations being aligned).
- :func:`federate_metrics` -- merges N runners' Prometheus text dumps
  into the router's own, injecting a ``runner`` label on every sample,
  so one scrape of the router sees the whole fleet.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict, deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.span import Span

#: ``00-<trace>-<span>-01`` -- trace ids are hex, span ids are the
#: pid-prefixed ``<pid hex>.<counter hex>`` form (no dashes in either)
_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{8,32})-([0-9a-f]+(?:\.[0-9a-f]+)?)-[0-9a-f]{2}$")


def format_traceparent(ctx: Optional[Dict[str, str]]) -> Optional[str]:
    """``{"trace_id", "span_id"}`` -> header value (None passes through)."""
    if not ctx or not ctx.get("trace_id") or not ctx.get("span_id"):
        return None
    return f"00-{ctx['trace_id']}-{ctx['span_id']}-01"


def parse_traceparent(value: Optional[str]) -> Optional[Dict[str, str]]:
    """Header value -> span context; malformed values parse to None."""
    if not value or not isinstance(value, str):
        return None
    match = _TRACEPARENT_RE.match(value.strip())
    if match is None:
        return None
    return {"trace_id": match.group(1), "span_id": match.group(2)}


def clock_offset(t_sent: float, t_received: float,
                 remote_now: float) -> float:
    """Seconds to ADD to a remote timestamp to land on the local clock.

    ``remote_now`` was sampled on the remote between ``t_sent`` and
    ``t_received`` (local clock); the round-trip midpoint is the best
    local estimate of when that sample was taken.
    """
    midpoint = (t_sent + t_received) / 2.0
    return midpoint - remote_now


class SpanBuffer:
    """Bounded in-memory span sink with a drain cursor (thread-safe).

    Every finished span is stored as ``(seq, dict)``; ``since(cursor)``
    returns the spans with ``seq > cursor`` plus the newest sequence
    number, so remote collectors poll incrementally.  When the buffer
    overflows, the oldest spans fall off and ``dropped`` counts them --
    a slow collector loses history, never blocks the hot path.
    """

    def __init__(self, cap: int = 4096):
        if cap < 1:
            raise ValueError(f"SpanBuffer cap must be >= 1, got {cap}")
        self.cap = cap
        self._lock = threading.Lock()
        self._items: "deque[Tuple[int, Dict[str, Any]]]" = deque()
        self._seq = 0
        self.dropped = 0

    def emit(self, span: Span) -> None:
        with self._lock:
            self._seq += 1
            self._items.append((self._seq, span.to_dict()))
            while len(self._items) > self.cap:
                self._items.popleft()
                self.dropped += 1

    def since(self, cursor: int = 0
              ) -> Tuple[List[Dict[str, Any]], int]:
        """``(span dicts with seq > cursor, newest seq)``."""
        with self._lock:
            spans = [dict(item) for seq, item in self._items
                     if seq > cursor]
            return spans, self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


def align_spans(dicts: Iterable[Dict[str, Any]], offset_s: float,
                runner: Optional[str] = None) -> List[Dict[str, Any]]:
    """Shift span timestamps onto the collector's clock.

    Returns new dicts with ``t0``/``end``/event times shifted by
    ``offset_s`` and (when given) a ``runner`` attribute stamped on, so
    a stitched trace records which node produced each span.
    """
    out: List[Dict[str, Any]] = []
    for data in dicts:
        span = dict(data)
        span["t0"] = data["t0"] + offset_s
        if data.get("end") is not None:
            span["end"] = data["end"] + offset_s
        if runner is not None:
            span["attrs"] = {**(data.get("attrs") or {}), "runner": runner}
        if data.get("events"):
            span["events"] = [{**ev, "t": ev["t"] + offset_s}
                              for ev in data["events"]]
        out.append(span)
    return out


class TraceStore:
    """Per-trace-id span aggregate with LRU eviction (thread-safe).

    The router ingests every span batch it pulls -- its own buffer and
    each runner's -- and serves whole traces back out.  Bounded two
    ways: at most ``max_traces`` distinct trace ids (least recently
    *updated* evicted first) and ``max_spans_per_trace`` spans each
    (further spans of a runaway trace are counted, not kept).
    """

    def __init__(self, max_traces: int = 512,
                 max_spans_per_trace: int = 8192):
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = \
            OrderedDict()
        self._seen: Dict[str, set] = {}       # trace_id -> span ids
        self.dropped = 0

    def ingest(self, dicts: Iterable[Dict[str, Any]],
               offset_s: float = 0.0,
               runner: Optional[str] = None) -> int:
        """Align and store a span batch; returns how many were added.

        Re-ingesting the same span id for a trace is a no-op, so the
        on-demand pull a trace read performs never duplicates what the
        background pull loop already collected.
        """
        added = 0
        for span in align_spans(dicts, offset_s, runner):
            trace_id = span.get("trace_id")
            span_id = span.get("span_id")
            if not trace_id or not span_id:
                continue
            with self._lock:
                bucket = self._traces.get(trace_id)
                if bucket is None:
                    bucket = self._traces[trace_id] = []
                    self._seen[trace_id] = set()
                    while len(self._traces) > self.max_traces:
                        evicted, _ = self._traces.popitem(last=False)
                        self._seen.pop(evicted, None)
                else:
                    self._traces.move_to_end(trace_id)
                if span_id in self._seen[trace_id]:
                    continue
                if len(bucket) >= self.max_spans_per_trace:
                    self.dropped += 1
                    continue
                self._seen[trace_id].add(span_id)
                bucket.append(span)
                added += 1
        return added

    def spans(self, trace_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(s) for s in self._traces.get(trace_id, ())]

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# -------------------------------------------------------------------------
# Prometheus federation.
# -------------------------------------------------------------------------
def _label_samples(lines: Iterable[str], label: str,
                   value: str) -> Iterable[Tuple[str, str]]:
    """Yield ``(family_header_or_None, sample)`` with the label injected."""
    escaped = value.replace("\\", r"\\").replace('"', r'\"')
    pair = f'{label}="{escaped}"'
    for line in lines:
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            yield line, ""
            continue
        name, sep, rest = line.partition("{")
        if sep:
            yield "", f"{name}{{{pair},{rest}"
        else:
            name, _, sample_value = line.partition(" ")
            yield "", f"{name}{{{pair}}} {sample_value}"


def federate_metrics(own_text: str,
                     peers: Iterable[Tuple[str, str]]) -> str:
    """Merge peer Prometheus dumps into ``own_text``.

    Every peer sample gains a ``runner="<name>"`` label; families are
    merged so each ``# TYPE`` header appears once (first writer wins --
    the fleet runs one version, so the families agree).  The router's
    own samples stay unlabeled: they describe the fleet, not a node.
    """
    # family name -> (help line, type line, [sample lines])
    families: "OrderedDict[str, List[Any]]" = OrderedDict()
    order_hint = 0

    def family_for(name: str) -> List[Any]:
        nonlocal order_hint
        fam = families.get(name)
        if fam is None:
            fam = families[name] = [None, None, []]
        return fam

    def base_name(sample: str) -> str:
        name = sample.split("{", 1)[0].split(" ", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                # histogram series belong to the family without suffix
                # when that family was TYPEd; otherwise keep as-is
                stem = name[:-len(suffix)]
                if stem in families:
                    return stem
        return name

    def feed(lines: Iterable[str], runner: Optional[str]) -> None:
        pending = (_label_samples(lines, "runner", runner)
                   if runner is not None
                   else ((ln, "") if ln.startswith("#") else ("", ln)
                         for ln in (l.rstrip() for l in lines) if ln))
        current: Optional[str] = None
        for header, sample in pending:
            if header:
                parts = header.split()
                if header.startswith("# TYPE ") and len(parts) >= 4:
                    current = parts[2]
                    fam = family_for(current)
                    if fam[1] is None:
                        fam[1] = header
                elif header.startswith("# HELP ") and len(parts) >= 3:
                    fam = family_for(parts[2])
                    if fam[0] is None:
                        fam[0] = header
                continue
            if sample:
                family_for(base_name(sample) if current is None
                           else _owning_family(sample, current))[2] \
                    .append(sample)

    def _owning_family(sample: str, current: str) -> str:
        name = sample.split("{", 1)[0].split(" ", 1)[0]
        if name == current or (name.startswith(current) and
                               name[len(current):] in
                               ("_bucket", "_sum", "_count")):
            return current
        return name

    feed(own_text.splitlines(), None)
    for runner, text in peers:
        feed(text.splitlines(), runner)
    lines: List[str] = []
    for _name, (help_line, type_line, samples) in families.items():
        if not samples:
            continue
        if help_line:
            lines.append(help_line)
        if type_line:
            lines.append(type_line)
        lines.extend(samples)
    return "\n".join(lines) + "\n"
