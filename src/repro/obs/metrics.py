"""MetricsRegistry: labeled counters, gauges and histograms.

One process-wide :data:`REGISTRY` (plus per-test instances) holds every
metric the instrumented layers emit: execution-engine mode counts,
profile-cache tier hits, scheduler queue waits, service cache/dedup
events.  Metrics are cheap -- one lock acquisition and a dict update
per observation -- so they stay on even when span tracing is off.

Two dump formats:

- :meth:`MetricsRegistry.to_prometheus` -- the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, ``name{label=
  "value"} sample`` lines, ``_bucket``/``_sum``/``_count`` series for
  histograms);
- :meth:`MetricsRegistry.to_dict` -- a JSON-compatible nested dict.

Pull-style sources (e.g. ``ProfileCacheStats``, which predates this
layer and is still mutated directly) register a *collector* callback;
collectors run at dump time and refresh gauges from the source of
truth, so the dump is consistent without touching the source's hot
path.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets (seconds-flavoured, Prometheus-style)
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                   10.0, 60.0)


def _escape(value: Any) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Metric:
    """Shared bookkeeping: name, help text, label names, sample store."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...], lock: threading.Lock):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        #: cardinality guard, set by the owning registry (None = off)
        self.label_cap: Optional[int] = None
        self._on_drop: Optional[Callable[[str], None]] = None

    def _admit(self, key: Tuple[str, ...], values: Dict) -> bool:
        """Whether a new label set may be stored (call with lock held).

        Federation multiplies label sets (every runner URL becomes a
        label value); past the cap, observations on *new* label sets
        are dropped and counted rather than growing without bound.
        """
        if (key in values or self.label_cap is None
                or len(values) < self.label_cap):
            return True
        if self._on_drop is not None:
            self._on_drop(self.name)
        return False

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_suffix(self, key: Tuple[str, ...],
                      extra: Optional[Tuple[str, str]] = None) -> str:
        pairs = list(zip(self.labelnames, key))
        if extra is not None:
            pairs.append(extra)
        if not pairs:
            return ""
        body = ",".join(f'{name}="{_escape(value)}"'
                        for name, value in pairs)
        return "{" + body + "}"


class Counter(_Metric):
    """Monotonically increasing labeled counter."""

    kind = "counter"

    def __init__(self, name, help_text, labelnames, lock):
        super().__init__(name, help_text, labelnames, lock)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, n: float = 1, **labels: Any) -> None:
        if n < 0:
            raise ValueError(f"{self.name}: counters only go up ({n})")
        key = self._key(labels)
        with self._lock:
            if not self._admit(key, self._values):
                return
            self._values[key] = self._values.get(key, 0.0) + n

    def get(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}{self._label_suffix(key)} "
                f"{_format_value(value)}" for key, value in items]

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            items = sorted(self._values.items())
        return {"type": self.kind, "help": self.help,
                "labels": list(self.labelnames),
                "samples": [{"labels": dict(zip(self.labelnames, key)),
                             "value": value} for key, value in items]}


class Gauge(Counter):
    """Labeled gauge: settable, can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            if not self._admit(key, self._values):
                return
            self._values[key] = float(value)

    def inc(self, n: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            if not self._admit(key, self._values):
                return
            self._values[key] = self._values.get(key, 0.0) + n

    def dec(self, n: float = 1, **labels: Any) -> None:
        self.inc(-n, **labels)


class Histogram(_Metric):
    """Labeled histogram with cumulative Prometheus buckets."""

    kind = "histogram"

    def __init__(self, name, help_text, labelnames, lock,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text, labelnames, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"{self.name}: need at least one bucket")
        # key -> [per-bucket counts..., +Inf count, sum]
        self._values: Dict[Tuple[str, ...], List[float]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            row = self._values.get(key)
            if row is None:
                if not self._admit(key, self._values):
                    return
                row = [0.0] * (len(self.buckets) + 2)
                self._values[key] = row
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    row[i] += 1
            row[-2] += 1          # +Inf / total count
            row[-1] += value      # sum

    def count(self, **labels: Any) -> float:
        with self._lock:
            row = self._values.get(self._key(labels))
        return row[-2] if row else 0.0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            row = self._values.get(self._key(labels))
        return row[-1] if row else 0.0

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted((k, list(v)) for k, v in self._values.items())
        lines: List[str] = []
        for key, row in items:
            for bound, count in zip(self.buckets, row):
                suffix = self._label_suffix(key, ("le", repr(bound)))
                lines.append(f"{self.name}_bucket{suffix} "
                             f"{_format_value(count)}")
            inf = self._label_suffix(key, ("le", "+Inf"))
            lines.append(f"{self.name}_bucket{inf} "
                         f"{_format_value(row[-2])}")
            plain = self._label_suffix(key)
            lines.append(f"{self.name}_sum{plain} "
                         f"{_format_value(row[-1])}")
            lines.append(f"{self.name}_count{plain} "
                         f"{_format_value(row[-2])}")
        return lines

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            items = sorted((k, list(v)) for k, v in self._values.items())
        return {"type": self.kind, "help": self.help,
                "labels": list(self.labelnames),
                "buckets": list(self.buckets),
                "samples": [{"labels": dict(zip(self.labelnames, key)),
                             "bucket_counts": row[:-2],
                             "count": row[-2], "sum": row[-1]}
                            for key, row in items]}


#: where the cardinality guard records what it refused to store
DROPPED_METRIC = "repro_metrics_dropped_labels_total"

#: default per-metric distinct-label-set cap (fleet federation can
#: multiply label sets by the runner count; past this, drop + count)
DEFAULT_LABEL_CAP = 1000


class MetricsRegistry:
    """Name -> metric map with idempotent get-or-create accessors."""

    def __init__(self, label_cap: Optional[int] = DEFAULT_LABEL_CAP):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self.label_cap = label_cap

    def _note_dropped(self, metric_name: str) -> None:
        self.counter(
            DROPPED_METRIC,
            "Observations dropped by the label-cardinality guard.",
            ("metric",)).inc(metric=metric_name)

    # -- get-or-create -------------------------------------------------
    def _get(self, cls, name: str, help_text: str,
             labelnames: Tuple[str, ...], **kwargs) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, tuple(labelnames),
                             threading.Lock(), **kwargs)
                if name != DROPPED_METRIC:
                    # the drop counter itself is exempt: its label
                    # cardinality is the metric count, already bounded
                    metric.label_cap = self.label_cap
                    metric._on_drop = self._note_dropped
                self._metrics[name] = metric
                return metric
        if type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        if metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}")
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get(Counter, name, help_text, tuple(labelnames))

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get(Gauge, name, help_text, tuple(labelnames))

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help_text, tuple(labelnames),
                         buckets=buckets)

    def register_collector(
            self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """``fn(registry)`` runs before every dump (pull-style sources)."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def unregister_collector(
            self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Detach a collector (e.g. an SLO tracker on server shutdown)."""
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            try:
                fn(self)
            except Exception:
                pass  # a broken collector must not break the dump

    # -- dumps ---------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format."""
        self._collect()
        with self._lock:
            metrics = sorted(self._metrics.values(),
                             key=lambda m: m.name)
        lines: List[str] = []
        for metric in metrics:
            samples = metric.samples()
            if not samples:
                continue
            if metric.help:
                lines.append(f"# HELP {metric.name} "
                             f"{_escape(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        self._collect()
        with self._lock:
            metrics = sorted(self._metrics.values(),
                             key=lambda m: m.name)
        return {metric.name: metric.as_dict() for metric in metrics}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def reset(self) -> None:
        """Drop every metric and collector (tests)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()


#: the process-wide registry every instrumented layer records into
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
