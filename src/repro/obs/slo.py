"""Multi-window SLO burn-rate tracking.

An SLO here is "`target` of requests are *good*", where a request is
bad when it returned a 5xx **or** exceeded the latency threshold.  The
error budget is ``1 - target``; the **burn rate** over a window is the
observed bad fraction divided by that budget:

    burn = bad / (good + bad) / (1 - target)

burn == 1 means the budget is being spent exactly as provisioned; a
99% target burning at 14 exhausts a 30-day budget in ~2 days.  The
standard multi-window alerting trick applies: a short window catches
the spike, a long window proves it is sustained, and only when BOTH
exceed the threshold is the service flagged *degraded* -- a transient
blip clears the fast window within minutes, while a real incident
keeps both hot.

:class:`SLOTracker` keeps per-second good/bad buckets (pruned past the
longest window, so memory is bounded at ``max_window_s`` entries) and
publishes ``repro_slo_*`` gauges through a registry collector.  The
degraded flag is surfaced in ``/healthz`` payloads as advisory data --
it does NOT flip the top-level health status, because the router parks
non-``ok`` runners as unroutable and an SLO burn is exactly when
removing capacity makes things worse.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

#: short window proves "now", long window proves "sustained"
DEFAULT_WINDOWS: Dict[str, float] = {"fast": 300.0, "slow": 3600.0}

#: burn >= this in BOTH windows => degraded (a 99% SLO burning at 10x
#: spends a 30-day budget in 3 days -- page-worthy, not blip-worthy)
DEFAULT_BURN_THRESHOLD = 10.0


class SLOTracker:
    """Rolling good/bad request accounting with windowed burn rates.

    ``now_fn`` is injectable so tests can drive the clock; defaults to
    ``time.monotonic`` (windows only ever need *relative* time).
    """

    def __init__(self, name: str, target: float = 0.99,
                 latency_s: float = 5.0,
                 windows: Optional[Mapping[str, float]] = None,
                 burn_threshold: float = DEFAULT_BURN_THRESHOLD,
                 now_fn: Optional[Callable[[], float]] = None):
        if not 0.0 < target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {target}")
        if latency_s <= 0:
            raise ValueError(f"SLO latency must be > 0, got {latency_s}")
        self.name = name
        self.target = target
        self.latency_s = latency_s
        self.windows = dict(DEFAULT_WINDOWS if windows is None
                            else windows)
        if not self.windows:
            raise ValueError("SLOTracker needs at least one window")
        self.burn_threshold = burn_threshold
        self._now = now_fn or time.monotonic
        self._max_window = max(self.windows.values())
        self._lock = threading.Lock()
        # whole-second bucket -> [good, bad]
        self._buckets: Dict[int, list] = {}
        self.total_good = 0
        self.total_bad = 0
        self._registry: Optional[MetricsRegistry] = None

    # -- recording -----------------------------------------------------
    def observe(self, ok: bool, latency_s: float = 0.0) -> None:
        """Record one request: bad = error OR over the latency budget."""
        bad = (not ok) or (latency_s > self.latency_s)
        sec = int(self._now())
        with self._lock:
            row = self._buckets.get(sec)
            if row is None:
                row = self._buckets[sec] = [0, 0]
                self._prune(sec)
            row[1 if bad else 0] += 1
            if bad:
                self.total_bad += 1
            else:
                self.total_good += 1

    def _prune(self, now_sec: int) -> None:
        # called with the lock held, only when a new second opens
        horizon = now_sec - int(self._max_window) - 1
        if len(self._buckets) > self._max_window + 2:
            for sec in [s for s in self._buckets if s < horizon]:
                del self._buckets[sec]

    # -- reading -------------------------------------------------------
    def counts(self, window_s: float) -> tuple:
        """``(good, bad)`` over the trailing ``window_s`` seconds."""
        horizon = self._now() - window_s
        good = bad = 0
        with self._lock:
            for sec, (g, b) in self._buckets.items():
                if sec >= horizon:
                    good += g
                    bad += b
        return good, bad

    def burn_rate(self, window: str) -> float:
        """Bad fraction over the window, in units of the error budget."""
        good, bad = self.counts(self.windows[window])
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.target)

    @property
    def degraded(self) -> bool:
        """True when EVERY window burns at or above the threshold."""
        return all(self.burn_rate(w) >= self.burn_threshold
                   for w in self.windows)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state for ``/healthz`` and ``/v1/obs/summary``."""
        windows = {}
        for name, seconds in sorted(self.windows.items()):
            good, bad = self.counts(seconds)
            windows[name] = {
                "seconds": seconds,
                "good": good,
                "bad": bad,
                "burn_rate": round(self.burn_rate(name), 4),
            }
        return {
            "name": self.name,
            "target": self.target,
            "latency_s": self.latency_s,
            "burn_threshold": self.burn_threshold,
            "degraded": self.degraded,
            "windows": windows,
            "total_good": self.total_good,
            "total_bad": self.total_bad,
        }

    # -- metrics bridge ------------------------------------------------
    def attach(self, registry: MetricsRegistry) -> "SLOTracker":
        """Publish ``repro_slo_*`` gauges via a dump-time collector."""
        self._registry = registry
        registry.register_collector(self._collect)
        return self

    def detach(self) -> None:
        if self._registry is not None:
            self._registry.unregister_collector(self._collect)
            self._registry = None

    def _collect(self, registry: MetricsRegistry) -> None:
        burn = registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per SLO window.",
            ("slo", "window"))
        degraded = registry.gauge(
            "repro_slo_degraded",
            "1 when every burn-rate window exceeds the threshold.",
            ("slo",))
        requests = registry.gauge(
            "repro_slo_window_requests",
            "Requests observed in the SLO window.",
            ("slo", "window"))
        bad_g = registry.gauge(
            "repro_slo_window_bad",
            "Bad requests (error or over-latency) in the SLO window.",
            ("slo", "window"))
        for window, seconds in self.windows.items():
            good, bad = self.counts(seconds)
            burn.set(self.burn_rate(window), slo=self.name, window=window)
            requests.set(good + bad, slo=self.name, window=window)
            bad_g.set(bad, slo=self.name, window=window)
        degraded.set(1.0 if self.degraded else 0.0, slo=self.name)
