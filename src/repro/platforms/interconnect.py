"""Host-accelerator transfer models (PCIe gen3, pinned DMA, USM).

The Fig. 3 strategy's very first test compares estimated transfer time
(``T_data_trnsfr``) against hotspot CPU time; the GPU path's "Employ HIP
Pinned Memory" task and the Stratix10 path's "Zero-Copy Data Transfer"
task change which of these models applies to a design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.spec import InterconnectSpec, PCIE_GEN3


@dataclass
class TransferModel:
    """Predicts host<->device transfer times for a design."""

    spec: InterconnectSpec = PCIE_GEN3

    def _time(self, nbytes: float, bw_gbs: float, transfers: int) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / (bw_gbs * 1e9) + self.spec.latency_s * max(1, transfers)

    def pageable_time(self, nbytes: float, transfers: int = 1) -> float:
        """Staged copies through pageable host memory (the default)."""
        return self._time(nbytes, self.spec.pageable_bw_gbs, transfers)

    def pinned_time(self, nbytes: float, transfers: int = 1) -> float:
        """DMA from page-locked host memory (HIP pinned-memory task)."""
        return self._time(nbytes, self.spec.pinned_bw_gbs, transfers)

    def usm_time(self, bytes_in: float, bytes_out: float) -> float:
        """Zero-copy (USM) host-memory streaming time for one pass."""
        return (bytes_in / (self.spec.usm_read_bw_gbs * 1e9)
                + bytes_out / (self.spec.usm_write_bw_gbs * 1e9))

    def estimate(self, nbytes: float, pinned: bool, transfers: int = 1) -> float:
        return (self.pinned_time(nbytes, transfers) if pinned
                else self.pageable_time(nbytes, transfers))
