"""Power and energy models (paper §IV-D).

"Similar analysis could be used to identify the most energy efficient
implementation for a specific application."  This module adds the
missing axis: per-device power draw and per-design energy.

Power is modelled as idle board power plus a dynamic share scaled by
utilisation -- the standard first-order accelerator power model.  The
utilisation proxy is the achieved fraction of the device's roofline on
the hotspot (busy devices burn dynamic power; a 1.1x-speedup FPGA
design mostly idles its fabric clocked but unstressed, which is why
FPGAs win energy comparisons even when losing raw performance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class PowerSpec:
    """Board-level power envelope of one device."""

    name: str
    idle_w: float      # powered, clocked, no work
    peak_w: float      # fully utilised (board TDP)

    def draw_w(self, utilization: float) -> float:
        """Power at a given utilisation in [0, 1]."""
        u = min(1.0, max(0.0, utilization))
        return self.idle_w + (self.peak_w - self.idle_w) * u


#: board envelopes (vendor TDPs; idle from typical measurements)
POWER_SPECS: Dict[str, PowerSpec] = {
    # a 32-core socket running one app (not the whole node)
    "epyc7543": PowerSpec("AMD EPYC 7543", idle_w=90.0, peak_w=225.0),
    "gtx1080ti": PowerSpec("GeForce GTX 1080 Ti", idle_w=55.0, peak_w=250.0),
    "rtx2080ti": PowerSpec("GeForce RTX 2080 Ti", idle_w=55.0, peak_w=260.0),
    # PAC cards: far lower envelopes -- the FPGA energy story
    "arria10": PowerSpec("Intel PAC Arria10", idle_w=25.0, peak_w=66.0),
    "stratix10": PowerSpec("Intel PAC Stratix10", idle_w=35.0, peak_w=100.0),
}

#: default utilisation per target class when no finer estimate exists
DEFAULT_UTILIZATION = {
    "cpu-omp": 0.95,       # all cores busy
    "gpu-hip": 0.75,       # roofline-limited kernels
    "fpga-oneapi": 0.60,   # pipelined fabric
}


def power_spec(device: str) -> PowerSpec:
    try:
        return POWER_SPECS[device]
    except KeyError:
        raise KeyError(f"no power spec for device {device!r}") from None


def energy_joules(device: str, time_s: float,
                  utilization: Optional[float] = None,
                  kind: Optional[str] = None) -> float:
    """Energy of one hotspot execution on ``device``.

    ``utilization`` overrides the per-target default (callers with a
    model-derived utilisation, e.g. FPGA designs bounded by DDR, pass
    the achieved fraction).
    """
    if utilization is None:
        utilization = DEFAULT_UTILIZATION.get(kind or "", 0.8)
    return power_spec(device).draw_w(utilization) * time_s


def energy_efficiency_ratio(device_a: str, time_a: float,
                            device_b: str, time_b: float,
                            util_a: Optional[float] = None,
                            util_b: Optional[float] = None) -> float:
    """Energy(A)/Energy(B) for the same computation."""
    return energy_joules(device_a, time_a, util_a) \
        / energy_joules(device_b, time_b, util_b)
