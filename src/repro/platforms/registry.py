"""Registry of the evaluation platforms (paper §IV-A)."""

from __future__ import annotations

from typing import Dict, Union

from repro.platforms.cpu import CPUModel
from repro.platforms.fpga import FPGAModel
from repro.platforms.gpu import GPUModel
from repro.platforms.spec import (
    ARRIA10, EPYC_7543, GTX_1080_TI, RTX_2080_TI, STRATIX10,
)

PlatformModel = Union[CPUModel, GPUModel, FPGAModel]

#: canonical short names used by flows, designs and the eval harness
PLATFORMS: Dict[str, PlatformModel] = {
    "epyc7543": CPUModel(EPYC_7543),
    "gtx1080ti": GPUModel(GTX_1080_TI),
    "rtx2080ti": GPUModel(RTX_2080_TI),
    "arria10": FPGAModel(ARRIA10),
    "stratix10": FPGAModel(STRATIX10),
}

GPU_DEVICES = ("gtx1080ti", "rtx2080ti")
FPGA_DEVICES = ("arria10", "stratix10")
CPU_DEVICE = "epyc7543"


def get_platform(name: str) -> PlatformModel:
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; known: {sorted(PLATFORMS)}") from None
