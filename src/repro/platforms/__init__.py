"""Hardware platform models.

Simulated equivalents of the paper's evaluation hardware:

- AMD EPYC 7543 32-core CPU (single-thread reference + OpenMP scaling);
- NVIDIA GeForce GTX 1080 Ti (Pascal) and RTX 2080 Ti (Turing) GPUs with
  an occupancy-based roofline model;
- Intel PAC Arria10 and Stratix10 FPGAs with a pipeline
  (depth + II * trips / unroll) model and LUT/DSP/BRAM resource pools;
- PCIe / pinned / zero-copy (USM) interconnect transfer models.

Models consume a :class:`~repro.platforms.profile.KernelProfile`
distilled from the dynamic+static analyses of the reference kernel,
plus per-design metadata (unroll factor, blocksize, precision), and
return predicted hotspot execution times.  Device constants live in
:mod:`repro.platforms.spec` and come from public datasheets, with
documented efficiency factors (see EXPERIMENTS.md for calibration).
"""

from repro.platforms.spec import (
    CPUSpec, FPGASpec, GPUSpec, EPYC_7543, GTX_1080_TI, RTX_2080_TI,
    ARRIA10, STRATIX10,
)
from repro.platforms.profile import KernelProfile
from repro.platforms.cpu import CPUModel
from repro.platforms.gpu import GPUModel, OccupancyResult
from repro.platforms.fpga import FPGAModel
from repro.platforms.interconnect import TransferModel
from repro.platforms.power import (
    POWER_SPECS, PowerSpec, energy_joules, power_spec,
)
from repro.platforms.registry import PLATFORMS, get_platform

__all__ = [
    "CPUSpec", "GPUSpec", "FPGASpec",
    "EPYC_7543", "GTX_1080_TI", "RTX_2080_TI", "ARRIA10", "STRATIX10",
    "KernelProfile",
    "CPUModel", "GPUModel", "OccupancyResult", "FPGAModel",
    "TransferModel",
    "PLATFORMS", "get_platform",
    "PowerSpec", "POWER_SPECS", "power_spec", "energy_joules",
]
