"""CPU performance model (EPYC 7543): the reference baseline and the
OpenMP multi-thread target.

Roofline-style: execution time is the maximum of compute time (FP work
over the sustained FLOP rate, precision-split) and memory time (scalar
traffic over the relevant bandwidth).  The reference time of the
*unoptimised single-thread run* produced here is the denominator of
every speedup in Fig. 5.

OpenMP scaling follows the paper's observation that the five benchmarks
are embarrassingly parallel and reach speedups "close to the number of
cores": compute scales with ``threads x omp_efficiency``; memory scales
with threads while the working set stays cache-resident (the EPYC 7543
carries a 256 MB L3) and saturates at socket DRAM bandwidth beyond.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.profile import KernelProfile
from repro.platforms.spec import CPUSpec, EPYC_7543


@dataclass
class CPUModel:
    spec: CPUSpec = EPYC_7543

    # -- building blocks ---------------------------------------------------
    def _compute_time(self, profile: KernelProfile, threads: int = 1) -> float:
        sp = profile.total_flops * profile.sp_fraction
        dp = profile.total_flops - sp
        rate_scale = max(1, threads) * (self.spec.omp_efficiency
                                        if threads > 1 else 1.0)
        sp_rate = self.spec.st_gflops_sp * 1e9 * rate_scale
        dp_rate = self.spec.st_gflops_dp * 1e9 * rate_scale
        # integer/address arithmetic shares the scalar pipelines
        int_rate = 2.0 * self.spec.st_gflops_dp * 1e9 * rate_scale
        return sp / sp_rate + dp / dp_rate + profile.int_ops / int_rate

    def _memory_time(self, profile: KernelProfile, threads: int = 1) -> float:
        if profile.mem_bytes <= 0:
            return 0.0
        cache_resident = profile.working_set_bytes <= self.spec.llc_bytes
        if threads <= 1:
            bw = self.spec.st_cache_bw_gbs if cache_resident \
                else min(self.spec.st_cache_bw_gbs, self.spec.dram_bw_gbs)
            return profile.mem_bytes / (bw * 1e9)
        scaled = self.spec.st_cache_bw_gbs * threads * self.spec.omp_efficiency
        bw = scaled if cache_resident else min(scaled, self.spec.dram_bw_gbs)
        return profile.mem_bytes / (bw * 1e9)

    # -- public predictions ----------------------------------------------
    def reference_time(self, profile: KernelProfile) -> float:
        """Hotspot time of the unoptimised single-thread reference (s)."""
        return max(self._compute_time(profile, 1),
                   self._memory_time(profile, 1))

    def omp_time(self, profile: KernelProfile, threads: int) -> float:
        """Hotspot time of the OpenMP design with ``threads`` threads (s)."""
        threads = max(1, min(threads, self.spec.cores))
        if threads == 1:
            return self.reference_time(profile)
        body = max(self._compute_time(profile, threads),
                   self._memory_time(profile, threads))
        overhead = self.spec.omp_overhead_s * max(1, profile.kernel_calls)
        return body + overhead

    def omp_speedup(self, profile: KernelProfile, threads: int) -> float:
        return self.reference_time(profile) / self.omp_time(profile, threads)

    # -- batched predictions ----------------------------------------------
    def omp_time_batch(self, profile: KernelProfile, threads):
        """:meth:`omp_time` over a thread-count axis as one tensor op.

        Entry ``i`` is bit-identical to ``omp_time(profile,
        threads[i])``: the broadcast expressions mirror the scalar
        compute/memory rooflines operation for operation, and the
        ``threads == 1`` entries take the scalar reference time.
        """
        import numpy as np

        t = np.minimum(np.maximum(1, np.asarray(threads, dtype=np.int64)),
                       self.spec.cores)
        rate_scale = t * self.spec.omp_efficiency
        sp = profile.total_flops * profile.sp_fraction
        dp = profile.total_flops - sp
        sp_rate = self.spec.st_gflops_sp * 1e9 * rate_scale
        dp_rate = self.spec.st_gflops_dp * 1e9 * rate_scale
        int_rate = 2.0 * self.spec.st_gflops_dp * 1e9 * rate_scale
        compute = sp / sp_rate + dp / dp_rate + profile.int_ops / int_rate

        if profile.mem_bytes <= 0:
            memory = np.zeros(t.shape)
        else:
            cache_resident = (profile.working_set_bytes
                              <= self.spec.llc_bytes)
            scaled = self.spec.st_cache_bw_gbs * t * self.spec.omp_efficiency
            bw = scaled if cache_resident \
                else np.minimum(scaled, self.spec.dram_bw_gbs)
            memory = profile.mem_bytes / (bw * 1e9)

        overhead = self.spec.omp_overhead_s * max(1, profile.kernel_calls)
        multi = np.maximum(compute, memory) + overhead
        return np.where(t == 1, self.reference_time(profile), multi)
