"""GPU performance model (GTX 1080 Ti / RTX 2080 Ti), occupancy-based
roofline.

The model reproduces the first-order effects the paper's GPU results
hinge on (§IV-B.ii):

- **occupancy**: registers per thread and blocksize bound resident
  blocks per SM exactly as in the CUDA occupancy calculator; Rush
  Larsen's 255-register kernel "saturates the GTX 1080 but not the RTX
  2080" because Pascal exposes 2048 threads/SM against Turing's 1024 --
  the same register file covers twice the occupancy target on Turing.
- **device saturation**: kernels with fewer work items than the device
  can hold leave SMs idle (Bezier: "neither GPU is fully saturated").
- **issue model**: Pascal serialises FP, INT and special-function work
  on shared issue ports; Turing co-issues INT32 alongside FP32 and has
  independent SFU issue.  Index-heavy, ``rsqrt``-heavy kernels like
  N-Body are exactly where the RTX 2080 Ti more than doubles the GTX
  1080 Ti (751x vs 337x).
- **precision**: GeForce double precision runs at 1/32 of SP rate, so
  kernels the SP transforms cannot demote (AdPredictor's probit
  updates) perform equally poorly on both GeForce parts (10x / 10x).
- **cache-aware memory roofline**: per-buffer accounting -- L2-resident
  buffers (Bezier's 1.5 KB control grid, K-Means' centroid table) cost
  only compulsory traffic; streaming buffers pay coalesced bandwidth;
  data-dependent gathers (AdPredictor's weight tables) pay gather
  bandwidth.  Shared-memory staging further cuts re-read traffic of
  non-resident buffers.
- **transfer amortisation**: applications that invoke the hotspot
  repeatedly with device-resident data (simulation steps, k-means
  iterations) pay the PCIe copies once across those invocations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import NamedTuple, Optional

from repro.platforms.interconnect import TransferModel
from repro.platforms.profile import KernelProfile
from repro.platforms.spec import GPUSpec


class OccupancyResult(NamedTuple):
    blocks_per_sm: int
    active_threads_per_sm: int
    occupancy: float
    limited_by: str  # 'threads' | 'registers' | 'blocks' | 'shared'


class BatchOccupancy(NamedTuple):
    """Vectorized :class:`OccupancyResult`: one entry per blocksize."""

    blocks_per_sm: "object"          # int64 ndarray
    active_threads_per_sm: "object"  # int64 ndarray
    occupancy: "object"              # float64 ndarray
    limited_by: "object"             # array of limiter names (str)


@dataclass
class GPUDesignPoint:
    """Per-design knobs layered on the reference profile."""

    blocksize: int = 256
    registers_per_thread: int = 32
    shared_mem_per_block: int = 0
    pinned_memory: bool = False
    uses_shared_buffering: bool = False
    uses_intrinsics: bool = False
    spilled: bool = False  # register allocation exceeded the 255 cap
    sp_fraction: Optional[float] = None  # overrides the profile's mix


#: global-memory traffic reduction from shared-memory tiling of
#: redundantly-loaded non-resident operands
SHARED_MEM_REUSE = 16.0

#: cost discount on math-library work when specialised intrinsics
#: (__expf, __fsqrt_rn, ...) replace libm calls
INTRINSIC_DISCOUNT = 0.5

#: slowdown when register demand exceeds the 255-register cap and
#: values spill to local memory (Rush Larsen's kernels)
SPILL_PENALTY = 3.8


@dataclass
class GPUModel:
    spec: GPUSpec
    transfer: TransferModel = field(default_factory=TransferModel)

    # -- occupancy ---------------------------------------------------------
    def occupancy(self, blocksize: int, registers_per_thread: int,
                  shared_mem_per_block: int = 0) -> OccupancyResult:
        """CUDA-occupancy-calculator resident-block computation."""
        spec = self.spec
        blocksize = max(spec.warp_size, min(blocksize, 1024))
        limits = {
            "threads": spec.max_threads_per_sm // blocksize,
            "blocks": spec.max_blocks_per_sm,
        }
        regs_per_block = blocksize * max(1, registers_per_thread)
        limits["registers"] = spec.registers_per_sm // regs_per_block
        if shared_mem_per_block > 0:
            limits["shared"] = spec.shared_mem_per_sm // shared_mem_per_block
        limiter = min(limits, key=lambda k: limits[k])
        blocks = max(0, limits[limiter])
        active = blocks * blocksize
        return OccupancyResult(
            blocks, active, active / spec.max_threads_per_sm, limiter)

    def occupancy_batch(self, blocksizes, registers_per_thread: int,
                        shared_mem_per_block: int = 0) -> BatchOccupancy:
        """:meth:`occupancy` over a whole blocksize axis at once.

        Element-wise bit-identical to the scalar path: the limit rows
        stack in the same order the scalar dict declares them, and
        ``argmin`` keeps the first row on ties exactly as ``min`` over
        dict keys keeps the first-inserted key.
        """
        import numpy as np

        spec = self.spec
        b = np.maximum(spec.warp_size,
                       np.minimum(np.asarray(blocksizes, dtype=np.int64),
                                  1024))
        names = ["threads", "blocks", "registers"]
        regs_per_block = b * max(1, registers_per_thread)
        rows = [spec.max_threads_per_sm // b,
                np.full(b.shape, spec.max_blocks_per_sm, dtype=np.int64),
                spec.registers_per_sm // regs_per_block]
        if shared_mem_per_block > 0:
            names.append("shared")
            rows.append(np.full(
                b.shape, spec.shared_mem_per_sm // shared_mem_per_block,
                dtype=np.int64))
        stacked = np.stack(rows)
        limiter = np.argmin(stacked, axis=0)
        blocks = np.maximum(0, np.min(stacked, axis=0))
        active = blocks * b
        return BatchOccupancy(
            blocks, active, active / spec.max_threads_per_sm,
            np.asarray(names, dtype=object)[limiter])

    # -- compute roofline ---------------------------------------------------
    def _compute_time(self, profile: KernelProfile,
                      point: GPUDesignPoint) -> float:
        spec = self.spec
        sp_fraction = (point.sp_fraction if point.sp_fraction is not None
                       else profile.sp_fraction)
        builtin = profile.builtin_flops
        if point.uses_intrinsics:
            builtin *= INTRINSIC_DISCOUNT
        arith = profile.flops

        sp_rate = spec.peak_gflops_sp * 1e9 * spec.compute_efficiency
        dp_rate = spec.peak_gflops_dp * 1e9 * spec.compute_efficiency
        sfu_rate = sp_rate * spec.sfu_ratio

        # FMA-pipe time: single-precision arithmetic
        fp_time = arith * sp_fraction / sp_rate
        # SFU time: single-precision special functions
        sfu_time = builtin * sp_fraction / sfu_rate
        # DP unit: everything not demoted (always a serialised port)
        dp_time = (arith + builtin) * (1.0 - sp_fraction) / dp_rate
        # INT32 pipe: address arithmetic
        int_time = profile.int_ops / sp_rate

        if spec.int_fp_coissue:
            # Turing: FP32, INT32 and SFU issue concurrently
            raw = max(fp_time, int_time, sfu_time) + dp_time
        else:
            # Pascal: shared issue bandwidth serialises the pipes
            raw = fp_time + int_time + sfu_time + dp_time

        occ = self.occupancy(point.blocksize, point.registers_per_thread,
                             point.shared_mem_per_block)
        if occ.occupancy <= 0:
            return math.inf

        # Utilisation: throughput saturates once enough threads are
        # resident to hide latency (the occupancy knee).  Threads are
        # bounded both by the work available (device saturation) and by
        # what occupancy lets the SMs hold (register pressure etc.).
        resident = occ.active_threads_per_sm * spec.sm_count
        knee_capacity = (spec.max_threads_per_sm * spec.sm_count
                         * spec.occupancy_knee)
        work_items = max(1, profile.outer_iterations)
        effective = min(work_items, resident)
        utilization = min(1.0, effective / knee_capacity)
        if utilization <= 0:
            return math.inf

        time = raw / utilization
        # Dependence chains in inner loops are latency-bound when the
        # work runs on the scarce DP units (4/SM on GeForce): too few
        # in-flight operations to hide the deep DP latency.  SP chains
        # unroll into enough independent lanes to stay hidden.
        if profile.dependent_inner_loops and sp_fraction < 0.5:
            time /= spec.serial_chain_efficiency
        if point.spilled:
            time *= SPILL_PENALTY
        return time

    # -- memory roofline ----------------------------------------------------
    def _memory_time(self, profile: KernelProfile,
                     point: GPUDesignPoint) -> float:
        spec = self.spec
        coalesced = spec.dram_bw_gbs * 1e9 * spec.coalesced_bw_efficiency
        gather = spec.dram_bw_gbs * 1e9 * spec.gather_bw_efficiency

        if not profile.buffer_profiles:
            # no per-buffer data: fall back to aggregate traffic
            eff_bw = (coalesced * (1.0 - profile.gather_fraction)
                      + gather * profile.gather_fraction)
            nbytes = profile.mem_bytes
            if point.uses_shared_buffering:
                nbytes /= SHARED_MEM_REUSE
            return nbytes / eff_bw if eff_bw else math.inf

        total = 0.0
        calls = max(1, profile.kernel_calls)
        for buf in profile.buffer_profiles:
            if buf.is_gather and buf.nbytes > spec.l2_bytes:
                total += buf.traffic_bytes / gather
            elif buf.nbytes <= spec.l2_bytes:
                # L2-resident: compulsory traffic only (one pass per call)
                total += min(buf.traffic_bytes, buf.nbytes * calls) / coalesced
            else:
                traffic = buf.traffic_bytes
                if point.uses_shared_buffering \
                        and traffic > buf.nbytes * calls:
                    traffic /= SHARED_MEM_REUSE  # staged re-reads
                total += traffic / coalesced
        return total

    # -- public predictions -------------------------------------------------
    def kernel_time(self, profile: KernelProfile,
                    point: GPUDesignPoint) -> float:
        """Device-side hotspot time, excluding transfers (s)."""
        body = max(self._compute_time(profile, point),
                   self._memory_time(profile, point))
        launches = max(1, profile.kernel_calls)
        return body + self.spec.launch_overhead_s * launches

    def transfer_time(self, profile: KernelProfile,
                      point: GPUDesignPoint) -> float:
        """PCIe time, amortised over device-resident hotspot invocations."""
        raw = self.transfer.estimate(
            profile.transfer_bytes, pinned=point.pinned_memory,
            transfers=max(1, profile.kernel_calls))
        return raw / max(1, profile.transfer_amortization)

    def design_time(self, profile: KernelProfile,
                    point: GPUDesignPoint) -> float:
        """End-to-end hotspot-region time of a HIP CPU+GPU design (s)."""
        return self.kernel_time(profile, point) \
            + self.transfer_time(profile, point)

    # -- batched predictions ------------------------------------------------
    def design_time_batch(self, profile: KernelProfile,
                          point: GPUDesignPoint, blocksizes):
        """:meth:`design_time` over a blocksize axis as one tensor op.

        ``point`` supplies every non-blocksize knob; the result's entry
        ``i`` is bit-identical to ``design_time`` of ``point`` with
        ``blocksize=blocksizes[i]``.  Only the occupancy-driven
        utilisation term varies along the axis: the issue-model time,
        the memory roofline and the PCIe transfer are blocksize-
        independent scalars computed once through the *scalar* code
        paths, so the broadcast arithmetic mirrors the scalar
        operation order exactly.
        """
        import numpy as np

        spec = self.spec
        sp_fraction = (point.sp_fraction if point.sp_fraction is not None
                       else profile.sp_fraction)
        builtin = profile.builtin_flops
        if point.uses_intrinsics:
            builtin *= INTRINSIC_DISCOUNT
        arith = profile.flops

        sp_rate = spec.peak_gflops_sp * 1e9 * spec.compute_efficiency
        dp_rate = spec.peak_gflops_dp * 1e9 * spec.compute_efficiency
        sfu_rate = sp_rate * spec.sfu_ratio

        fp_time = arith * sp_fraction / sp_rate
        sfu_time = builtin * sp_fraction / sfu_rate
        dp_time = (arith + builtin) * (1.0 - sp_fraction) / dp_rate
        int_time = profile.int_ops / sp_rate
        if spec.int_fp_coissue:
            raw = max(fp_time, int_time, sfu_time) + dp_time
        else:
            raw = fp_time + int_time + sfu_time + dp_time

        occ = self.occupancy_batch(blocksizes, point.registers_per_thread,
                                   point.shared_mem_per_block)
        resident = occ.active_threads_per_sm * spec.sm_count
        knee_capacity = (spec.max_threads_per_sm * spec.sm_count
                         * spec.occupancy_knee)
        work_items = max(1, profile.outer_iterations)
        effective = np.minimum(work_items, resident)
        utilization = np.minimum(1.0, effective / knee_capacity)
        live = utilization > 0
        compute = raw / np.where(live, utilization, 1.0)
        if profile.dependent_inner_loops and sp_fraction < 0.5:
            compute = compute / spec.serial_chain_efficiency
        if point.spilled:
            compute = compute * SPILL_PENALTY
        compute = np.where(live & (occ.occupancy > 0), compute, math.inf)

        memory = self._memory_time(profile, point)
        launches = max(1, profile.kernel_calls)
        kernel = np.maximum(compute, memory) \
            + spec.launch_overhead_s * launches
        return kernel + self.transfer_time(profile, point)
