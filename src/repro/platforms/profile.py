"""Kernel profiles: the workload characterisation every model consumes.

A :class:`KernelProfile` distils the reference kernel's behaviour from
the target-independent analyses (Fig. 4's A rows) into the quantities
the platform models need: dynamic operation counts, the parallel outer
iteration count, the data-transfer footprint, precision mix, access
pattern, and dependence structure.  It describes the *reference*
computation; per-design metadata (unroll factor, blocksize, SP
transforms applied) is layered on top by the models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class BufferProfile:
    """Per-buffer behaviour of the kernel (drives cache-aware rooflines)."""

    name: str
    nbytes: float          # buffer size (residency check against caches)
    traffic_bytes: float   # scalar loads+stores issued against it
    is_gather: bool        # accessed through data-dependent subscripts
    direction: str         # 'in' | 'out' | 'inout'


@dataclass
class KernelProfile:
    """Workload characterisation of one extracted hotspot kernel."""

    kernel_name: str

    # -- dynamic counts over the whole hotspot region (reference run) ---
    flops: float = 0.0            # arithmetic FP ops (weighted; div = 4)
    builtin_flops: float = 0.0    # math-library FP ops (cost-table weighted)
    int_ops: float = 0.0
    mem_bytes: float = 0.0        # scalar loads+stores issued (bytes)
    kernel_calls: int = 1         # dynamic invocations of the kernel

    # -- parallel structure --------------------------------------------
    outer_iterations: int = 1     # total iterations of the parallel loop
    #: product of static trip counts of the fixed inner nest (1 if none)
    inner_fixed_product: int = 1
    #: the kernel's outer loop is parallel (dependence analysis)
    outer_parallel: bool = True
    #: some inner loop has dependences of any kind -- the Fig. 3
    #: "inner loops w/ deps?" test
    dependent_inner_loops: bool = False
    #: an inner loop carries a *true* (non-reduction) dependence chain;
    #: threads execute it latency-bound (GPU penalty)
    serial_inner_chain: bool = False
    #: every dependent inner loop has fixed bounds small enough to
    #: fully unroll ("can fully unroll?" of Fig. 3)
    inner_fully_unrollable: bool = True

    # -- data movement (whole-buffer transfer footprint) ------------------
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    #: total bytes of all kernel buffers (working set)
    working_set_bytes: float = 0.0
    #: per-buffer traffic/size/pattern records
    buffer_profiles: Tuple[BufferProfile, ...] = ()
    #: hotspot invocations the deployed application performs with
    #: device-resident data (k-means iterations, simulation timesteps);
    #: one-off buffer transfers amortise across them
    transfer_amortization: int = 1

    # -- precision / access pattern (static) ------------------------------
    sp_fraction: float = 0.0      # share of FP work in single precision
    gather_fraction: float = 0.0  # share of memory traffic that is
                                  # data-dependent (uncoalesced gather)

    # -- register-pressure proxies (hipcc model inputs) -------------------
    local_scalars: int = 0
    math_calls: int = 0

    @property
    def total_flops(self) -> float:
        return self.flops + self.builtin_flops

    @property
    def flops_per_iteration(self) -> float:
        return self.total_flops / max(1, self.outer_iterations)

    @property
    def bytes_per_iteration(self) -> float:
        return self.mem_bytes / max(1, self.outer_iterations)

    @property
    def arithmetic_intensity(self) -> float:
        """Dynamic FLOPs per byte of scalar memory traffic."""
        return self.total_flops / self.mem_bytes if self.mem_bytes else float("inf")

    @property
    def transfer_bytes(self) -> float:
        return self.bytes_in + self.bytes_out

    def with_precision(self, sp_fraction: float) -> "KernelProfile":
        """Profile after the SP transforms changed the precision mix."""
        return replace(self, sp_fraction=sp_fraction)

    def scaled(self, factor: float,
               fixed_buffers: Tuple[str, ...] = ()) -> "KernelProfile":
        """Profile of the same kernel on a workload ``factor``x larger.

        Work (FLOPs, traffic, iterations) scales linearly; structure
        flags are size-independent.  Buffers named in ``fixed_buffers``
        keep their *size* (lookup tables, centroid/control grids whose
        extent does not grow with the problem) while their traffic still
        scales; the in/out transfer footprint and working set are
        recomputed from the scaled buffers.
        """
        buffers = tuple(
            BufferProfile(
                b.name,
                b.nbytes if b.name in fixed_buffers else b.nbytes * factor,
                b.traffic_bytes * factor,
                b.is_gather,
                b.direction)
            for b in self.buffer_profiles)
        if buffers:
            bytes_in = sum(b.nbytes for b in buffers
                           if b.direction in ("in", "inout"))
            bytes_out = sum(b.nbytes for b in buffers
                            if b.direction in ("out", "inout"))
            working = sum(b.nbytes for b in buffers)
        else:
            bytes_in = self.bytes_in * factor
            bytes_out = self.bytes_out * factor
            working = self.working_set_bytes * factor
        return replace(
            self,
            flops=self.flops * factor,
            builtin_flops=self.builtin_flops * factor,
            int_ops=self.int_ops * factor,
            mem_bytes=self.mem_bytes * factor,
            outer_iterations=int(self.outer_iterations * factor),
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            working_set_bytes=working,
            buffer_profiles=buffers,
        )
