"""Device specifications.

Datasheet-derived constants for the five devices of the paper's
evaluation (§IV-A).  Architectural parameters (SM counts, register
files, resource pools, channel counts) are public figures; *efficiency*
fields are the documented calibration knobs -- they absorb everything a
first-order analytical model cannot capture (instruction mix, scheduler
behaviour, memory controller efficiency) and are recorded per device in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class CPUSpec:
    """A multi-core CPU (host and OpenMP target)."""

    name: str
    cores: int
    clock_ghz: float
    #: sustained single-thread FLOP rate for scalar/lightly-vectorised
    #: double-precision code produced by ``g++ -O2`` (GFLOP/s)
    st_gflops_dp: float
    #: single-precision single-thread rate (GFLOP/s)
    st_gflops_sp: float
    #: single-thread sustained load/store bandwidth, cache-resident (GB/s)
    st_cache_bw_gbs: float
    #: whole-socket sustained DRAM bandwidth (GB/s)
    dram_bw_gbs: float
    #: last-level cache capacity (bytes); working sets below this scale
    #: with cores instead of saturating DRAM
    llc_bytes: int
    #: parallel efficiency of an embarrassingly-parallel OpenMP loop
    omp_efficiency: float
    #: fixed OpenMP fork/join + scheduling overhead per parallel region (s)
    omp_overhead_s: float


@dataclass(frozen=True)
class GPUSpec:
    """A discrete GPU driven through HIP."""

    name: str
    architecture: str              # 'pascal' | 'turing'
    sm_count: int
    clock_ghz: float
    cuda_cores_per_sm: int
    #: peak single-precision rate (GFLOP/s)
    peak_gflops_sp: float
    #: peak double-precision rate (GFLOP/s) -- 1/32 of SP on GeForce
    peak_gflops_dp: float
    #: special-function-unit rate relative to SP FMA rate
    sfu_ratio: float
    dram_bw_gbs: float
    registers_per_sm: int          # 32-bit registers
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm: int         # bytes
    l2_bytes: int                  # device L2 capacity
    warp_size: int
    #: True when INT pipes co-issue with FP (Turing concurrent execution)
    int_fp_coissue: bool
    #: sustained fraction of peak for well-shaped kernels
    compute_efficiency: float
    #: DRAM efficiency for unit-stride (coalesced) access
    coalesced_bw_efficiency: float
    #: DRAM efficiency for data-dependent (gather) access
    gather_bw_efficiency: float
    #: occupancy at which throughput saturates (latency fully hidden)
    occupancy_knee: float
    #: kernel launch overhead (s)
    launch_overhead_s: float
    #: ILP efficiency multiplier for kernels dominated by serial
    #: dependence chains in inner loops (latency-bound threads)
    serial_chain_efficiency: float


@dataclass(frozen=True)
class FPGASpec:
    """An FPGA accelerator card programmed through oneAPI HLS."""

    name: str
    family: str                    # 'arria10' | 'stratix10'
    alms: int                      # adaptive logic modules ("LUT" budget)
    dsps: int
    bram_kbits: int
    fmax_mhz: float                # achievable kernel clock
    ddr_bw_gbs: float              # local DDR bandwidth
    #: DDR efficiency for data-dependent gathers
    gather_bw_efficiency: float
    #: fraction of ALMs consumed by static infrastructure (board support
    #: package, DDR/PCIe controllers, kernel scaffolding)
    infra_alm_fraction: float
    #: device supports zero-copy host memory over USM (Stratix10 only)
    supports_usm: bool
    #: utilisation threshold above which a design is "overmapped"
    #: (the Fig. 2 DSE stops at 90%)
    overmap_threshold: float = 0.90


@dataclass(frozen=True)
class InterconnectSpec:
    """Host-accelerator link (PCIe gen3 x16 for all four cards)."""

    pageable_bw_gbs: float = 6.0   # staged copies through pageable memory
    pinned_bw_gbs: float = 12.0    # DMA from pinned host memory
    #: zero-copy host reads burst/prefetch well over PCIe...
    usm_read_bw_gbs: float = 11.0
    #: ...but fine-grained zero-copy writes flush poorly
    usm_write_bw_gbs: float = 3.5
    latency_s: float = 10e-6       # per-transfer setup latency


# ======================================================================
# The paper's devices (§IV-A)
# ======================================================================

EPYC_7543 = CPUSpec(
    name="AMD EPYC 7543",
    cores=32,
    clock_ghz=2.8,
    st_gflops_dp=5.0,
    st_gflops_sp=7.0,
    st_cache_bw_gbs=24.0,
    dram_bw_gbs=160.0,
    llc_bytes=256 * 1024 * 1024,
    omp_efficiency=0.91,
    omp_overhead_s=8e-6,
)

GTX_1080_TI = GPUSpec(
    name="GeForce GTX 1080 Ti",
    architecture="pascal",
    sm_count=28,
    clock_ghz=1.58,
    cuda_cores_per_sm=128,
    peak_gflops_sp=11340.0,
    peak_gflops_dp=354.0,
    sfu_ratio=0.25,
    dram_bw_gbs=484.0,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=96 * 1024,
    l2_bytes=2816 * 1024,
    warp_size=32,
    int_fp_coissue=False,
    compute_efficiency=0.40,
    coalesced_bw_efficiency=0.80,
    gather_bw_efficiency=0.25,
    occupancy_knee=0.25,
    launch_overhead_s=5e-6,
    serial_chain_efficiency=0.35,
)

RTX_2080_TI = GPUSpec(
    name="GeForce RTX 2080 Ti",
    architecture="turing",
    sm_count=68,
    clock_ghz=1.545,
    cuda_cores_per_sm=64,
    peak_gflops_sp=13450.0,
    peak_gflops_dp=420.0,
    sfu_ratio=0.20,
    dram_bw_gbs=616.0,
    registers_per_sm=65536,
    max_threads_per_sm=1024,
    max_blocks_per_sm=16,
    shared_mem_per_sm=64 * 1024,
    l2_bytes=5632 * 1024,
    warp_size=32,
    int_fp_coissue=True,   # Turing: concurrent INT32 + FP32 pipes
    compute_efficiency=0.50,
    coalesced_bw_efficiency=0.80,
    gather_bw_efficiency=0.25,
    occupancy_knee=0.35,
    launch_overhead_s=5e-6,
    serial_chain_efficiency=0.35,
)

ARRIA10 = FPGASpec(
    name="Intel PAC Arria10 GX1150",
    family="arria10",
    alms=427_200,
    dsps=1518,
    bram_kbits=54_260,
    fmax_mhz=230.0,
    ddr_bw_gbs=34.0,
    gather_bw_efficiency=0.50,
    infra_alm_fraction=0.20,
    supports_usm=False,
)

STRATIX10 = FPGASpec(
    name="Intel PAC Stratix10 GX2800",
    family="stratix10",
    alms=933_120,
    dsps=5760,
    bram_kbits=229_000,
    fmax_mhz=330.0,
    ddr_bw_gbs=76.8,
    gather_bw_efficiency=0.50,
    infra_alm_fraction=0.15,
    supports_usm=True,
)

PCIE_GEN3 = InterconnectSpec()
