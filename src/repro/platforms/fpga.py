"""FPGA performance model (PAC Arria10 / Stratix10), pipeline-based.

An HLS design executes the kernel's outer loop as a pipeline:

    cycles = depth + outer_iterations * II_effective / unroll

- With every dependent inner loop fully unrolled and array ``+=``
  recurrences scalarised, the outer loop pipelines at II=1; "Unroll
  Until Overmap" then replicates lanes until resources run out.
- A variable-bound inner loop cannot be unrolled; the outer iteration
  then occupies ~inner_trips cycles and lane replication is ineffective
  (this is why the paper's N-Body FPGA designs manage only 1.1x/1.4x:
  one pair per cycle at kernel fmax, nothing more).
- Streamed operands pass DDR once per kernel call; data-dependent
  gathers (AdPredictor's weight-table lookups) pay reduced bandwidth
  efficiency, which is what makes its FPGA designs bandwidth-bound and
  the Stratix10 (2.3x the DDR bandwidth of the Arria10) the winner.
- Zero-copy USM designs (Stratix10 only) skip the bulk PCIe transfer and
  instead stream host memory at the USM rate, overlapped with compute.

Resource fitting is delegated to the simulated
:mod:`repro.toolchains.dpcpp` compiler's report; this model turns a
*fitted* design point into time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.platforms.interconnect import TransferModel
from repro.platforms.profile import KernelProfile
from repro.platforms.spec import FPGASpec

#: pipeline fill depth in cycles (datapath registers + memory latency)
PIPELINE_DEPTH = 400.0


@dataclass
class FPGADesignPoint:
    """Per-design knobs layered on the reference profile."""

    unroll_factor: int = 1
    #: outer-loop initiation interval once inner loops are handled;
    #: 1 for fully-unrolled/scalarised bodies
    ii: float = 1.0
    #: average trip count of a *variable* inner loop serialising the
    #: outer iteration (0 when all inner loops are unrolled)
    variable_inner_trips: float = 0.0
    zero_copy: bool = False
    sp_fraction: Optional[float] = None


@dataclass
class FPGAModel:
    spec: FPGASpec
    transfer: TransferModel = field(default_factory=TransferModel)

    # -- pipeline ---------------------------------------------------------
    def pipeline_time(self, profile: KernelProfile,
                      point: FPGADesignPoint) -> float:
        """Compute-side time of the pipelined kernel (s)."""
        iters = max(1, profile.outer_iterations)
        if point.variable_inner_trips > 0:
            # outer iteration occupied by the pipelined variable inner
            # loop; lane replication is ineffective (HLS serialises)
            ii_eff = max(point.ii, point.variable_inner_trips)
            lanes = 1
        else:
            ii_eff = point.ii
            lanes = max(1, point.unroll_factor)
        calls = max(1, profile.kernel_calls)
        cycles = PIPELINE_DEPTH * calls + iters * ii_eff / lanes
        return cycles / (self.spec.fmax_mhz * 1e6)

    # -- memory -----------------------------------------------------------
    @property
    def bram_bytes(self) -> float:
        return self.spec.bram_kbits * 1024 / 8

    def memory_time(self, profile: KernelProfile,
                    point: FPGADesignPoint) -> float:
        """DDR time: streamed operands once per call + off-chip gathers.

        Streaming dataflow reads each input buffer and writes each
        output buffer once per kernel call (operands for unrolled inner
        loops live in registers).  Data-dependent gather tables small
        enough for BRAM are kept on-chip (AdPredictor's weight tables);
        larger gather targets pay reduced DDR efficiency per access.
        """
        ddr = self.spec.ddr_bw_gbs * 1e9
        calls = max(1, profile.kernel_calls)
        if not profile.buffer_profiles:
            streamed = profile.bytes_in + profile.bytes_out
            gather = profile.gather_fraction * profile.mem_bytes
            return (streamed / ddr
                    + gather / (ddr * self.spec.gather_bw_efficiency))
        total = 0.0
        for buf in profile.buffer_profiles:
            if buf.is_gather and buf.nbytes > self.bram_bytes:
                total += buf.traffic_bytes / (
                    ddr * self.spec.gather_bw_efficiency)
            else:
                # streamed once per call (or BRAM-resident table load)
                total += min(buf.traffic_bytes, buf.nbytes * calls) / ddr
        return total

    # -- end to end ------------------------------------------------------------
    def design_time(self, profile: KernelProfile,
                    point: FPGADesignPoint) -> float:
        """End-to-end hotspot-region time of a oneAPI design (s)."""
        body = max(self.pipeline_time(profile, point),
                   self.memory_time(profile, point))
        calls = max(1, profile.kernel_calls)
        amort = max(1, profile.transfer_amortization)
        if point.zero_copy:
            if not self.spec.supports_usm:
                raise ValueError(
                    f"{self.spec.name} does not support zero-copy USM")
            usm_time = self.transfer.usm_time(
                profile.bytes_in, profile.bytes_out) / amort
            return max(body, usm_time)
        xfer = self.transfer.pageable_time(profile.transfer_bytes, calls) / amort
        return body + xfer
