"""FPGA-path design transforms (Fig. 4 FPGA-S10 rows).

"Zero-Copy Data Transfer": rewire the oneAPI design from buffer/accessor
data movement to unified-shared-memory host allocations the kernel
accesses directly.  Supported on the Stratix10 only -- the flow's
device-specific branch (C) is what makes this task reachable solely on
the S10 path, exactly as the paper describes (§III).
"""

from __future__ import annotations

from repro.codegen.design import Design
from repro.platforms.spec import FPGASpec
from repro.toolchains.dpcpp import DpcppToolchain


class UnsupportedDeviceError(Exception):
    pass


def zero_copy_data_transfer(design: Design) -> Design:
    """Switch the design to zero-copy USM host memory."""
    device = design.device
    if device is not None:
        spec = DpcppToolchain.DEVICES.get(device)
        if spec is not None and not spec.supports_usm:
            raise UnsupportedDeviceError(
                f"{spec.name} does not support unified shared memory; "
                "zero-copy host access requires a Stratix10")
    design.metadata["zero_copy"] = True
    return design
