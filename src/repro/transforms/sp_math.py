"""Single-precision transforms ("Employ SP Math Fns" / "Employ SP
Numeric Literals", Fig. 4 -- applied on both the FPGA and GPU paths).

Accelerators execute single precision far faster than double (more
lanes per DSP/SM, half the bandwidth per element).  When the
application domain tolerates it -- the paper marks these tasks with an
asterisk -- the kernel is demoted:

- DP math calls become their SP variants (``sqrt`` -> ``sqrtf`` ...);
- DP literals gain the ``f`` suffix;
- local double scalars become floats (buffer element types are left
  alone: they are the caller's ABI).
"""

from __future__ import annotations

from repro.lang.builtins import SP_VARIANT
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    Assign, Call, Cast, CType, DeclStmt, FloatLit, FunctionDecl, Index,
    UnaryOp, set_parents,
)


def employ_sp_math(ast: Ast, fn_name: str) -> int:
    """Rewrite DP math calls in ``fn_name`` to SP variants; returns count."""
    fn = ast.function(fn_name)
    replaced = 0
    for node in fn.walk():
        if isinstance(node, Call) and node.name in SP_VARIANT:
            node.name = SP_VARIANT[node.name]
            replaced += 1
    return replaced


def employ_sp_literals(ast: Ast, fn_name: str) -> int:
    """Suffix DP float literals in ``fn_name`` with ``f``; returns count."""
    fn = ast.function(fn_name)
    replaced = 0
    for node in fn.walk():
        if isinstance(node, FloatLit) and not node.is_single:
            node.suffix = "f"
            node.text = (node.text or repr(node.value)) + "f"
            replaced += 1
    return replaced


def cast_double_loads(ast: Ast, fn_name: str) -> int:
    """Wrap reads of double buffers in explicit ``(float)`` casts.

    After local demotion the kernel computes in float; loads from the
    caller's double buffers would silently re-promote expressions to
    double, so the port converts at the load -- exactly what
    hand-written SP ports do.  Store targets are left alone (results
    convert back on assignment).  Returns the number of casts inserted.
    """
    from repro.analysis.common import SymbolTable, infer_type

    fn = ast.function(fn_name)
    symbols = SymbolTable(fn, ast.unit)
    casted = 0
    for node in list(fn.walk()):
        if not isinstance(node, Index):
            continue
        parent = node.parent
        if isinstance(parent, Index):
            continue
        if isinstance(parent, Cast):
            continue
        if isinstance(parent, Assign) and parent.target is node:
            continue  # store target
        if isinstance(parent, UnaryOp) and parent.op in ("++", "--"):
            continue
        ctype = infer_type(node, symbols)
        if ctype is None or ctype.base != "double" or ctype.is_pointer:
            continue
        cast = Cast(CType("float"), node)
        parent.replace_child(node, cast)
        cast.expr = node
        set_parents(cast, parent)
        casted += 1
    return casted


def demote_local_doubles(ast: Ast, fn_name: str) -> int:
    """Demote local double scalars (and double casts) to float.

    Pointer-typed declarations and parameters keep their element type:
    buffers belong to the caller.  Local (stack) arrays are private to
    the kernel and are demoted along with scalars.  Returns the number
    of declarations changed.
    """
    fn = ast.function(fn_name)
    changed = 0
    for node in fn.walk():
        if isinstance(node, DeclStmt):
            for var in node.decls:
                if var.ctype.base == "double" and not var.ctype.is_pointer:
                    var.ctype = CType("float", 0, var.ctype.const)
                    changed += 1
        elif isinstance(node, Cast):
            if node.ctype.base == "double" and not node.ctype.is_pointer:
                node.ctype = CType("float", 0, node.ctype.const)
                changed += 1
    for param in fn.params:
        if param.ctype.base == "double" and not param.ctype.is_pointer:
            param.ctype = CType("float", 0, param.ctype.const)
            changed += 1
    return changed
