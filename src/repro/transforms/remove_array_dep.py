"""Remove Array ``+=`` Dependency ("Remove Array += Dependency", Fig. 4).

Accumulating into an array element inside inner loops::

    for (int i = 0; i < n; i++) {
        acc[i] = 0.0;
        for (int j = 0; j < n; j++)
            acc[i] += f(i, j);          // memory read-modify-write per j
    }

forces a load-add-store round trip through memory every inner iteration.
On an FPGA this memory recurrence prevents II=1 pipelining of the inner
loop; on CPUs/GPUs it wastes bandwidth.  The transform scalarises the
element into a register accumulator::

    for (int i = 0; i < n; i++) {
        double __acc_acc = 0.0;
        for (int j = 0; j < n; j++)
            __acc_acc += f(i, j);
        acc[i] = __acc_acc;
    }

Applied only when provably safe: the subscript must be affine in the
*outer* loop variable alone (no inner-loop variables), so one outer
iteration touches exactly one element, and the buffer must not alias
another kernel argument (the flow checks pointer analysis first).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.common import SymbolTable, affine_form, infer_type
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    Assign, CompoundStmt, CType, DeclStmt, Expr, ForStmt, FunctionDecl,
    Ident, Index, Node, VarDecl, set_parents,
)
from repro.meta.instrument import ensure_braced
from repro.meta.unparse import unparse_expr


def _subscript_key(name: str, form: Dict) -> Tuple:
    return (name, tuple(sorted((str(k), v) for k, v in form.items())))


def _candidate_groups(loop: ForStmt, var: str) -> Dict[Tuple, List[Index]]:
    """Array accesses a[s] where s is affine in ``var`` only.

    Groups every access (read or write) by (array, canonical subscript);
    only groups containing at least one compound (``+=``-style) update
    inside an inner loop are returned.
    """
    inner_vars = set()
    for node in loop.body.walk():
        if isinstance(node, ForStmt):
            v = node.loop_var()
            if v is not None:
                inner_vars.add(v)

    groups: Dict[Tuple, List[Index]] = {}
    has_inner_rmw: Dict[Tuple, bool] = {}
    for node in loop.body.walk():
        if not isinstance(node, Index):
            continue
        if not isinstance(node.base, Ident):
            continue
        form = affine_form(node.index)
        if form is None:
            continue
        vars_used = {k for k in form if k != 1 and form[k] != 0}
        if vars_used - {var}:
            continue  # involves inner-loop or other variables
        if form.get(var, 0) == 0:
            continue  # invariant subscript: a different (carried) situation
        key = _subscript_key(node.base.name, form)
        groups.setdefault(key, []).append(node)
        parent = node.parent
        if isinstance(parent, Assign) and parent.target is node \
                and parent.op != "=" and node.enclosing(ForStmt) is not loop:
            has_inner_rmw[key] = True

    return {key: nodes for key, nodes in groups.items()
            if has_inner_rmw.get(key)}


def remove_array_plus_equals(ast: Ast, fn_name: str) -> int:
    """Scalarise inner-loop array accumulations in every outermost loop
    of ``fn_name``; returns the number of accumulators introduced."""
    fn = ast.function(fn_name)
    symbols = SymbolTable(fn, ast.unit)
    introduced = 0
    for loop in fn.outermost_loops():
        var = loop.loop_var()
        if var is None:
            continue
        introduced += _scalarise_loop(loop, var, symbols)
    return introduced


def _scalarise_loop(loop: ForStmt, var: str, symbols: SymbolTable) -> int:
    groups = _candidate_groups(loop, var)
    if not groups:
        return 0
    body = ensure_braced(loop)
    introduced = 0
    for (array_name, _), accesses in sorted(groups.items()):
        elem = infer_type(accesses[0], symbols) or CType("double")
        acc_name = f"__acc_{array_name}_{introduced}" if introduced \
            else f"__acc_{array_name}"
        subscript = accesses[0].index.clone()

        # If the first statement-level access is a plain store
        # `a[s] = e;` directly in the outer body, fold it into the
        # accumulator initialiser; otherwise initialise from memory.
        init_expr: Optional[Expr] = None
        first = accesses[0]
        first_parent = first.parent
        if isinstance(first_parent, Assign) and first_parent.target is first \
                and first_parent.op == "=" \
                and first.enclosing(ForStmt) is loop:
            init_expr = first_parent.value
            stmt = first_parent.parent
            if stmt in body.stmts:  # ExprStmt wrapper
                pass

        # replace every access in the group with the accumulator
        for access in accesses:
            parent = access.parent
            new_ident = Ident(acc_name)
            parent.replace_child(access, new_ident)

        if init_expr is not None:
            # the plain store became `__acc = e;` -- turn its enclosing
            # assignment into the declaration by removing the statement
            # and using e as the initialiser
            assign = init_expr.parent  # the Assign whose value is init_expr
            stmt = assign.parent
            decl = DeclStmt([VarDecl(acc_name, elem, init=init_expr.clone())])
            stmt_block = stmt.parent
            if isinstance(stmt_block, CompoundStmt):
                idx = stmt_block.stmts.index(stmt)
                stmt_block.stmts[idx] = decl
                set_parents(decl, stmt_block)
            else:
                decl = DeclStmt([VarDecl(acc_name, elem,
                                         init=init_expr.clone())])
                body.stmts.insert(0, decl)
                set_parents(decl, body)
        else:
            load = Index(Ident(array_name), subscript.clone())
            decl = DeclStmt([VarDecl(acc_name, elem, init=load)])
            body.stmts.insert(0, decl)
            set_parents(decl, body)

        # write back at the end of the outer iteration
        from repro.meta.parser import parse_stmt

        store = parse_stmt(
            f"{array_name}[{unparse_expr(subscript)}] = {acc_name};")
        body.stmts.append(store)
        set_parents(store, body)
        introduced += 1
    return introduced
