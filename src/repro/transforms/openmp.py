"""OpenMP transforms ("Multi-Thread Parallel Loops", Fig. 4).

Annotates the kernel's parallel outermost loops with
``#pragma omp parallel for``, adding ``reduction(...)`` clauses for the
scalar reductions the dependence analysis recognised, and optionally a
``num_threads(N)`` clause (set by the "OMP Num. Threads DSE" task).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.dependence import analyze_loop_dependences
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import ForStmt
from repro.meta.instrument import insert_pragma


def _omp_pragma(reductions, num_threads: Optional[int],
                schedule: Optional[str]) -> str:
    text = "omp parallel for"
    if reductions:
        text += f" reduction(+:{', '.join(reductions)})"
    if schedule:
        text += f" schedule({schedule})"
    if num_threads:
        text += f" num_threads({num_threads})"
    return text


def insert_parallel_for(ast: Ast, fn_name: str,
                        num_threads: Optional[int] = None,
                        schedule: Optional[str] = None) -> List[ForStmt]:
    """Annotate parallelisable outermost loops of ``fn_name``.

    A loop qualifies when the dependence analysis reports it parallel,
    or parallel-with-reductions (handled with a reduction clause).
    Returns the annotated loops; raises ValueError when none qualifies
    (mapping to the multi-thread CPU branch was a PSA error).
    """
    fn = ast.function(fn_name)
    annotated = []
    for loop in fn.outermost_loops():
        info = analyze_loop_dependences(loop)
        if not info.is_parallel_with_reductions:
            continue
        insert_pragma(
            loop, _omp_pragma(info.reductions, num_threads, schedule))
        annotated.append(loop)
    if not annotated:
        raise ValueError(
            f"no parallelisable outermost loop in {fn_name}(); "
            "the multi-thread CPU branch does not apply")
    return annotated


def set_num_threads(ast: Ast, fn_name: str, num_threads: int) -> int:
    """Re-pin the ``num_threads`` clause on annotated loops (DSE step)."""
    fn = ast.function(fn_name)
    updated = 0
    for loop in fn.outermost_loops():
        for pragma in list(loop.pragmas):
            if pragma.keyword == "omp":
                base = pragma.text.split(" num_threads(")[0]
                new_text = f"{base} num_threads({num_threads})"
                loop.pragmas.remove(pragma)
                insert_pragma(loop, new_text, replace_keyword=True)
                updated += 1
    return updated
