"""Loop unrolling tasks ("Unroll Fixed Loops" + unroll-pragma helpers).

HLS compilers unroll loops directed by ``#pragma unroll [N]``; the
transform inserts the directives and the simulated
:mod:`repro.toolchains.dpcpp` compiler honours them in its resource and
initiation-interval model.  Two entry points:

- :func:`unroll_fixed_loops` -- the Fig. 4 "Unroll Fixed Loops" task:
  fully unroll every inner loop whose static trip count is known and
  small (FPGA pipelining of fixed-bound inner loops);
- :func:`set_unroll_pragma` -- the primitive the
  "Unroll Until Overmap" DSE of Fig. 2 re-applies with doubled factors.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.trip_count import static_trip_count
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import ForStmt
from repro.meta.instrument import get_pragma, insert_pragma

#: Inner loops up to this many static iterations are fully unrolled by
#: the "Unroll Fixed Loops" task.
DEFAULT_FULL_UNROLL_LIMIT = 64


def set_unroll_pragma(loop: ForStmt, factor: int) -> None:
    """Attach ``#pragma unroll <factor>`` (replacing any previous one).

    ``factor`` 0 or 1 removes the directive; a factor equal to the
    loop's static trip count is a full unroll.
    """
    if factor <= 1:
        from repro.meta.instrument import remove_pragma

        remove_pragma(loop, "unroll")
        return
    insert_pragma(loop, f"unroll {factor}")


def unroll_factor_of(loop: ForStmt) -> int:
    """Unroll factor requested by the loop's pragma (1 when absent)."""
    pragma = get_pragma(loop, "unroll")
    if pragma is None:
        return 1
    parts = pragma.text.split()
    if len(parts) == 1:
        trips = static_trip_count(loop)
        return trips if trips else 1  # bare '#pragma unroll' = full
    try:
        return max(1, int(parts[1]))
    except ValueError:
        return 1


def unroll_fixed_loops(ast: Ast, fn_name: str,
                       limit: int = DEFAULT_FULL_UNROLL_LIMIT) -> List[ForStmt]:
    """Fully unroll fixed-bound non-outermost loops of ``fn_name``.

    Only loops whose static trip count is known and at most ``limit``
    are touched; returns the loops that received a pragma.
    """
    fn = ast.function(fn_name)
    unrolled = []
    for loop in fn.loops():
        if loop.is_outermost:
            continue
        trips = static_trip_count(loop)
        if trips is None or trips == 0 or trips > limit:
            continue
        set_unroll_pragma(loop, trips)
        unrolled.append(loop)
    return unrolled


# =====================================================================
# Textual unrolling
# =====================================================================

class UnrollError(Exception):
    pass


def _substitute_var(node, var: str, value: int) -> None:
    """Replace reads of ``var`` in the subtree with the literal value."""
    from repro.meta.ast_nodes import Assign, Ident, IntLit, UnaryOp

    for child in list(node.walk()):
        if not isinstance(child, Ident) or child.name != var:
            continue
        parent = child.parent
        if isinstance(parent, Assign) and parent.target is child:
            raise UnrollError(
                f"loop body writes the induction variable {var!r}")
        if isinstance(parent, UnaryOp) and parent.op in ("++", "--"):
            raise UnrollError(
                f"loop body increments the induction variable {var!r}")
        parent.replace_child(child, IntLit(value))


def fully_unroll(loop: ForStmt) -> List["Stmt"]:
    """Textually replicate a fixed-bound loop's body (in place).

    The source-level counterpart of ``#pragma unroll``: the loop is
    replaced in its enclosing block by ``trips`` copies of the body
    with the induction variable substituted by its per-iteration
    value.  CPU compilers do this under ``-funroll-loops``; on FPGAs
    the HLS compiler performs it from the pragma -- this transform
    lets flows (and tests) materialise the result as readable source.

    Requirements: literal bounds (``static_trip_count``), a recognised
    induction variable that the body neither writes nor declares over,
    and no ``break``/``continue``.  Returns the replicated statements.
    """
    from repro.meta.ast_nodes import (
        BreakStmt, CompoundStmt, ContinueStmt, DeclStmt, ExprStmt, Stmt,
        set_parents,
    )

    trips = static_trip_count(loop)
    if trips is None:
        raise UnrollError("loop bounds are not compile-time constants")
    var = loop.loop_var()
    if var is None:
        raise UnrollError("no recognisable induction variable")
    for node in loop.body.walk():
        if isinstance(node, (BreakStmt, ContinueStmt)):
            raise UnrollError("body contains break/continue")
        if isinstance(node, DeclStmt) and any(d.name == var
                                              for d in node.decls):
            raise UnrollError(f"body re-declares {var!r}")

    # start value and step (shape already validated by static_trip_count)
    start = _literal_init(loop)
    step = _literal_step(loop, var)

    parent = loop.parent
    if not isinstance(parent, CompoundStmt):
        raise UnrollError("loop must sit directly inside a block")
    index = parent.stmts.index(loop)

    # names declared inside the body must be renamed per copy (they
    # would otherwise collide in the enclosing scope)
    declared = set()
    for node in loop.body.walk():
        if isinstance(node, DeclStmt):
            declared.update(d.name for d in node.decls)

    copies: List[Stmt] = []
    for k in range(trips):
        body = loop.body.clone()
        _substitute_var(body, var, start + k * step)
        for name in declared:
            _rename(body, name, f"{name}_u{k}")
        if isinstance(body, CompoundStmt):
            copies.extend(body.stmts)
        else:
            copies.append(body)

    parent.stmts[index:index + 1] = copies
    for stmt in copies:
        set_parents(stmt, parent)
    return copies


def _rename(node, old: str, new: str) -> None:
    from repro.meta.ast_nodes import DeclStmt, Ident

    for child in node.walk():
        if isinstance(child, Ident) and child.name == old:
            child.name = new
        elif isinstance(child, DeclStmt):
            for decl in child.decls:
                if decl.name == old:
                    decl.name = new


def _literal_init(loop: ForStmt) -> int:
    from repro.analysis.trip_count import _literal_init as impl

    value = impl(loop)
    assert value is not None
    return value


def _literal_step(loop: ForStmt, var: str) -> int:
    from repro.analysis.trip_count import _literal_step as impl

    value = impl(loop, var)
    assert value is not None
    return value
