"""Hotspot loop extraction ("Hotspot Loop Extraction", Fig. 4).

"Once a hotspot is identified, it is extracted into an isolated function
for further analysis and eventual offloading, replacing the original
loop with a function call.  This covers the partitioning stage of the
design-flow." (paper §II-B)

The meta-program computes the loop's free variables, types them from
the enclosing scope, synthesises a kernel function whose body is the
loop, inserts it before the host function, and swaps the loop for a
call.  Pointer parameters for read-only buffers are const-qualified so
later analyses (and readers) see the in/out split.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.analysis.common import LoopPath, SymbolTable, resolve_loop
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import (
    Assign, Call, CompoundStmt, CType, ExprStmt, ForStmt, FunctionDecl,
    Ident, Index, ParamDecl, UnaryOp, set_parents,
)
from repro.meta.query import free_variables


class TransformError(Exception):
    pass


class ExtractionResult(NamedTuple):
    kernel_name: str
    params: Tuple[Tuple[str, CType], ...]  # (name, type) in call order

    @property
    def pointer_params(self) -> List[str]:
        return [name for name, ctype in self.params if ctype.is_pointer]


def _written_names(loop: ForStmt) -> set:
    written = set()
    for node in loop.body.walk():
        if isinstance(node, Assign):
            target = node.target
            if isinstance(target, Ident):
                written.add(target.name)
            while isinstance(target, Index):
                target = target.base
            if isinstance(target, Ident):
                written.add(target.name)
            if isinstance(target, UnaryOp) and target.op == "*" \
                    and isinstance(target.operand, Ident):
                written.add(target.operand.name)
        if isinstance(node, UnaryOp) and node.op in ("++", "--") \
                and isinstance(node.operand, Ident):
            written.add(node.operand.name)
    return written


def extract_hotspot(ast: Ast, path: LoopPath,
                    kernel_name: str = "hotspot_kernel") -> ExtractionResult:
    """Extract the loop at ``path`` into ``kernel_name`` (in place).

    Raises :class:`TransformError` when the loop writes free scalars
    (their final values would be lost across the call boundary) or when
    a free variable's type cannot be determined.
    """
    loop = resolve_loop(ast, path)
    host_fn = loop.enclosing(FunctionDecl)
    if host_fn is None:
        raise TransformError("hotspot loop is not inside a function")
    if ast.has_function(kernel_name):
        raise TransformError(f"function {kernel_name!r} already exists")

    symbols = SymbolTable(host_fn, ast.unit)
    names = free_variables(loop)
    written = _written_names(loop)

    params: List[Tuple[str, CType]] = []
    for name in names:
        ctype = symbols.type_of(name)
        if ctype is None:
            # unknown name: a builtin referenced as a call is stored by
            # name on Call nodes, so anything here is a real error
            raise TransformError(
                f"cannot type free variable {name!r} of the hotspot loop")
        if not ctype.is_pointer and name in written:
            raise TransformError(
                f"hotspot loop writes free scalar {name!r}; extraction "
                "would lose its final value")
        if ctype.is_pointer:
            is_written = name in written
            param_type = CType(ctype.base, ctype.pointers,
                               const=not is_written)
        else:
            param_type = CType(ctype.base, ctype.pointers, const=False)
        params.append((name, param_type))

    # synthesise the kernel
    kernel_params = [ParamDecl(name, ctype) for name, ctype in params]
    call = ExprStmt(Call(kernel_name, [Ident(name) for name, _ in params]))

    parent_block = loop.parent
    if not isinstance(parent_block, CompoundStmt):
        raise TransformError("hotspot loop must sit directly inside a block")
    index = parent_block.stmts.index(loop)
    parent_block.stmts[index] = call
    set_parents(call, parent_block)

    body = CompoundStmt([loop])
    kernel = FunctionDecl(kernel_name, CType("void"), kernel_params, body)

    decls = ast.unit.decls
    host_index = decls.index(host_fn)
    decls.insert(host_index, kernel)
    set_parents(kernel, ast.unit)

    return ExtractionResult(kernel_name, tuple(params))
