"""Source-to-source transform tasks (the ``T`` rows of Fig. 4).

- :mod:`extraction` -- "Hotspot Loop Extraction": loop -> kernel function;
- :mod:`remove_array_dep` -- "Remove Array += Dependency": scalarise
  per-iteration array accumulation;
- :mod:`sp_math` -- "Employ SP Math Fns" / "Employ SP Numeric Literals";
- :mod:`unroll` -- "Unroll Fixed Loops" and unroll-pragma helpers;
- :mod:`openmp` -- "Multi-Thread Parallel Loops" (OpenMP pragmas);
- :mod:`gpu_mem` -- HIP pinned memory / shared-memory buffer /
  specialised math intrinsics;
- :mod:`fpga_mem` -- oneAPI zero-copy (USM) data transfer.

All transforms mutate the AST/design they are given; flows pass clones.
"""

from repro.transforms.extraction import ExtractionResult, extract_hotspot
from repro.transforms.remove_array_dep import remove_array_plus_equals
from repro.transforms.sp_math import (
    demote_local_doubles, employ_sp_literals, employ_sp_math,
)
from repro.transforms.unroll import (
    UnrollError, fully_unroll, set_unroll_pragma, unroll_factor_of,
    unroll_fixed_loops,
)
from repro.transforms.openmp import insert_parallel_for

__all__ = [
    "extract_hotspot",
    "ExtractionResult",
    "remove_array_plus_equals",
    "employ_sp_math",
    "employ_sp_literals",
    "demote_local_doubles",
    "unroll_fixed_loops",
    "fully_unroll",
    "UnrollError",
    "set_unroll_pragma",
    "unroll_factor_of",
    "insert_parallel_for",
]
