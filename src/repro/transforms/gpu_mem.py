"""GPU-path design transforms (Fig. 4 GPU rows).

These run *after* "Generate HIP Design" and specialise the Design
artifact:

- "Employ HIP Pinned Memory" -- page-lock host buffers so transfers run
  at DMA rate (the transfer model's pinned bandwidth);
- "Introduce Shared Mem Buf" -- stage operands that every thread
  re-reads (a buffer subscripted only by inner-loop variables, like
  N-Body's ``pos[j]``) through shared memory tiles, cutting redundant
  global traffic;
- "Employ Specialised Math Fns" -- replace SP libm calls with hardware
  intrinsics (``__expf``, ``__fsqrt_rn``, ...).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.common import SymbolTable, affine_form
from repro.codegen.design import Design
from repro.lang.builtins import GPU_INTRINSIC
from repro.meta.ast_nodes import Assign, Call, ForStmt, Ident, Index


def employ_pinned_memory(design: Design) -> Design:
    """Page-lock host buffers for DMA-rate PCIe transfers."""
    design.metadata["pinned_memory"] = True
    return design


def _shared_candidate(design: Design) -> Optional[str]:
    """A read-only buffer re-read across outer iterations, if any.

    Pattern: inside the kernel's outer loop, a subscript that varies
    with an *inner* loop variable but not with the outer one -- every
    thread streams the whole buffer, so a block can stage it in tiles.
    """
    kernel = design.ast.function(design.kernel_name)
    loops = kernel.outermost_loops()
    if not loops:
        return None
    outer = loops[0]
    outer_var = outer.loop_var()
    written = set()
    for node in kernel.walk():
        if isinstance(node, Assign) and isinstance(node.target, Index) \
                and isinstance(node.target.base, Ident):
            written.add(node.target.base.name)
    for node in outer.body.walk():
        if not isinstance(node, Index) or not isinstance(node.base, Ident):
            continue
        if node.base.name in written:
            continue
        inner = node.enclosing(ForStmt)
        if inner is None or inner is outer:
            continue
        inner_var = inner.loop_var()
        form = affine_form(node.index)
        if form is None or inner_var is None or outer_var is None:
            continue
        if form.get(inner_var, 0) != 0 and form.get(outer_var, 0) == 0:
            return node.base.name
    return None


def introduce_shared_mem_buffer(design: Design) -> bool:
    """Stage a redundantly-streamed operand through shared memory.

    Returns True when a candidate was found and the design updated;
    kernels without the re-read pattern are left alone (the task is a
    no-op for them, as in the paper's flow).
    """
    name = _shared_candidate(design)
    if name is None:
        return False
    elem = "double"
    for pname, ctype in design.params:
        if pname == name:
            elem = ctype.base
    blocksize = design.metadata.get("blocksize", 256)
    elem_bytes = 8 if elem == "double" else 4
    design.metadata.update(
        shared_buffering=True,
        shared_tile=f"tile_{name}",
        shared_elem_type=elem,
        shared_bytes=blocksize * elem_bytes,
    )
    return True


def employ_specialised_math(design: Design) -> int:
    """Swap SP libm calls for device intrinsics; returns calls rewritten."""
    kernel = design.ast.function(design.kernel_name)
    rewritten = 0
    for node in kernel.walk():
        if isinstance(node, Call) and node.name in GPU_INTRINSIC:
            node.name = GPU_INTRINSIC[node.name]
            rewritten += 1
    if rewritten:
        design.metadata["intrinsics"] = True
    return rewritten
