"""AST -> human-readable source.

The paper stresses that "output implementations are human-readable and
can be further hand-tuned if desired" because Artisan ASTs mirror the
source as written.  This unparser honours that: stable 4-space
indentation, pragmas printed on their own lines immediately before the
statements they annotate, literals printed with their original spelling
where preserved, and :class:`~repro.meta.ast_nodes.RawStmt` lines from
code generators emitted verbatim.
"""

from __future__ import annotations

from typing import List

from repro.meta.ast_nodes import (
    Assign, BinaryOp, BoolLit, BreakStmt, Call, Cast, Comment,
    CompoundStmt, ContinueStmt, DeclStmt, DoWhileStmt, Expr, ExprStmt,
    FloatLit, ForStmt, FunctionDecl, Ident, IfStmt, Index, IntLit, Node,
    NullStmt, Pragma, RawStmt, ReturnStmt, Stmt, StringLit, Ternary,
    TranslationUnit, UnaryOp, VarDecl, WhileStmt,
)

_INDENT = "    "

# Precedence table mirroring the parser levels (higher binds tighter).
_PREC = {
    ",": 0, "=": 1, "+=": 1, "-=": 1, "*=": 1, "/=": 1,
    "?:": 2,
    "||": 3, "&&": 4, "|": 5, "^": 6, "&": 7,
    "==": 8, "!=": 8,
    "<": 9, ">": 9, "<=": 9, ">=": 9,
    "<<": 10, ">>": 10,
    "+": 11, "-": 11,
    "*": 12, "/": 12, "%": 12,
}
_UNARY_PREC = 13
_POSTFIX_PREC = 14


def unparse_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesising only where required."""
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(expr: Expr):
    if isinstance(expr, IntLit):
        return f"{expr.value}{expr.suffix}", _POSTFIX_PREC
    if isinstance(expr, FloatLit):
        if expr.text is not None:
            return expr.text, _POSTFIX_PREC
        body = repr(expr.value)
        if "e" not in body and "." not in body and "inf" not in body:
            body += ".0"
        return body + expr.suffix, _POSTFIX_PREC
    if isinstance(expr, BoolLit):
        return ("true" if expr.value else "false"), _POSTFIX_PREC
    if isinstance(expr, StringLit):
        return f'"{expr.value}"', _POSTFIX_PREC
    if isinstance(expr, Ident):
        return expr.name, _POSTFIX_PREC
    if isinstance(expr, Call):
        args = ", ".join(unparse_expr(a, 1) for a in expr.args)
        return f"{expr.name}({args})", _POSTFIX_PREC
    if isinstance(expr, Index):
        base = unparse_expr(expr.base, _POSTFIX_PREC)
        return f"{base}[{unparse_expr(expr.index)}]", _POSTFIX_PREC
    if isinstance(expr, UnaryOp):
        if expr.prefix:
            operand = unparse_expr(expr.operand, _UNARY_PREC)
            # avoid token gluing: '-' '-a' must not become '--a'
            space = " " if operand.startswith(expr.op[-1]) else ""
            return f"{expr.op}{space}{operand}", _UNARY_PREC
        operand = unparse_expr(expr.operand, _POSTFIX_PREC)
        return f"{operand}{expr.op}", _POSTFIX_PREC
    if isinstance(expr, Cast):
        inner = unparse_expr(expr.expr, _UNARY_PREC)
        return f"({expr.ctype}){inner}", _UNARY_PREC
    if isinstance(expr, BinaryOp):
        prec = _PREC[expr.op]
        lhs = unparse_expr(expr.lhs, prec)
        rhs = unparse_expr(expr.rhs, prec + 1)  # left-associative
        if expr.op == ",":
            return f"{lhs}, {rhs}", prec
        return f"{lhs} {expr.op} {rhs}", prec
    if isinstance(expr, Assign):
        prec = _PREC[expr.op]
        target = unparse_expr(expr.target, prec + 1)
        value = unparse_expr(expr.value, prec)  # right-associative
        return f"{target} {expr.op} {value}", prec
    if isinstance(expr, Ternary):
        cond = unparse_expr(expr.cond, _PREC["?:"] + 1)
        then = unparse_expr(expr.then, 1)
        els = unparse_expr(expr.els, _PREC["?:"])
        return f"{cond} ? {then} : {els}", _PREC["?:"]
    raise TypeError(f"cannot unparse expression node {type(expr).__name__}")


def _declarator(decl: VarDecl) -> str:
    text = decl.name
    if decl.array_size is not None:
        text += f"[{unparse_expr(decl.array_size)}]"
    if decl.init is not None:
        text += f" = {unparse_expr(decl.init, 1)}"
    return text


def _decl_stmt(stmt: DeclStmt) -> str:
    ctype = stmt.decls[0].ctype
    return f"{ctype} " + ", ".join(_declarator(d) for d in stmt.decls) + ";"


class _Writer:
    def __init__(self):
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str = "") -> None:
        self.lines.append(_INDENT * self.depth + text if text else "")

    def raw(self, text: str) -> None:
        for ln in text.splitlines() or [""]:
            self.line(ln)

    # -- statements -------------------------------------------------------
    def pragmas(self, stmt: Stmt) -> None:
        for pragma in stmt.pragmas:
            self.line(f"#pragma {pragma.text}")

    def block(self, node: CompoundStmt, header: str = "") -> None:
        """Emit a block K&R-style: ``header {`` ... ``}``."""
        self.line((header + " {") if header else "{")
        self.depth += 1
        for child in node.stmts:
            self.stmt(child)
        self.depth -= 1
        self.line("}")

    def stmt(self, node: Stmt) -> None:
        self.pragmas(node)
        if isinstance(node, CompoundStmt):
            self.block(node)
        elif isinstance(node, DeclStmt):
            self.line(_decl_stmt(node))
        elif isinstance(node, ExprStmt):
            self.line(unparse_expr(node.expr) + ";")
        elif isinstance(node, ForStmt):
            init = ""
            if isinstance(node.init, DeclStmt):
                init = _decl_stmt(node.init)[:-1]
            elif isinstance(node.init, ExprStmt):
                init = unparse_expr(node.init.expr)
            cond = unparse_expr(node.cond) if node.cond is not None else ""
            inc = unparse_expr(node.inc) if node.inc is not None else ""
            self.body(node.body, f"for ({init}; {cond}; {inc})")
        elif isinstance(node, WhileStmt):
            self.body(node.body, f"while ({unparse_expr(node.cond)})")
        elif isinstance(node, DoWhileStmt):
            self.body(node.body, "do")
            self.line(f"while ({unparse_expr(node.cond)});")
        elif isinstance(node, IfStmt):
            self.body(node.then, f"if ({unparse_expr(node.cond)})")
            if node.els is not None:
                if isinstance(node.els, IfStmt) and not node.els.pragmas:
                    # keep 'else if' chains readable
                    start = len(self.lines)
                    self.stmt(node.els)
                    first = self.lines[start].lstrip()
                    self.lines[start] = (_INDENT * self.depth
                                         + "else " + first)
                else:
                    self.body(node.els, "else")
        elif isinstance(node, ReturnStmt):
            if node.expr is None:
                self.line("return;")
            else:
                self.line(f"return {unparse_expr(node.expr)};")
        elif isinstance(node, BreakStmt):
            self.line("break;")
        elif isinstance(node, ContinueStmt):
            self.line("continue;")
        elif isinstance(node, NullStmt):
            self.line(";")
        elif isinstance(node, RawStmt):
            self.raw(node.text)
        elif isinstance(node, Comment):
            self.line(f"// {node.text}")
        else:
            raise TypeError(f"cannot unparse statement {type(node).__name__}")

    def body(self, node: Stmt, header: str = "") -> None:
        """Render a loop/if body K&R-style; non-compound bodies indent."""
        if isinstance(node, CompoundStmt) and not node.pragmas:
            self.block(node, header)
        else:
            if header:
                self.line(header)
            self.depth += 1
            self.stmt(node)
            self.depth -= 1

    # -- declarations ------------------------------------------------------
    def function(self, fn: FunctionDecl) -> None:
        attrs = "".join(a + " " for a in fn.attributes)
        params = ", ".join(f"{p.ctype} {p.name}" for p in fn.params)
        header = f"{attrs}{fn.return_type} {fn.name}({params})"
        if fn.body is None:
            self.line(header + ";")
            return
        self.block(fn.body, header)

    def unit(self, unit: TranslationUnit) -> None:
        for line in unit.preamble:
            self.line(line)
        if unit.preamble:
            self.line()
        for i, decl in enumerate(unit.decls):
            if i:
                self.line()
            if isinstance(decl, FunctionDecl):
                self.function(decl)
            elif isinstance(decl, DeclStmt):
                self.pragmas(decl)
                self.line(_decl_stmt(decl))
            elif isinstance(decl, RawStmt):
                self.raw(decl.text)
            elif isinstance(decl, Comment):
                self.line(f"// {decl.text}")
            else:
                raise TypeError(f"cannot unparse top-level {type(decl).__name__}")


def unparse(node: Node) -> str:
    """Render any AST node back to source text."""
    writer = _Writer()
    if isinstance(node, TranslationUnit):
        writer.unit(node)
    elif isinstance(node, FunctionDecl):
        writer.function(node)
    elif isinstance(node, Stmt):
        writer.stmt(node)
    elif isinstance(node, Expr):
        return unparse_expr(node)
    else:
        raise TypeError(f"cannot unparse {type(node).__name__}")
    return "\n".join(writer.lines) + "\n"


def count_loc(source: str) -> int:
    """Count non-blank, non-comment-only lines (Table I's LOC metric)."""
    count = 0
    for raw in source.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("//"):
            continue
        count += 1
    return count
