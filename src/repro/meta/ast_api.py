"""The ``Ast(src)`` façade of Fig. 2.

Wraps a parsed translation unit with the operations meta-programs use:
query, instrument (via :mod:`repro.meta.instrument` on the nodes),
execution against a workload (``report = exec(ast)`` in Fig. 2 -- here
backed by the :mod:`repro.lang` interpreter), cloning for DSE
candidates, and export to readable source.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro import obs
from repro.meta.ast_nodes import ForStmt, FunctionDecl, TranslationUnit
from repro.meta.parser import parse as _parse
from repro.meta.query import Match, Query
from repro.meta.unparse import count_loc, unparse


def parse(source: str) -> TranslationUnit:
    """Parse UHL source (the ``repro.meta.parser`` front end), emitting
    one ``parse`` span per call -- the chokepoint ``run --time`` and
    trace exports read the parse phase from."""
    with obs.span("parse", phase="parse", chars=len(source)):
        return _parse(source)


class Ast:
    """A queryable, instrumentable, executable program representation."""

    def __init__(self, source: str, name: str = "app.cpp"):
        """Parse ``source`` (UHL C/C++ subset). ``name`` labels exports."""
        self.name = name
        self.unit: TranslationUnit = parse(source)

    # -- alternative constructors ------------------------------------------
    @classmethod
    def from_file(cls, path: str) -> "Ast":
        with open(path, "r", encoding="utf-8") as fh:
            return cls(fh.read(), name=os.path.basename(path))

    @classmethod
    def from_unit(cls, unit: TranslationUnit, name: str = "app.cpp") -> "Ast":
        ast = cls.__new__(cls)
        ast.name = name
        ast.unit = unit
        return ast

    # -- query ------------------------------------------------------------
    def query(self) -> Query:
        """Start a fluent query over the whole unit."""
        return Query(self.unit)

    def functions(self) -> List[FunctionDecl]:
        return self.unit.functions()

    def function(self, name: str) -> FunctionDecl:
        return self.unit.function(name)

    def has_function(self, name: str) -> bool:
        return self.unit.has_function(name)

    def loops(self, fn_name: Optional[str] = None) -> List[ForStmt]:
        root = self.unit.function(fn_name) if fn_name else self.unit
        return [n for n in root.walk() if isinstance(n, ForStmt)]

    def outermost_loops(self, fn_name: str) -> List[ForStmt]:
        """The Fig. 2 query: outermost for-loops enclosed in a function."""
        matches = (self.query()
                   .row("loop", ForStmt)
                   .row("fn", FunctionDecl)
                   .where(lambda loop, fn: fn.name == fn_name
                          and fn.encloses(loop)
                          and loop.is_outermost)
                   .all())
        return [m.loop for m in matches]

    # -- execution (dynamic tasks) ------------------------------------------
    def execute(self, workload=None, entry: str = "main",
                max_steps: Optional[int] = None):
        """Run the program; returns an ExecReport.

        ``workload`` is a :class:`repro.lang.interpreter.Workload`-like
        mapping of external buffers/scalars made visible to the program
        through its builtin environment.  Dynamic analysis tasks (hotspot
        detection, trip counts, data movement) call this -- it is the
        ``exec(ast)`` of Fig. 2.

        Execution goes through :mod:`repro.lang.engine`: the closure
        compiler by default, the tree-walking interpreter under
        ``REPRO_EXEC=interp`` (both produce identical reports).
        """
        from repro.lang.engine import execute_unit

        return execute_unit(self.unit, workload=workload, entry=entry,
                            max_steps=max_steps)

    # -- output --------------------------------------------------------------
    @property
    def source(self) -> str:
        """Current (possibly instrumented/transformed) source text."""
        return unparse(self.unit)

    @property
    def loc(self) -> int:
        """Lines of code of the current source (Table I metric)."""
        return count_loc(self.source)

    def export(self, path: str) -> str:
        """Write the current source to ``path``; returns the text written."""
        text = self.source
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return text

    def clone(self, name: Optional[str] = None) -> "Ast":
        """Deep copy (DSE candidates mutate clones, not the reference)."""
        dup = Ast.__new__(Ast)
        dup.name = name or self.name
        dup.unit = self.unit.clone()  # type: ignore[assignment]
        return dup

    def clone_function(self, fn_name: str,
                       name: Optional[str] = None) -> "Ast":
        """A kernel-view clone: copy only ``fn_name``'s subtree.

        DSE candidates mutate exactly one function (pragmas on the
        kernel's loops), so copying the whole translation unit per
        candidate is wasted allocation proportional to the *program*
        rather than the *kernel*.  The returned Ast owns a fresh clone
        of ``fn_name`` and shares every other declaration with the
        original unit; callers must only mutate the cloned function.
        """
        decls = []
        for decl in self.unit.decls:
            if isinstance(decl, FunctionDecl) and decl.name == fn_name:
                decls.append(decl.clone())
            else:
                decls.append(decl)
        unit = TranslationUnit(decls)
        unit.preamble = list(self.unit.preamble)
        dup = Ast.__new__(Ast)
        dup.name = name or self.name
        dup.unit = unit
        return dup

    def __repr__(self):
        fns = ", ".join(f.name for f in self.functions())
        return f"<Ast {self.name!r} functions=[{fns}]>"
