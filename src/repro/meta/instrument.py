"""Instrumentation primitives.

Reproduces Artisan's ``instrument(before, loop, "#pragma unroll $n")``
mechanism (Fig. 2): source-to-source modification expressed directly on
the AST.  Four placements are supported:

- ``before`` / ``after`` -- insert a statement adjacent to a target
  statement inside its enclosing block (pragmas attach to the statement
  itself rather than becoming siblings);
- ``around`` -- wrap the target in a new compound statement with prologue
  and epilogue statements (used by loop timers);
- ``replace`` -- substitute the target with new code (used by hotspot
  extraction to swap a loop for a kernel call).

Snippets may be given as source strings (parsed on the fly, ``$var``
placeholders substituted) or as pre-built AST nodes.
"""

from __future__ import annotations

import string
from typing import Dict, List, Optional, Union

from repro.meta.ast_nodes import (
    CompoundStmt, Expr, ForStmt, Node, Pragma, Stmt, set_parents,
)

Snippet = Union[str, Stmt]


class InstrumentError(Exception):
    pass


def _substitute(template: str, subs: Optional[Dict[str, object]]) -> str:
    if not subs:
        return template
    return string.Template(template).substitute(
        {k: str(v) for k, v in subs.items()})


def _as_stmt(snippet: Snippet, subs: Optional[Dict[str, object]] = None) -> Stmt:
    if isinstance(snippet, Stmt):
        return snippet
    from repro.meta.parser import parse_stmt

    return parse_stmt(_substitute(snippet, subs))


def _enclosing_block(stmt: Stmt) -> CompoundStmt:
    parent = stmt.parent
    if isinstance(parent, CompoundStmt):
        return parent
    raise InstrumentError(
        f"statement {stmt!r} is not directly inside a block; "
        "wrap loop bodies in braces before instrumenting around them")


def insert_pragma(stmt: Stmt, text: str,
                  subs: Optional[Dict[str, object]] = None,
                  replace_keyword: bool = True) -> Pragma:
    """Attach ``#pragma <text>`` to ``stmt``.

    When ``replace_keyword`` is set, an existing pragma with the same
    leading keyword is replaced instead of accumulated -- this is what
    lets the Fig. 2 DSE re-run ``#pragma unroll $n`` with doubled ``n``
    each iteration without stacking directives.
    """
    text = _substitute(text, subs).strip()
    pragma = Pragma(text)
    pragma.parent = stmt
    if replace_keyword:
        keyword = pragma.keyword
        stmt.pragmas = [p for p in stmt.pragmas if p.keyword != keyword]
    stmt.pragmas.append(pragma)
    return pragma


def remove_pragma(stmt: Stmt, keyword: str) -> int:
    """Remove pragmas whose first word is ``keyword``; returns count removed."""
    before = len(stmt.pragmas)
    stmt.pragmas = [p for p in stmt.pragmas if p.keyword != keyword]
    return before - len(stmt.pragmas)


def get_pragma(stmt: Stmt, keyword: str) -> Optional[Pragma]:
    for pragma in stmt.pragmas:
        if pragma.keyword == keyword:
            return pragma
    return None


def insert_before(target: Stmt, snippet: Snippet,
                  subs: Optional[Dict[str, object]] = None) -> Stmt:
    """Insert a statement immediately before ``target`` in its block."""
    block = _enclosing_block(target)
    stmt = _as_stmt(snippet, subs)
    index = block.stmts.index(target)
    block.stmts.insert(index, stmt)
    set_parents(stmt, block)
    return stmt


def insert_after(target: Stmt, snippet: Snippet,
                 subs: Optional[Dict[str, object]] = None) -> Stmt:
    """Insert a statement immediately after ``target`` in its block."""
    block = _enclosing_block(target)
    stmt = _as_stmt(snippet, subs)
    index = block.stmts.index(target)
    block.stmts.insert(index + 1, stmt)
    set_parents(stmt, block)
    return stmt


def wrap_around(target: Stmt, prologue: List[Snippet],
                epilogue: List[Snippet],
                subs: Optional[Dict[str, object]] = None) -> CompoundStmt:
    """Replace ``target`` with ``{ prologue...; target; epilogue...; }``."""
    parent = target.parent
    if parent is None:
        raise InstrumentError("cannot wrap the root node")
    wrapper = CompoundStmt(
        [_as_stmt(s, subs) for s in prologue]
        + [target]
        + [_as_stmt(s, subs) for s in epilogue])
    parent.replace_child(target, wrapper)
    set_parents(wrapper, parent)
    return wrapper


def replace(target: Stmt, snippet: Snippet,
            subs: Optional[Dict[str, object]] = None) -> Stmt:
    """Replace ``target`` with a new statement; returns the new node."""
    parent = target.parent
    if parent is None:
        raise InstrumentError("cannot replace the root node")
    stmt = _as_stmt(snippet, subs)
    # carry target's pragmas over unless the replacement has its own
    if target.pragmas and not stmt.pragmas:
        stmt.pragmas = list(target.pragmas)
    parent.replace_child(target, stmt)
    set_parents(stmt, parent)
    return stmt


def replace_expr(target: Expr, new: Expr) -> Expr:
    """Replace an expression node within its parent."""
    parent = target.parent
    if parent is None:
        raise InstrumentError("cannot replace a detached expression")
    parent.replace_child(target, new)
    set_parents(new, parent)
    return new


def ensure_braced(loop: ForStmt) -> CompoundStmt:
    """Guarantee the loop body is a compound statement, wrapping if needed.

    Instrumentation inside loop bodies (timers, shared-memory staging)
    requires a block to insert into.
    """
    if isinstance(loop.body, CompoundStmt):
        return loop.body
    body = CompoundStmt([loop.body])
    loop.replace_child(loop.body, body)
    set_parents(body, loop)
    return body
