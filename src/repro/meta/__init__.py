"""Artisan-equivalent meta-programming substrate.

This package reimplements, from scratch, the meta-programming facilities
the paper obtains from the Artisan framework [Vandebon et al., IEEE TC
2021]: programmatic access to application source code through an AST
that "closely mirrors the source-code as written", a query engine for
structural matching (``query(for all loop, fn in ast: ...)`` in Fig. 2),
instrumentation primitives for source-to-source modification, and export
of human-readable modified source.

Public entry points:

- :class:`repro.meta.ast_api.Ast` -- parse a source string/file and
  query/instrument/export it (the ``Ast(src)`` of Fig. 2).
- :mod:`repro.meta.query` -- predicate combinators and the query engine.
- :mod:`repro.meta.instrument` -- instrumentation primitives.
"""

from repro.meta.ast_api import Ast
from repro.meta.lexer import Lexer, LexError, Token
from repro.meta.parser import ParseError, Parser, parse
from repro.meta.unparse import unparse
from repro.meta.query import Query, query
from repro.meta import ast_nodes as nodes

__all__ = [
    "Ast",
    "Lexer",
    "LexError",
    "Token",
    "Parser",
    "ParseError",
    "parse",
    "unparse",
    "Query",
    "query",
    "nodes",
]
