"""AST node classes for the UHL (Unoptimised High-Level) C/C++ subset.

The paper's design-flows operate on C++ application sources through the
Artisan framework, whose ASTs "closely mirror the source-code as written
without lowering" so that exported designs stay human-readable.  These
node classes reproduce that property: every construct keeps its surface
structure (pragmas stay attached to the statements they precede, loop
headers keep their three clauses, literals keep their suffixes), and
:mod:`repro.meta.unparse` can always round-trip a tree back to readable
source.

Nodes carry parent links (maintained by :func:`set_parents`) so that
structural predicates such as ``fn.encloses(loop)`` and
``loop.is_outermost`` -- the exact predicates used by the Fig. 2
meta-program -- are cheap.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence

_node_ids = itertools.count(1)


class SourceSpan:
    """Location of a node in the original source (1-based line/column)."""

    __slots__ = ("line", "col")

    def __init__(self, line: int = 0, col: int = 0):
        self.line = line
        self.col = col

    def __repr__(self):
        return f"{self.line}:{self.col}"


class CType:
    """A (possibly pointer / const-qualified) scalar C type.

    The UHL subset has no structs or typedefs; benchmark state lives in
    flat arrays, which is faithful to the paper's kernels (N-Body,
    K-Means, ... all operate on pointer-to-scalar buffers).
    """

    __slots__ = ("base", "pointers", "const")

    SCALARS = ("void", "bool", "int", "long", "float", "double")

    def __init__(self, base: str, pointers: int = 0, const: bool = False):
        if base not in self.SCALARS:
            raise ValueError(f"unknown base type {base!r}")
        self.base = base
        self.pointers = pointers
        self.const = const

    # -- classification helpers used by analyses -------------------------
    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_floating(self) -> bool:
        return self.base in ("float", "double") and self.pointers == 0

    @property
    def is_integral(self) -> bool:
        return self.base in ("bool", "int", "long") and self.pointers == 0

    def element_type(self) -> "CType":
        """Type obtained by dereferencing one pointer level."""
        if self.pointers == 0:
            raise ValueError("cannot dereference non-pointer type")
        return CType(self.base, self.pointers - 1, False)

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointers + 1, self.const)

    def sizeof(self) -> int:
        """Size in bytes of one value of this type (LP64 model)."""
        if self.pointers > 0:
            return 8
        return {"void": 0, "bool": 1, "int": 4, "long": 8,
                "float": 4, "double": 8}[self.base]

    def __eq__(self, other):
        return (isinstance(other, CType) and self.base == other.base
                and self.pointers == other.pointers)

    def __hash__(self):
        return hash((self.base, self.pointers))

    def __str__(self):
        s = ("const " if self.const else "") + self.base
        return s + "*" * self.pointers

    def __repr__(self):
        return f"CType({self})"


class Node:
    """Base class of all AST nodes."""

    _fields: Sequence[str] = ()

    def __init__(self):
        self.parent: Optional[Node] = None
        self.span = SourceSpan()
        self.node_id = next(_node_ids)

    # -- tree navigation --------------------------------------------------
    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes in source order."""
        for name in self._fields:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def descendants(self) -> Iterator["Node"]:
        """Yield strict descendants, pre-order."""
        for child in self.children():
            yield from child.walk()

    def ancestors(self) -> Iterator["Node"]:
        """Yield ancestors from the immediate parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def encloses(self, other: "Node") -> bool:
        """True if ``other`` is a strict descendant of this node.

        This is the ``fn.encloses(loop)`` predicate of the Fig. 2
        meta-program.
        """
        return any(anc is self for anc in other.ancestors())

    def enclosing(self, node_type) -> Optional["Node"]:
        """Nearest ancestor of the given type, or ``None``."""
        for anc in self.ancestors():
            if isinstance(anc, node_type):
                return anc
        return None

    def replace_child(self, old: "Node", new: "Node") -> None:
        """Replace a direct child ``old`` with ``new`` in place."""
        for name in self._fields:
            value = getattr(self, name)
            if value is old:
                setattr(self, name, new)
                new.parent = self
                return
            if isinstance(value, list):
                for i, item in enumerate(value):
                    if item is old:
                        value[i] = new
                        new.parent = self
                        return
        raise ValueError(f"{old!r} is not a child of {self!r}")

    def clone(self) -> "Node":
        """Deep copy of the subtree with fresh node ids and parents."""
        dup = self._clone_subtree()
        set_parents(dup)
        return dup

    def _clone_subtree(self) -> "Node":
        """Structural copy: child nodes are cloned, every other
        attribute (names, operators, types, spans) is shared -- they
        are treated as immutable throughout the codebase.  Avoids
        ``copy.deepcopy``, which both runs an order of magnitude
        slower and drags the entire enclosing tree along through the
        ``parent`` backrefs when cloning a subtree."""
        cls = type(self)
        dup = cls.__new__(cls)
        d = dup.__dict__
        for name, value in self.__dict__.items():
            if name == "parent":
                continue
            if isinstance(value, Node):
                value = value._clone_subtree()
            elif isinstance(value, list):
                # fast path: flat list of nodes/scalars (stmt bodies,
                # arg lists); containers nested inside recurse
                value = [item._clone_subtree() if isinstance(item, Node)
                         else (_clone_field(item)
                               if isinstance(item, (list, tuple, dict))
                               else item)
                         for item in value]
            elif isinstance(value, (tuple, dict)):
                value = _clone_field(value)
            d[name] = value
        d["parent"] = None
        d["node_id"] = next(_node_ids)
        return dup

    def __repr__(self):
        return f"<{type(self).__name__} #{self.node_id} @{self.span}>"


def _clone_field(value):
    """Copy any container shape that may hold :class:`Node` objects so a
    clone never aliases nodes with its original; non-node leaves are
    shared (they are treated as immutable throughout the codebase)."""
    if isinstance(value, Node):
        return value._clone_subtree()
    if isinstance(value, list):
        return [_clone_field(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_clone_field(item) for item in value)
    if isinstance(value, dict):
        return {key: _clone_field(item) for key, item in value.items()}
    return value


def set_parents(root: Node, parent: Optional[Node] = None) -> Node:
    """(Re)establish parent links throughout the subtree rooted at ``root``."""
    root.parent = parent
    for child in root.children():
        set_parents(child, root)
    return root


# =========================================================================
# Expressions
# =========================================================================

class Expr(Node):
    """Base class of expression nodes."""


class IntLit(Expr):
    _fields = ()

    def __init__(self, value: int, suffix: str = ""):
        super().__init__()
        self.value = int(value)
        self.suffix = suffix  # '', 'l', 'u' ...


class FloatLit(Expr):
    """A floating literal.

    ``suffix == 'f'`` marks single precision -- the "Employ SP Numeric
    Literals" transform rewrites double literals to carry this suffix.
    """

    _fields = ()

    def __init__(self, value: float, suffix: str = "", text: Optional[str] = None):
        super().__init__()
        self.value = float(value)
        self.suffix = suffix  # '' (double) or 'f' (float)
        self.text = text  # original spelling, preserved for readability

    @property
    def is_single(self) -> bool:
        return self.suffix.lower() == "f"


class BoolLit(Expr):
    _fields = ()

    def __init__(self, value: bool):
        super().__init__()
        self.value = bool(value)


class StringLit(Expr):
    _fields = ()

    def __init__(self, value: str):
        super().__init__()
        self.value = value


class Ident(Expr):
    _fields = ()

    def __init__(self, name: str):
        super().__init__()
        self.name = name


class BinaryOp(Expr):
    _fields = ("lhs", "rhs")

    ARITH = ("+", "-", "*", "/", "%")
    COMPARE = ("<", ">", "<=", ">=", "==", "!=")
    LOGICAL = ("&&", "||")
    BITWISE = ("&", "|", "^", "<<", ">>")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        super().__init__()
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class UnaryOp(Expr):
    """Prefix ``-x  !x  *p  &x  ++x  --x`` or postfix ``x++  x--``."""

    _fields = ("operand",)

    def __init__(self, op: str, operand: Expr, prefix: bool = True):
        super().__init__()
        self.op = op
        self.operand = operand
        self.prefix = prefix


class Assign(Expr):
    """Assignment, including compound forms (``+=``, ``-=``, ...).

    Compound array assignments (``a[i] += x``) are what the
    "Remove Array += Dependency" task rewrites.
    """

    _fields = ("target", "value")

    OPS = ("=", "+=", "-=", "*=", "/=")

    def __init__(self, op: str, target: Expr, value: Expr):
        super().__init__()
        if op not in self.OPS:
            raise ValueError(f"bad assignment operator {op!r}")
        self.op = op
        self.target = target
        self.value = value


class Call(Expr):
    _fields = ("args",)

    def __init__(self, name: str, args: List[Expr]):
        super().__init__()
        self.name = name
        self.args = list(args)


class Index(Expr):
    """Array subscript ``base[index]``."""

    _fields = ("base", "index")

    def __init__(self, base: Expr, index: Expr):
        super().__init__()
        self.base = base
        self.index = index


class Ternary(Expr):
    _fields = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Expr, els: Expr):
        super().__init__()
        self.cond = cond
        self.then = then
        self.els = els


class Cast(Expr):
    _fields = ("expr",)

    def __init__(self, ctype: CType, expr: Expr):
        super().__init__()
        self.ctype = ctype
        self.expr = expr


# =========================================================================
# Statements
# =========================================================================

class Stmt(Node):
    """Base class of statement nodes.

    Every statement owns a ``pragmas`` list: ``#pragma`` lines written
    immediately before it in the source.  Instrumentation tasks insert
    new pragmas here (e.g. ``#pragma unroll 4``,
    ``#pragma omp parallel for``).
    """

    def __init__(self):
        super().__init__()
        self.pragmas: List["Pragma"] = []


class Pragma(Node):
    """A ``#pragma`` directive attached to a statement."""

    _fields = ()

    def __init__(self, text: str):
        super().__init__()
        self.text = text.strip()

    @property
    def keyword(self) -> str:
        """First word of the pragma ('omp', 'unroll', 'ii', ...)."""
        parts = self.text.split()
        return parts[0] if parts else ""


class CompoundStmt(Stmt):
    _fields = ("stmts",)

    def __init__(self, stmts: Optional[List[Stmt]] = None):
        super().__init__()
        self.stmts: List[Stmt] = list(stmts or [])


class VarDecl(Node):
    """A single declarator within a declaration statement."""

    _fields = ("array_size", "init")

    def __init__(self, name: str, ctype: CType,
                 array_size: Optional[Expr] = None,
                 init: Optional[Expr] = None):
        super().__init__()
        self.name = name
        self.ctype = ctype
        self.array_size = array_size
        self.init = init

    @property
    def is_array(self) -> bool:
        return self.array_size is not None


class DeclStmt(Stmt):
    _fields = ("decls",)

    def __init__(self, decls: List[VarDecl]):
        super().__init__()
        self.decls = list(decls)


class ExprStmt(Stmt):
    _fields = ("expr",)

    def __init__(self, expr: Expr):
        super().__init__()
        self.expr = expr


class ForStmt(Stmt):
    """A C ``for`` loop with its surface structure preserved."""

    _fields = ("init", "cond", "inc", "body")

    def __init__(self, init: Optional[Stmt], cond: Optional[Expr],
                 inc: Optional[Expr], body: Stmt):
        super().__init__()
        self.init = init
        self.cond = cond
        self.inc = inc
        self.body = body

    # -- predicates from the Fig. 2 query --------------------------------
    @property
    def is_outermost(self) -> bool:
        """True when no enclosing for-loop exists within the same function."""
        for anc in self.ancestors():
            if isinstance(anc, ForStmt):
                return False
            if isinstance(anc, FunctionDecl):
                return True
        return True

    def nested_loops(self) -> List["ForStmt"]:
        """All for-loops strictly inside this one."""
        return [n for n in self.descendants() if isinstance(n, ForStmt)]

    def loop_var(self) -> Optional[str]:
        """Name of the induction variable, if the init clause declares or
        assigns a single variable (``int i = 0`` or ``i = 0``)."""
        init = self.init
        if isinstance(init, DeclStmt) and len(init.decls) == 1:
            return init.decls[0].name
        if isinstance(init, ExprStmt) and isinstance(init.expr, Assign):
            tgt = init.expr.target
            if isinstance(tgt, Ident):
                return tgt.name
        return None

    def depth(self) -> int:
        """Loop nesting depth: 0 for an outermost loop."""
        return sum(1 for anc in self.ancestors() if isinstance(anc, ForStmt))


class WhileStmt(Stmt):
    _fields = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt):
        super().__init__()
        self.cond = cond
        self.body = body


class DoWhileStmt(Stmt):
    _fields = ("body", "cond")

    def __init__(self, body: Stmt, cond: Expr):
        super().__init__()
        self.body = body
        self.cond = cond


class IfStmt(Stmt):
    _fields = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Stmt, els: Optional[Stmt] = None):
        super().__init__()
        self.cond = cond
        self.then = then
        self.els = els


class ReturnStmt(Stmt):
    _fields = ("expr",)

    def __init__(self, expr: Optional[Expr] = None):
        super().__init__()
        self.expr = expr


class BreakStmt(Stmt):
    _fields = ()


class ContinueStmt(Stmt):
    _fields = ()


class NullStmt(Stmt):
    """A lone ``;``."""

    _fields = ()


class RawStmt(Stmt):
    """Verbatim target-specific source emitted by code-generation tasks.

    Generated designs (HIP kernel launches, SYCL queue setup, ...) use
    constructs outside the UHL subset; code-generation tasks emit them
    as raw lines that the unparser prints verbatim, keeping the exported
    design human-readable exactly as the paper describes.
    """

    _fields = ()

    def __init__(self, text: str):
        super().__init__()
        self.text = text


class Comment(Stmt):
    """A ``//`` comment line kept as a statement for readability."""

    _fields = ()

    def __init__(self, text: str):
        super().__init__()
        self.text = text


# =========================================================================
# Declarations / top level
# =========================================================================

class ParamDecl(Node):
    _fields = ()

    def __init__(self, name: str, ctype: CType):
        super().__init__()
        self.name = name
        self.ctype = ctype


class FunctionDecl(Node):
    _fields = ("params", "body")

    def __init__(self, name: str, return_type: CType,
                 params: List[ParamDecl], body: Optional[CompoundStmt]):
        super().__init__()
        self.name = name
        self.return_type = return_type
        self.params = list(params)
        self.body = body
        # Attributes emitted by code generators (e.g. '__global__').
        self.attributes: List[str] = []

    def loops(self) -> List[ForStmt]:
        """All for-loops in the body, pre-order."""
        if self.body is None:
            return []
        return [n for n in self.body.walk() if isinstance(n, ForStmt)]

    def outermost_loops(self) -> List[ForStmt]:
        return [l for l in self.loops() if l.is_outermost]


class TranslationUnit(Node):
    """Root node: an ordered list of top-level declarations."""

    _fields = ("decls",)

    def __init__(self, decls: Optional[List[Node]] = None):
        super().__init__()
        self.decls: List[Node] = list(decls or [])
        # Verbatim preamble lines (#include etc.) preserved for export.
        self.preamble: List[str] = []

    def functions(self) -> List[FunctionDecl]:
        return [d for d in self.decls if isinstance(d, FunctionDecl)]

    def function(self, name: str) -> FunctionDecl:
        for fn in self.functions():
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    def has_function(self, name: str) -> bool:
        return any(fn.name == name for fn in self.functions())


# =========================================================================
# Visitor
# =========================================================================

class NodeVisitor:
    """Classic double-dispatch visitor.

    Subclasses define ``visit_<ClassName>`` methods; unhandled node
    types fall through to :meth:`generic_visit`, which visits children.
    """

    def visit(self, node: Node):
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node):
        for child in node.children():
            self.visit(child)
